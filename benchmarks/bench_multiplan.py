"""Multi-plan differential oracle: per-plan cost and defect reach.

The multiplan oracle (DESIGN.md §12) re-executes each synthesized query
under every distinct feasible plan.  This bench measures what that
costs and what it buys:

* **per-plan timings** — wall-clock per forced execution, per hint
  kind, over deterministic demonstration scenarios for each of the
  three planner defects only this oracle can reach;
* **divergence counts** — each scenario must diverge on the buggy
  engine and agree on a clean engine (plan forcing is
  behavior-preserving when the planner is correct);
* **containment blindness** — a containment-only campaign with the same
  defects enabled finds nothing (the defects fire only on forced
  plans, which the unforced stream never executes);
* **campaign detection** — short ``multiplan=True`` campaigns for the
  defects whose trigger shapes the random stream actually generates
  (``sqlite-like-prefix-range`` needs a bare ``col LIKE 'prefix%'``
  against an indexed column — too rare for a short random campaign, so
  its reach is demonstrated by the scenario runs above and recorded as
  ``campaign_detected: false`` here).

Results land in ``results/multiplan.json``.
"""

import json
import time

from _shared import RESULTS_DIR

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.minidb.bugs import BugRegistry
from repro.multiplan.hints import BASELINE, PlannerHints
from repro.multiplan.oracle import _canonical

REPEATS = 50

#: One deterministic scenario per injected optimizer defect: the state,
#: the final query, and the forcing hints whose executions disagree.
SCENARIOS = {
    "sqlite-forced-index-fencepost": {
        "statements": [
            "CREATE TABLE t0 (c0 TEXT)",
            "CREATE INDEX i0 ON t0 (c0)",
            "INSERT INTO t0 VALUES ('a'), ('b'), ('c')",
        ],
        "query": "SELECT c0 FROM t0",
        "hints": [BASELINE, PlannerHints(force_index="i0")],
    },
    "sqlite-stale-stats-join": {
        "statements": [
            "CREATE TABLE t0 (c0 INTEGER)",
            "CREATE TABLE t1 (c1 INTEGER)",
            "INSERT INTO t0 VALUES (1), (2)",
            "INSERT INTO t1 VALUES (1), (3)",
        ],
        "query": "SELECT * FROM t0, t1",
        "hints": [PlannerHints(force_full_scan=True),
                  PlannerHints(force_full_scan=True, analyze=True)],
    },
    "sqlite-like-prefix-range": {
        "statements": [
            "CREATE TABLE t0 (c0 TEXT)",
            "CREATE INDEX i0 ON t0 (c0)",
            "INSERT INTO t0 VALUES ('ab'), ('abc'), ('b'), ('ba')",
        ],
        "query": "SELECT c0 FROM t0 WHERE c0 LIKE 'ab%'",
        "hints": [BASELINE, PlannerHints(force_index="i0"),
                  PlannerHints(force_index="i0", no_like_opt=True)],
    },
}

#: Defects a short random multiplan campaign reliably detects (the
#: like-prefix defect's trigger shape is too rare — see module
#: docstring).
CAMPAIGN_SEEDS = {
    "sqlite-forced-index-fencepost": 0,
    "sqlite-stale-stats-join": 0,
}


def _run_scenario(bug_id: str, scenario: dict, buggy: bool) -> dict:
    """Execute the scenario's forced plans; time each, count outcomes."""
    bugs = BugRegistry({bug_id}) if buggy else BugRegistry()
    connection = MiniDBConnection("sqlite", bugs=bugs)
    for sql in scenario["statements"]:
        connection.execute(sql)
    timings: list[dict] = []
    outcomes = set()
    for hints in scenario["hints"]:
        t0 = time.perf_counter()
        for _ in range(REPEATS):
            rows, _steps = connection.with_plan(scenario["query"], hints)
        elapsed = (time.perf_counter() - t0) / REPEATS
        outcomes.add(_canonical(rows, weak=False))
        timings.append({"hints": hints.describe(),
                        "rows": len(rows),
                        "mean_us": round(elapsed * 1e6, 2)})
    return {"plans": timings, "distinct_outcomes": len(outcomes),
            "diverges": len(outcomes) > 1}


def test_multiplan_reaches_planner_defects():
    """Emit ``multiplan.json``; assert the oracle's reach claims."""
    artifact: dict = {"repeats": REPEATS, "bugs": {}}

    for bug_id, scenario in SCENARIOS.items():
        buggy = _run_scenario(bug_id, scenario, buggy=True)
        clean = _run_scenario(bug_id, scenario, buggy=False)
        entry = {
            "query": scenario["query"],
            "buggy": buggy,
            "clean": clean,
            "campaign_detected": False,
            "campaign_divergences": 0,
        }
        seed = CAMPAIGN_SEEDS.get(bug_id)
        if seed is not None:
            multiplan_cfg = CampaignConfig(
                dialect="sqlite", seed=seed, databases=3,
                bug_ids=[bug_id], reduce=False, multiplan=True)
            result = Campaign(multiplan_cfg).run()
            entry["campaign_detected"] = any(
                bug_id in report.attributed_bugs for report in result.reports)
            entry["campaign_divergences"] = \
                result.stats.multiplan_divergences
            # Containment blindness: the same campaign without the
            # multiplan oracle sees nothing — the defect never fires on
            # the unforced stream.
            contain_cfg = CampaignConfig(
                dialect="sqlite", seed=seed, databases=3,
                bug_ids=[bug_id], reduce=False, multiplan=False)
            contain = Campaign(contain_cfg).run()
            entry["containment_reports"] = len(contain.reports)
        artifact["bugs"][bug_id] = entry

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "multiplan.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(artifact, indent=2))

    for bug_id, entry in artifact["bugs"].items():
        assert entry["buggy"]["diverges"], \
            f"{bug_id}: buggy engine's forced plans did not diverge"
        assert not entry["clean"]["diverges"], \
            f"{bug_id}: clean engine's forced plans diverged"
        assert entry.get("containment_reports", 0) == 0, \
            f"{bug_id}: containment-only campaign saw the defect"
    for bug_id in CAMPAIGN_SEEDS:
        assert artifact["bugs"][bug_id]["campaign_detected"], \
            f"{bug_id}: multiplan campaign missed the defect"
