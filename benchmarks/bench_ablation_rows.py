"""§3.4 ablation — rows per table.

Paper: "We found most bugs by restricting the number of rows inserted to
a low value (10-30 rows).  A higher number would have caused queries to
time out when tables are joined without a restrictive join clause" —
|t0|*|t1|*|t2| grows multiplicatively.

We sweep rows-per-table and measure query throughput: small tables keep
the loop fast; large tables collapse throughput through join blowup,
reproducing the paper's sizing argument.
"""

import time

from _shared import format_table, write_result

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig


def queries_per_second(rows: int, databases: int = 6) -> float:
    config = RunnerConfig(dialect="sqlite", seed=7, min_rows=rows,
                          max_rows=rows, min_tables=2, max_tables=2)
    runner = PQSRunner(lambda: MiniDBConnection("sqlite"), config)
    start = time.perf_counter()
    stats = runner.run(databases)
    elapsed = time.perf_counter() - start
    return stats.queries / elapsed


def test_ablation_rows_per_table(benchmark):
    sweep = (4, 12, 30, 90)

    def run_sweep():
        return {rows: queries_per_second(rows) for rows in sweep}

    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table_rows = [[rows, f"{rate:,.0f}"] for rows, rate in rates.items()]
    write_result(
        "ablation_rows.txt",
        "Rows-per-table sweep: queries/s of the PQS loop with two-table "
        "joins (paper §3.4: 10-30 rows optimal; join result grows as "
        "|t0|*|t1|)\n" + format_table(["rows/table", "queries/s"],
                                      table_rows))
    # Shape: throughput degrades sharply as tables grow.
    assert rates[4] > rates[30] > rates[90]
    assert rates[12] > 2 * rates[90]


def test_detection_survives_small_tables(benchmark):
    """The paper's other half: small tables don't just run faster, they
    still find the bugs."""
    from repro.campaigns.campaign import Campaign, CampaignConfig

    def small_table_campaign():
        config = CampaignConfig(dialect="sqlite", seed=42, databases=80)
        config.runner.min_rows, config.runner.max_rows = 3, 10
        return Campaign(config).run()

    result = benchmark.pedantic(small_table_campaign, rounds=1,
                                iterations=1)
    assert len(result.detected_bug_ids) >= 2
