"""Table 3 — true bugs per detecting oracle.

Paper:  SQLite 46 contains / 17 error / 2 segfault;
        MySQL 14/10/1; PostgreSQL 1/7/1; totals 61/34/4.

Reproduced shape: the containment oracle dominates overall, the error
oracle contributes a large second share, crashes are rare — and
PostgreSQL inverts the ratio (error-oracle-dominant, at most one
containment bug), which the paper attributes to its strict typing.
"""

from _shared import (
    DIALECTS,
    PAPER_TABLE3,
    all_campaigns,
    format_table,
    write_result,
)


def test_table3_oracles(benchmark):
    results = benchmark.pedantic(all_campaigns, rounds=1, iterations=1)

    rows = []
    totals = {"contains": 0, "error": 0, "segfault": 0}
    for dialect in DIALECTS:
        row = results[dialect].table3_row()
        paper = PAPER_TABLE3[dialect]
        rows.append([dialect, row["contains"], row["error"],
                     row["segfault"],
                     f"{paper['contains']}/{paper['error']}/"
                     f"{paper['segfault']}"])
        for key in totals:
            totals[key] += row[key]
    rows.append(["TOTAL", totals["contains"], totals["error"],
                 totals["segfault"], "61/34/4"])
    table = format_table(
        ["DBMS", "Contains", "Error", "SEGFAULT", "Paper(C/E/S)"], rows)
    write_result("table3_oracles.txt",
                 "Table 3 — true bugs per oracle (measured vs paper "
                 "shape)\n" + table)

    # Shape assertions.
    assert totals["contains"] >= totals["error"] >= totals["segfault"]
    assert totals["segfault"] >= 1
    sqlite = results["sqlite"].table3_row()
    assert sqlite["contains"] >= sqlite["error"]
    postgres = results["postgres"].table3_row()
    # The paper's PostgreSQL signature: error oracle dominates, with
    # exactly one containment bug (the inheritance GROUP BY).
    assert postgres["error"] >= postgres["contains"]
    assert postgres["contains"] == 1
