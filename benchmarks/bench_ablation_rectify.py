"""Design ablation — rectification (paper Algorithm 3).

Rectification is what makes the containment oracle *sound*: every
synthesized condition is TRUE on the pivot row, so a missing pivot row is
always a bug.  Disabling it (using the raw random condition) floods the
oracle with false positives on a perfectly correct engine, while the
rectified loop reports nothing.  DESIGN.md §4.1 calls this ablation out.
"""

from _shared import format_table, write_result

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig


def run_loop(rectify: bool):
    config = RunnerConfig(dialect="sqlite", seed=11, rectify=rectify)
    runner = PQSRunner(lambda: MiniDBConnection("sqlite"), config)
    stats = runner.run(20)
    false_positives = sum(1 for r in stats.reports
                          if r.oracle.value == "contains")
    return stats.queries, false_positives


def test_ablation_rectification(benchmark):
    def sweep():
        return {"rectified": run_loop(True),
                "unrectified": run_loop(False)}

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[mode, queries, fps,
             f"{fps / max(queries, 1):.1%}"]
            for mode, (queries, fps) in out.items()]
    write_result(
        "ablation_rectify.txt",
        "Rectification ablation on a CLEAN engine (false containment "
        "alarms)\n" + format_table(
            ["mode", "queries", "false positives", "rate"], rows))

    rect_queries, rect_fps = out["rectified"]
    raw_queries, raw_fps = out["unrectified"]
    assert rect_fps == 0, "rectified loop must be sound"
    assert raw_fps > 0, "raw random conditions must misfire"
    # Roughly: a random condition is FALSE/NULL on the pivot row a large
    # fraction of the time, so the false-positive rate is substantial.
    assert raw_fps / raw_queries > 0.2
