"""Shared campaign execution and result formatting for the benchmarks.

The Table 2 / Table 3 / Figure 2 / Figure 3 benches all consume the same
bug-hunting campaigns; this module runs them once per pytest session and
caches the merged results.  Each bench renders its paper artifact, prints
it, and writes it under ``benchmarks/results/`` (EXPERIMENTS.md records
the paper-vs-measured comparison).
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.core.reports import BugReport
from repro.minidb.bugs import BUG_CATALOG

RESULTS_DIR = Path(__file__).parent / "results"

#: Databases per seed chunk and the chunk seeds.  A few seeds x 220
#: databases reliably detects the rare defect combinations (the paper ran
#: for three months; we run for a few minutes).  SQLite gets one extra
#: chunk: its WITHOUT ROWID/NOCASE defect needs an uncommon schema shape.
CHUNK_SEEDS = {
    "sqlite": (42, 142, 242, 300),
    "mysql": (42, 142, 242),
    "postgres": (42, 142, 242),
}
DATABASES_PER_CHUNK = 220

DIALECTS = ("sqlite", "mysql", "postgres")

#: Recorded campaign seeds that exhibit the rarest schema/data shapes
#: (the analogue of the paper's §4.1 feature-focused testing: the
#: authors *targeted* features like COLLATE and WITHOUT ROWID when broad
#: runs went quiet).  The focused phase tries these before a generic
#: seed scan.
FOCUS_HINTS: dict[str, tuple[int, ...]] = {
    "sqlite-case-sensitive-like-index": (10,),
    "sqlite-nocase-unique-without-rowid": (12, 44),
}
#: Paper rows for the shape comparison (Table 2 "Fixed" and Table 3).
PAPER_TABLE2_FIXED = {"sqlite": 65, "mysql": 15, "postgres": 5}
PAPER_TABLE3 = {
    "sqlite": {"contains": 46, "error": 17, "segfault": 2},
    "mysql": {"contains": 14, "error": 10, "segfault": 1},
    "postgres": {"contains": 1, "error": 7, "segfault": 1},
}


class MergedCampaign:
    """Reports merged across seed chunks, re-triaged globally."""

    def __init__(self, dialect: str, reports: list[BugReport],
                 statements: int, queries: int, seconds: float):
        self.dialect = dialect
        self.reports = reports
        self.statements = statements
        self.queries = queries
        self.seconds = seconds

    @property
    def detected_bug_ids(self) -> set[str]:
        out: set[str] = set()
        for report in self.reports:
            out.update(report.attributed_bugs)
        return out

    def true_bugs(self) -> list[BugReport]:
        return [r for r in self.reports
                if r.triage in ("fixed", "docs", "verified")]

    def table2_row(self) -> dict[str, int]:
        row = {"fixed": 0, "verified": 0, "intended": 0, "duplicate": 0}
        for report in self.reports:
            key = "fixed" if report.triage == "docs" else report.triage
            row[key] = row.get(key, 0) + 1
        return row

    def table3_row(self) -> dict[str, int]:
        row = {"contains": 0, "error": 0, "segfault": 0, "multiplan": 0}
        for report in self.true_bugs():
            row[report.oracle.value] += 1
        return row


@functools.lru_cache(maxsize=None)
def campaign_results(dialect: str) -> MergedCampaign:
    """Run (once) and merge the benchmark campaigns for *dialect*.

    Two phases, mirroring the paper's §4.1 methodology ("we enhanced
    SQLancer to test a new operator or DBMS feature, let the tool run
    ... and then reported any new bugs"):

    1. broad seed-chunk campaigns with the full defect catalog enabled;
    2. *focused* follow-up campaigns for any catalog defect the broad
       phase missed — single-defect engines, scanning a few seeds.
    """
    import time

    from repro.minidb.bugs import bugs_for_dialect

    t0 = time.time()
    reports: list[BugReport] = []
    statements = queries = 0
    per_bug: dict[str, int] = {}
    seen: set[str] = set()

    def absorb(result) -> None:
        nonlocal statements, queries
        statements += result.stats.statements
        queries += result.stats.queries
        for report in result.reports:
            primary = report.attributed_bugs[0]
            if per_bug.get(primary, 0) >= 2:
                continue
            per_bug[primary] = per_bug.get(primary, 0) + 1
            # Global re-triage: the first detection of a defect gets the
            # upstream resolution; repeats are duplicates.
            if primary in seen:
                report.triage = "duplicate"
            else:
                report.triage = BUG_CATALOG[primary].triage
                seen.add(primary)
            reports.append(report)

    for seed in CHUNK_SEEDS[dialect]:
        config = CampaignConfig(dialect=dialect, seed=seed,
                                databases=DATABASES_PER_CHUNK,
                                max_reports_per_bug=2)
        absorb(Campaign(config).run())

    for bug in bugs_for_dialect(dialect):
        if bug.bug_id in seen:
            continue
        for seed in FOCUS_HINTS.get(bug.bug_id, ()) + tuple(range(8)):
            config = CampaignConfig(dialect=dialect, seed=seed,
                                    databases=100,
                                    bug_ids=[bug.bug_id],
                                    max_reports_per_bug=1)
            result = Campaign(config).run()
            absorb(result)
            if bug.bug_id in seen:
                break
    return MergedCampaign(dialect, reports, statements, queries,
                          time.time() - t0)


def all_campaigns() -> dict[str, MergedCampaign]:
    return {dialect: campaign_results(dialect) for dialect in DIALECTS}


def write_result(name: str, content: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(content)
    print(content)


def format_table(headers: list[str], rows: list[list]) -> str:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(headers, *rows)]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out) + "\n"
