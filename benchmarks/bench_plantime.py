"""Optimizer observatory: timing cost and regression-detection checks.

The plan-timing collector (DESIGN.md §13) rides inside the multiplan
oracle and re-executes every distinct plan to build a per-(shape, plan)
timing archive.  This bench measures and pins down:

* **timing overhead** — wall-clock of the same multiplan campaign with
  and without ``plan_timing`` (the extra cost is the min-of-k
  re-executions; the statement stream is identical, which the campaign
  tests already pin byte-for-byte);
* **archive reach** — how many query shapes and distinct plans one
  short campaign archives;
* **self-compare stability** — ``compare_archives(a, a)`` must put
  nothing in ``new``/``fixed``/``worsened`` (the CI gate relies on a
  self-compare exiting zero);
* **seeded-regression detection** — a copy of the archive with one
  shape's baseline timing degraded 10x must be classified as a ``new``
  or ``worsened`` regression, deterministically.

Results land in ``results/plantime.json``.
"""

import json
import time

from _shared import RESULTS_DIR

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.plantime import TimingArchive, compare_archives

BUG = "sqlite-forced-index-fencepost"
SEED = 0
DATABASES = 4
SLOWDOWN_FACTOR = 10.0


def _campaign(plan_timing: bool):
    config = CampaignConfig(
        dialect="sqlite", seed=SEED, databases=DATABASES,
        bug_ids=[BUG], reduce=False, multiplan=True,
        plan_timing=plan_timing)
    t0 = time.perf_counter()
    result = Campaign(config).run()
    return result, time.perf_counter() - t0


def _seed_slowdown(archive: TimingArchive,
                   tmp_path) -> tuple[TimingArchive, str]:
    """A copy of *archive* whose first scoreable shape has its baseline
    plan degraded by ``SLOWDOWN_FACTOR`` — the synthetic analogue of a
    planner update mispricing one query shape."""
    lines = archive.to_lines()
    target_shape = None
    doctored = [lines[0]]
    for line in lines[1:]:
        record = json.loads(line)
        if target_shape is None:
            baselines = [p for p in record["plans"].values()
                         if not p["hints"]]
            forced = [p for p in record["plans"].values() if p["hints"]]
            if baselines and forced:
                target_shape = record["shape"]
                for plan in record["plans"].values():
                    if not plan["hints"]:
                        plan["elapsed_us"] = round(
                            plan["elapsed_us"] * SLOWDOWN_FACTOR, 2)
        doctored.append(json.dumps(record, sort_keys=True,
                                   separators=(",", ":")))
    assert target_shape is not None, "no scoreable shape in the archive"
    path = tmp_path / "plantime-doctored.jsonl"
    path.write_text("\n".join(doctored) + "\n")
    return TimingArchive.load(path), target_shape


def test_plantime_archives_and_detects_seeded_regression(tmp_path):
    """Emit ``plantime.json``; assert the observatory's core claims."""
    RESULTS_DIR.mkdir(exist_ok=True)

    untimed, untimed_seconds = _campaign(plan_timing=False)
    timed, timed_seconds = _campaign(plan_timing=True)
    archive = timed.timing_archive
    assert archive is not None and len(archive) > 0
    assert timed.stats.plantime_queries > 0
    assert untimed.stats.plantime_queries == 0

    plan_count = sum(len(archive.plans_for(shape))
                     for shape in archive.shapes())

    self_compare = compare_archives(archive, archive)
    assert self_compare["new"] == []
    assert self_compare["fixed"] == []
    assert self_compare["worsened"] == []

    doctored, target_shape = _seed_slowdown(archive, tmp_path)
    detection = compare_archives(archive, doctored)
    flagged = [entry["shape"]
               for entry in detection["new"] + detection["worsened"]]
    assert target_shape in flagged, \
        f"seeded 10x slowdown on {target_shape} was not classified " \
        f"as new/worsened (flagged: {flagged})"
    # Determinism: the same pair of archives classifies identically.
    again = compare_archives(archive, doctored)
    assert json.dumps(detection, sort_keys=True) == \
        json.dumps(again, sort_keys=True)

    artifact = {
        "campaign": {"seed": SEED, "databases": DATABASES, "bug": BUG},
        "overhead": {
            "untimed_seconds": round(untimed_seconds, 3),
            "timed_seconds": round(timed_seconds, 3),
            "ratio": round(timed_seconds / untimed_seconds, 2)
            if untimed_seconds > 0 else None,
        },
        "archive": {
            "shapes": len(archive),
            "plans": plan_count,
            "queries_timed": timed.stats.plantime_queries,
        },
        "self_compare": {bucket: len(self_compare[bucket])
                         for bucket in ("new", "fixed", "worsened",
                                        "ongoing")},
        "seeded_regression": {
            "shape": target_shape,
            "factor": SLOWDOWN_FACTOR,
            "detected": True,
            "bucket": "new" if any(e["shape"] == target_shape
                                   for e in detection["new"])
            else "worsened",
        },
    }
    path = RESULTS_DIR / "plantime.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(artifact, indent=2))
