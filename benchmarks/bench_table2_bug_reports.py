"""Table 2 — reported bugs and their status, per DBMS.

Paper:  SQLite 65 fixed / 0 verified / 4 intended / 2 duplicate;
        MySQL 15/10/1/4; PostgreSQL 5/4/7/6.

We count campaign reports against defect-injected MiniDB engines,
triaged via the catalog's recorded upstream resolutions.  Absolute
numbers are not comparable (the paper counts real bugs over three
months); the reproduced *shape* is: SQLite yields the most reports,
MySQL next, PostgreSQL the fewest, and only PostgreSQL contributes a
works-as-intended report (the VACUUM overflow, paper Listing 18).
"""

from _shared import (
    DIALECTS,
    PAPER_TABLE2_FIXED,
    all_campaigns,
    campaign_results,
    format_table,
    write_result,
)


def test_table2_bug_reports(benchmark):
    results = benchmark.pedantic(all_campaigns, rounds=1, iterations=1)

    rows = []
    for dialect in DIALECTS:
        merged = results[dialect]
        row = merged.table2_row()
        rows.append([dialect, row["fixed"], row["verified"],
                     row["intended"], row["duplicate"],
                     PAPER_TABLE2_FIXED[dialect]])
    table = format_table(
        ["DBMS", "Fixed", "Verified", "Intended", "Duplicate",
         "Paper(Fixed)"], rows)
    write_result("table2_bug_reports.txt",
                 "Table 2 — reported bugs and status (measured vs paper "
                 "shape)\n" + table)

    fixed = {d: results[d].table2_row()["fixed"] for d in DIALECTS}
    # Shape assertions, mirroring the paper's ordering.
    assert fixed["sqlite"] >= fixed["mysql"] >= fixed["postgres"]
    assert fixed["sqlite"] > 0 and fixed["postgres"] > 0
    # Defect coverage: the two-phase campaign (broad + focused, §4.1)
    # finds (almost) the whole catalog.
    detected = {d: len(results[d].detected_bug_ids) for d in DIALECTS}
    assert detected["sqlite"] >= 9
    assert detected["mysql"] >= 7
    assert detected["postgres"] >= 4


def test_table2_intended_reports_come_from_postgres(benchmark):
    results = benchmark.pedantic(
        lambda: {d: campaign_results(d) for d in DIALECTS},
        rounds=1, iterations=1)
    intended = {d: results[d].table2_row()["intended"] for d in DIALECTS}
    # Paper: PostgreSQL had by far the most works-as-intended closures
    # (7 vs 4 vs 1); our catalog models one, on PostgreSQL.
    assert intended["postgres"] >= 1
    assert intended["postgres"] >= intended["sqlite"]
    assert intended["postgres"] >= intended["mysql"]
