"""Table 4 — size of SQLancer's per-DBMS components and DBMS coverage.

Paper: SQLite component 6,501 LOC > PostgreSQL 4,981 > MySQL 3,995, with
a small shared core (918 LOC) — evidence for how little the SQL dialects
overlap.  Coverage on the DBMS under test was highest for SQLite (43.0%
line coverage after 24h), reflecting both effort and SQLite's smaller
feature surface.

Our analogues: (a) LOC of this tool's per-dialect code (dialect
descriptors + dialect semantics) versus the shared core — same shape:
SQLite's component is the largest, the shared core is comparatively
small; (b) engine feature coverage reached by a fixed-budget campaign —
the fraction of MiniDB's statement/feature surface the generated
workload exercises, highest for the sqlite dialect.
"""

from pathlib import Path

from _shared import DIALECTS, format_table, write_result

SRC = Path(__file__).parent.parent / "src" / "repro"

#: Files that exist only to support one dialect.
DIALECT_FILES = {
    "sqlite": ["dialects/sqlite.py", "interp/sqlite_sem.py"],
    "mysql": ["dialects/mysql.py", "interp/mysql_sem.py"],
    "postgres": ["dialects/postgres.py", "interp/postgres_sem.py"],
}
SHARED_FILES = ["interp/base.py", "interp/functions.py",
                "interp/patterns.py", "core/rectify.py",
                "core/containment.py", "core/pivot.py"]

#: Feature axes the campaign workload can exercise, per dialect —
#: including deliberately rare combinations, so a small budget cannot
#: saturate the list (mirroring how 24h of fuzzing leaves DBMS coverage
#: below 50%).
FEATURE_PROBES = {
    "sqlite": ["CREATE TABLE", "INSERT", "SELECT", "CREATE INDEX",
               "UPDATE", "DELETE", "ALTER", "CREATE VIEW", "VACUUM",
               "REINDEX", "ANALYZE", "PRAGMA", "WITHOUT ROWID",
               "COLLATE NOCASE", "COLLATE RTRIM", "OR REPLACE",
               "OR IGNORE", "GROUP BY", "DISTINCT", "INTERSECT",
               "INNER JOIN", "PRIMARY KEY", "UNIQUE", " GLOB ",
               " LIKE ", "CASE WHEN", "BETWEEN", "CAST(", "ISNULL",
               "IS NOT "],
    "mysql": ["CREATE TABLE", "INSERT", "SELECT", "CREATE INDEX",
              "UPDATE", "DELETE", "ALTER", "CREATE VIEW",
              "CHECK TABLE", "REPAIR TABLE", "ANALYZE", "SET",
              "ENGINE = MEMORY", "UNSIGNED", "<=>", "OR IGNORE",
              "GROUP BY", "DISTINCT", "INNER JOIN", "PRIMARY KEY",
              "UNIQUE", " LIKE ", "CASE WHEN", "BETWEEN", "CAST(",
              "FOR UPGRADE", "TINYINT", "IS NOT ", "IFNULL", "LEAST"],
    "postgres": ["CREATE TABLE", "INSERT", "SELECT", "CREATE INDEX",
                 "UPDATE", "DELETE", "ALTER", "CREATE VIEW", "VACUUM",
                 "REINDEX", "ANALYZE", "SET", "INHERITS",
                 "CREATE STATISTICS", "VACUUM FULL", "DISCARD",
                 "SERIAL", "BOOLEAN", "GROUP BY", "DISTINCT",
                 "INNER JOIN", "PRIMARY KEY", "UNIQUE", " LIKE ",
                 "BETWEEN", "CAST(", "IS NOT ", "GREATEST", "INTERSECT",
                 "IS NULL"],
}


def count_loc(paths):
    total = 0
    for rel in paths:
        text = (SRC / rel).read_text()
        total += sum(1 for line in text.splitlines()
                     if line.strip() and not line.strip().startswith("#"))
    return total


def feature_coverage(dialect: str) -> float:
    """Fraction of the dialect's feature probes hit by a campaign-sized
    statement stream."""
    from repro.adapters.minidb_adapter import MiniDBConnection
    from repro.core.runner import PQSRunner, RunnerConfig

    executed: list[str] = []

    class LoggingConnection(MiniDBConnection):
        def execute(self, sql):
            executed.append(sql.upper())
            return super().execute(sql)

    runner = PQSRunner(lambda: LoggingConnection(dialect),
                       RunnerConfig(dialect=dialect, seed=4))
    runner.run(6)
    blob = "\n".join(executed)
    probes = FEATURE_PROBES[dialect]
    hit = sum(1 for probe in probes if probe in blob)
    return hit / len(probes)


def test_table4_component_loc(benchmark):
    def measure():
        per_dialect = {d: count_loc(DIALECT_FILES[d]) for d in DIALECTS}
        shared = count_loc(SHARED_FILES)
        return per_dialect, shared

    per_dialect, shared = benchmark.pedantic(measure, rounds=1,
                                             iterations=1)
    rows = [[d, per_dialect[d],
             {"sqlite": 6501, "mysql": 3995, "postgres": 4981}[d]]
            for d in DIALECTS]
    rows.append(["shared core", shared, 918])
    write_result(
        "table4_loc.txt",
        "Table 4 analogue — per-dialect component LOC vs shared core\n"
        + format_table(["component", "LOC (ours)", "LOC (SQLancer)"],
                       rows))
    # Shape: the SQLite component is the largest (its semantics carry
    # affinity/collation machinery), mirroring the paper's 6.5k > 5k >
    # 4k ordering, and no dialect component dwarfs the shared core the
    # way a full DBMS would (the paper's point: the tool is small).
    assert per_dialect["sqlite"] > per_dialect["mysql"]
    assert per_dialect["sqlite"] > per_dialect["postgres"]


def test_table4_feature_coverage(benchmark):
    coverage = benchmark.pedantic(
        lambda: {d: feature_coverage(d) for d in DIALECTS},
        rounds=1, iterations=1)
    rows = [[d, f"{coverage[d]:.0%}",
             {"sqlite": "43.0%", "mysql": "24.4%",
              "postgres": "23.7%"}[d]] for d in DIALECTS]
    write_result(
        "table4_coverage.txt",
        "Table 4 analogue — feature coverage of a fixed-budget campaign "
        "(paper: DBMS line coverage after 24h)\n"
        + format_table(["dialect", "feature coverage",
                        "paper line coverage"], rows))
    # Shape: substantial coverage of the modeled fragment everywhere;
    # sqlite's workload exercises at least as much of its surface as the
    # others (the paper's SQLite coverage was the highest).
    assert all(value >= 0.5 for value in coverage.values())
    assert coverage["sqlite"] >= max(coverage["mysql"],
                                     coverage["postgres"]) - 0.1
