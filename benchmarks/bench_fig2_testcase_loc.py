"""Figure 2 — cumulative distribution of reduced test-case LOC.

Paper: mean 3.71 statements, 13 one-line cases, maximum 8 statements
(one already-fixed PostgreSQL crash needed 27).

We reduce every campaign finding with the delta-debugging reducer and
emit the same CDF.  Reproduced shape: reduced cases are a handful of
statements — small mean, single-digit maximum, some single-statement
cases (our SET/one-statement defects).
"""

from _shared import DIALECTS, all_campaigns, format_table, write_result

from repro.campaigns.metrics import mean_loc
from repro.campaigns.metrics import testcase_loc_cdf as loc_cdf


def test_fig2_testcase_loc_cdf(benchmark):
    results = benchmark.pedantic(all_campaigns, rounds=1, iterations=1)

    reports = [r for d in DIALECTS for r in results[d].reports]
    assert reports, "campaigns found nothing to reduce"
    points = loc_cdf(reports)
    mean = mean_loc(reports)

    rows = [[loc, f"{fraction:.2f}",
             "#" * int(round(fraction * 40))]
            for loc, fraction in points]
    table = format_table(["LOC", "CDF", ""], rows)
    body = (f"Figure 2 — reduced test-case LOC CDF over "
            f"{len(reports)} reports\n"
            f"mean LOC: {mean:.2f} (paper: 3.71)\n"
            f"max LOC: {max(r.test_case.loc for r in reports)} "
            f"(paper: 8)\n" + table)
    write_result("fig2_testcase_loc.txt", body)

    # Shape assertions from the paper's §4.3.
    assert mean <= 8.0, "reduced cases should stay small on average"
    locs = sorted(r.test_case.loc for r in reports)
    assert locs[0] <= 2, "some near-single-statement cases expected"
    assert max(locs) <= 14, "delta debugging should prune long prefixes"
    # The CDF is a genuine distribution: monotone, ends at 1.0.
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions) and fractions[-1] == 1.0


def test_fig2_reduction_shrinks_cases(benchmark):
    """Reduction pays its way: reduced cases are much shorter than the
    raw statement logs they came from."""
    from repro.campaigns.campaign import Campaign, CampaignConfig

    def raw_vs_reduced():
        config = CampaignConfig(dialect="sqlite", seed=42, databases=60,
                                reduce=False)
        raw = Campaign(config).run()
        raw_locs = [r.test_case.loc for r in raw.reports]
        config2 = CampaignConfig(dialect="sqlite", seed=42, databases=60,
                                 reduce=True)
        reduced = Campaign(config2).run()
        red_locs = [r.test_case.loc for r in reduced.reports]
        return raw_locs, red_locs

    raw_locs, red_locs = benchmark.pedantic(raw_vs_reduced, rounds=1,
                                            iterations=1)
    assert raw_locs and red_locs
    assert (sum(red_locs) / len(red_locs)) < \
        (sum(raw_locs) / len(raw_locs))
