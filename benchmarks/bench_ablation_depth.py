"""Design ablation — maximum expression depth (paper Algorithm 1's
``maxdepth``).

Deeper trees reach more operator interactions but generate and evaluate
more slowly; depth-0 trees (bare literals/columns) still rectify into
valid conditions but exercise almost no operator surface.  We sweep the
bound and measure generation cost and operator diversity.
"""

from _shared import format_table, write_result

from repro.core.exprgen import ExpressionGenerator
from repro.dialects import get_dialect
from repro.rng import RandomSource
from repro.sqlast.nodes import (
    BinaryNode,
    CaseNode,
    CastNode,
    FunctionNode,
    InListNode,
    PostfixNode,
    UnaryNode,
    count_nodes,
    walk,
)


def sweep_depth(max_depth: int, samples: int = 800):
    generator = ExpressionGenerator(get_dialect("sqlite"),
                                    RandomSource(13), max_depth=max_depth)
    kinds = set()
    nodes = 0
    for _ in range(samples):
        expr = generator.condition()
        nodes += count_nodes(expr)
        for node in walk(expr):
            if isinstance(node, BinaryNode):
                kinds.add(("binary", node.op))
            elif isinstance(node, UnaryNode):
                kinds.add(("unary", node.op))
            elif isinstance(node, PostfixNode):
                kinds.add(("postfix", node.op))
            elif isinstance(node, FunctionNode):
                kinds.add(("function", node.name))
            elif isinstance(node, (CastNode, CaseNode, InListNode)):
                kinds.add((type(node).__name__, None))
    return len(kinds), nodes / samples


def test_ablation_expression_depth(benchmark):
    depths = (0, 1, 2, 4, 6)

    def run_sweep():
        return {d: sweep_depth(d) for d in depths}

    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [[d, kinds, f"{avg_nodes:.1f}"]
            for d, (kinds, avg_nodes) in out.items()]
    write_result(
        "ablation_depth.txt",
        "Expression-depth sweep: operator diversity and tree size\n"
        + format_table(["max depth", "distinct operator kinds",
                        "avg nodes/expr"], rows))

    kinds = {d: out[d][0] for d in depths}
    sizes = {d: out[d][1] for d in depths}
    # Shape: diversity and size grow with depth, saturating; depth 0
    # yields leaves only.
    assert kinds[0] == 0
    assert kinds[2] > kinds[1] > kinds[0]
    assert kinds[6] >= kinds[4]
    assert sizes[6] > sizes[2] > sizes[0]


def test_depth_affects_detection(benchmark):
    """Leaf-only conditions (depth 0) cannot trigger operator-level
    defects such as the partial-index implication (needs `c IS NOT x`),
    while the default depth finds them."""
    from repro.campaigns.campaign import Campaign, CampaignConfig

    def run(depth, seed):
        config = CampaignConfig(
            dialect="sqlite", seed=seed, databases=60,
            bug_ids=["sqlite-partial-index-is-not"], reduce=False)
        config.runner.max_expression_depth = depth
        return Campaign(config).run()

    def sweep():
        shallow_hits = []
        deep_hits = []
        for seed in range(6):
            shallow_hits.append(
                "sqlite-partial-index-is-not"
                in run(0, seed).detected_bug_ids)
            deep_hits.append(
                "sqlite-partial-index-is-not"
                in run(4, seed).detected_bug_ids)
        return shallow_hits, deep_hits

    shallow_hits, deep_hits = benchmark.pedantic(sweep, rounds=1,
                                                 iterations=1)
    assert not any(shallow_hits), "leaf-only conditions detected it?!"
    assert any(deep_hits)
