"""§3.4 — statement throughput.

Paper: "Typically, SQLancer generates 5,000 to 20,000 statements per
second, depending on the DBMS under test", with the DBMS as the
bottleneck, not the testing tool.

We measure (a) full-loop statements/second against MiniDB per dialect
and (b) the oracle interpreter's expression throughput, confirming the
paper's claim that the naive AST interpreter is never the bottleneck.
"""

import json
import time

from _shared import DIALECTS, RESULTS_DIR, format_table, write_result

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig
from repro.telemetry import Telemetry, names

#: One workload for every throughput number in this module — the
#: statements/s table and the queries/s JSON artifact measure the same
#: hunt, and the artifact records these so downstream comparisons
#: (check_throughput_regression.py) know what was measured.
DATABASES = 20
SEED = 99
#: Wall-clock samples per measurement; the recorded number is the best
#: (minimum) wall time.  Hunts are deterministic, so the minimum is the
#: least-noise estimate of the code's actual speed on a shared box.
BEST_OF = 5


def loop_statement_rate(dialect: str) -> tuple[float, int]:
    runner = PQSRunner(lambda: MiniDBConnection(dialect),
                       RunnerConfig(dialect=dialect, seed=SEED))
    start = time.perf_counter()
    stats = runner.run(DATABASES)
    elapsed = time.perf_counter() - start
    total = stats.statements + stats.queries
    return total / elapsed, total


def timed_hunt(dialect: str, databases: int, seed: int,
               telemetry: Telemetry | None = None):
    """Run a hunt and return (stats, wall_seconds)."""
    runner = PQSRunner(lambda: MiniDBConnection(dialect),
                       RunnerConfig(dialect=dialect, seed=seed),
                       telemetry=telemetry)
    start = time.perf_counter()
    stats = runner.run(databases)
    return stats, time.perf_counter() - start


def best_hunt(dialect: str, databases: int, seed: int,
              samples: int = BEST_OF):
    """Best-of-*samples* :func:`timed_hunt`; the hunt is deterministic,
    so stats are identical across samples and only the wall varies."""
    stats, best = timed_hunt(dialect, databases, seed)
    for _ in range(samples - 1):
        again, wall = timed_hunt(dialect, databases, seed)
        assert again.queries == stats.queries, "hunt must be deterministic"
        best = min(best, wall)
    return stats, best


def phase_breakdown(telemetry: Telemetry) -> dict:
    """Per-phase latency summary from the registry histograms."""
    out = {}
    for phase in names.PHASES:
        histogram = telemetry.registry.histogram(names.PHASE_SECONDS,
                                                 phase=phase)
        out[phase] = {
            "count": histogram.count,
            "total_seconds": round(histogram.sum, 6),
            "mean_ms": round(histogram.mean * 1e3, 4),
            "p50_ms": round(histogram.percentile(50) * 1e3, 4),
            "p95_ms": round(histogram.percentile(95) * 1e3, 4),
        }
    return out


def test_throughput_json_artifact():
    """Emit ``throughput.json``: queries/s, per-phase latency breakdown,
    and the telemetry overhead (instrumented-but-off vs fully metered).

    Runs without the pytest-benchmark fixture so the CI smoke job can
    execute it standalone.
    """
    artifact: dict = {"databases": DATABASES, "seed": SEED,
                      "best_of": BEST_OF, "dialects": {}}

    for dialect in DIALECTS:
        # Warm-up: import costs, sqlite caches.
        timed_hunt(dialect, 3, SEED)

        # Baseline: instrumented code, telemetry off (the default).
        base_stats, base_wall = best_hunt(dialect, DATABASES, SEED)
        # Metered: full registry + phase histograms.  Each sample gets a
        # fresh registry so the recorded histograms describe one hunt.
        met_stats = met_wall = telemetry = None
        for _ in range(BEST_OF):
            sample_telemetry = Telemetry()
            sample_stats, sample_wall = timed_hunt(
                dialect, DATABASES, SEED, telemetry=sample_telemetry)
            if met_wall is None or sample_wall < met_wall:
                met_stats, met_wall = sample_stats, sample_wall
                telemetry = sample_telemetry
        assert met_stats.queries == base_stats.queries, \
            "telemetry must not perturb the hunt"

        overhead = (met_wall - base_wall) / base_wall
        artifact["dialects"][dialect] = {
            "queries": base_stats.queries,
            "statements": base_stats.statements,
            "queries_per_second": round(base_stats.queries / base_wall, 1),
            "statements_per_second":
                round(base_stats.statements / base_wall, 1),
            "wall_seconds_off": round(base_wall, 4),
            "wall_seconds_metered": round(met_wall, 4),
            "telemetry_overhead_pct": round(overhead * 100, 2),
            "phases": phase_breakdown(telemetry),
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "throughput.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(artifact, indent=2))

    for dialect, row in artifact["dialects"].items():
        assert row["queries_per_second"] > 0, dialect
        for phase, cell in row["phases"].items():
            assert cell["count"] > 0, (dialect, phase)
    # Guard against runaway instrumentation cost.  Single runs on a
    # shared CI box jitter, so assert loosely; the acceptance target
    # (<5%) is checked from the recorded medians, not one sample.
    worst = max(row["telemetry_overhead_pct"]
                for row in artifact["dialects"].values())
    assert worst < 50.0, f"metered run {worst:.1f}% slower than off"


def test_throughput_statements_per_second(benchmark):
    rates = benchmark.pedantic(
        lambda: {d: loop_statement_rate(d) for d in DIALECTS},
        rounds=1, iterations=1)
    rows = [[d, f"{rate:,.0f}", total]
            for d, (rate, total) in rates.items()]
    write_result(
        "throughput.txt",
        "PQS loop throughput against MiniDB (paper: 5k-20k stmts/s "
        "against C-engine DBMS)\n"
        + format_table(["dialect", "stmts/s", "statements"], rows))
    # A pure-Python engine is slower than the paper's C targets; the
    # loop must still sustain a usable fuzzing rate.
    assert all(rate > 75 for rate, _ in rates.values())


def test_oracle_interpreter_is_not_the_bottleneck(benchmark):
    """Evaluating an expression with the oracle must be much cheaper
    than having the engine run the corresponding query (paper §3.4)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
    from support.diffharness import ExprFuzzer

    from repro.interp import make_interpreter
    from repro.sqlast.render import render_expr

    fuzzer = ExprFuzzer(5)
    expressions = [fuzzer.expr(3) for _ in range(300)]
    interp = make_interpreter("sqlite")

    def oracle_pass():
        out = 0
        for expr in expressions:
            try:
                interp.evaluate(expr, {})
                out += 1
            except Exception:  # noqa: BLE001
                pass
        return out

    evaluated = benchmark(oracle_pass)
    assert evaluated > 200

    # Engine-side comparison for the same expressions.
    conn = MiniDBConnection("sqlite")
    conn.execute("CREATE TABLE t(a)")
    conn.execute("INSERT INTO t(a) VALUES (1)")
    start = time.perf_counter()
    for expr in expressions:
        try:
            conn.execute(f"SELECT {render_expr(expr)} FROM t")
        except Exception:  # noqa: BLE001
            pass
    engine_time = time.perf_counter() - start

    start = time.perf_counter()
    oracle_pass()
    oracle_time = time.perf_counter() - start
    write_result(
        "throughput_oracle.txt",
        f"oracle interpreter: {oracle_time*1e3:.1f} ms for 300 exprs\n"
        f"engine round-trip:  {engine_time*1e3:.1f} ms for 300 queries\n"
        f"ratio engine/oracle: {engine_time/max(oracle_time, 1e-9):.1f}x"
        "\n")
    assert oracle_time < engine_time
