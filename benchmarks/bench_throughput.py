"""§3.4 — statement throughput.

Paper: "Typically, SQLancer generates 5,000 to 20,000 statements per
second, depending on the DBMS under test", with the DBMS as the
bottleneck, not the testing tool.

We measure (a) full-loop statements/second against MiniDB per dialect
and (b) the oracle interpreter's expression throughput, confirming the
paper's claim that the naive AST interpreter is never the bottleneck.
"""

import time

from _shared import DIALECTS, format_table, write_result

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig


def loop_statement_rate(dialect: str) -> tuple[float, int]:
    runner = PQSRunner(lambda: MiniDBConnection(dialect),
                       RunnerConfig(dialect=dialect, seed=99))
    start = time.perf_counter()
    stats = runner.run(15)
    elapsed = time.perf_counter() - start
    total = stats.statements + stats.queries
    return total / elapsed, total


def test_throughput_statements_per_second(benchmark):
    rates = benchmark.pedantic(
        lambda: {d: loop_statement_rate(d) for d in DIALECTS},
        rounds=1, iterations=1)
    rows = [[d, f"{rate:,.0f}", total]
            for d, (rate, total) in rates.items()]
    write_result(
        "throughput.txt",
        "PQS loop throughput against MiniDB (paper: 5k-20k stmts/s "
        "against C-engine DBMS)\n"
        + format_table(["dialect", "stmts/s", "statements"], rows))
    # A pure-Python engine is slower than the paper's C targets; the
    # loop must still sustain a usable fuzzing rate.
    assert all(rate > 75 for rate, _ in rates.values())


def test_oracle_interpreter_is_not_the_bottleneck(benchmark):
    """Evaluating an expression with the oracle must be much cheaper
    than having the engine run the corresponding query (paper §3.4)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
    from support.diffharness import ExprFuzzer

    from repro.interp import make_interpreter
    from repro.sqlast.render import render_expr

    fuzzer = ExprFuzzer(5)
    expressions = [fuzzer.expr(3) for _ in range(300)]
    interp = make_interpreter("sqlite")

    def oracle_pass():
        out = 0
        for expr in expressions:
            try:
                interp.evaluate(expr, {})
                out += 1
            except Exception:  # noqa: BLE001
                pass
        return out

    evaluated = benchmark(oracle_pass)
    assert evaluated > 200

    # Engine-side comparison for the same expressions.
    conn = MiniDBConnection("sqlite")
    conn.execute("CREATE TABLE t(a)")
    conn.execute("INSERT INTO t(a) VALUES (1)")
    start = time.perf_counter()
    for expr in expressions:
        try:
            conn.execute(f"SELECT {render_expr(expr)} FROM t")
        except Exception:  # noqa: BLE001
            pass
    engine_time = time.perf_counter() - start

    start = time.perf_counter()
    oracle_pass()
    oracle_time = time.perf_counter() - start
    write_result(
        "throughput_oracle.txt",
        f"oracle interpreter: {oracle_time*1e3:.1f} ms for 300 exprs\n"
        f"engine round-trip:  {engine_time*1e3:.1f} ms for 300 queries\n"
        f"ratio engine/oracle: {engine_time/max(oracle_time, 1e-9):.1f}x"
        "\n")
    assert oracle_time < engine_time
