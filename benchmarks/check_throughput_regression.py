#!/usr/bin/env python
"""Gate CI on hunt throughput: fail when queries/s regresses.

Compares a freshly measured ``throughput.json`` (produced by
``bench_throughput.py::test_throughput_json_artifact``) against the
committed baseline artifact and exits non-zero when any dialect's
``queries_per_second`` drops by more than ``--max-drop-pct`` (default
20%).  Both artifacts record best-of-N wall times over a fixed
(databases, seed) workload, so a drop beyond the threshold means the
code got slower, not that the runner got unlucky.

Usage::

    python benchmarks/check_throughput_regression.py BASELINE CURRENT \
        [--max-drop-pct 20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(baseline: dict, current: dict, max_drop_pct: float) -> list[str]:
    """Return a list of human-readable regression failures (empty = pass)."""
    failures = []
    for key in ("databases", "seed"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"workload mismatch: {key} baseline={baseline.get(key)!r} "
                f"current={current.get(key)!r} — numbers are not comparable")
    if failures:
        return failures
    for dialect, base_row in baseline.get("dialects", {}).items():
        cur_row = current.get("dialects", {}).get(dialect)
        if cur_row is None:
            failures.append(f"{dialect}: missing from current artifact")
            continue
        base_qps = base_row["queries_per_second"]
        cur_qps = cur_row["queries_per_second"]
        drop_pct = (base_qps - cur_qps) / base_qps * 100.0
        verdict = "REGRESSION" if drop_pct > max_drop_pct else "ok"
        print(f"{dialect:>10}: {base_qps:8.1f} -> {cur_qps:8.1f} q/s "
              f"({-drop_pct:+.1f}%) [{verdict}]")
        if drop_pct > max_drop_pct:
            failures.append(
                f"{dialect}: queries/s dropped {drop_pct:.1f}% "
                f"({base_qps} -> {cur_qps}), threshold {max_drop_pct}%")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path,
                        help="committed throughput.json to compare against")
    parser.add_argument("current", type=Path,
                        help="freshly measured throughput.json")
    parser.add_argument("--max-drop-pct", type=float, default=20.0,
                        help="fail when queries/s drops more than this "
                             "percentage (default: 20)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures = compare(baseline, current, args.max_drop_pct)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"throughput within {args.max_drop_pct:g}% of baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
