"""Plan-coverage guidance: guided vs unguided plan discovery.

Ba & Rigger's query-plan-guidance work reports that steering generation
toward unseen query plans uncovers substantially more distinct plans at
the same query budget.  We reproduce the comparison on MiniDB: the same
campaign (equal query budget, fixed seeds) run twice per seed —

* **unguided**: the stock PQS loop, with *passive* plan tracking only
  (``feedback=False`` observes plans without perturbing generation, so
  the statement stream is bit-identical to a run without the subsystem);
* **guided**: the feedback scheduler enriching every round with an
  index/ANALYZE-heavy mutation burst and re-extending state lineages
  that produced novel plans.

The acceptance bar is a >= 1.5x mean ratio of distinct plan
fingerprints, recorded in ``results/guidance.json``.
"""

import json

from _shared import RESULTS_DIR

from repro.campaigns.campaign import Campaign, CampaignConfig

SEEDS = (5, 7, 11, 13, 42, 99)
DATABASES = 200  # 200 rounds x ~20 queries = ~4,000 queries per run


def coverage_for(seed: int, guided: bool) -> tuple[int, int]:
    """Distinct plan fingerprints and queries for one campaign run.

    The defect catalog is disabled (``bug_ids=[]``) so no round is cut
    short by a bug report — both modes then consume the exact same
    query budget and the comparison is purely about plan discovery.
    """
    config = CampaignConfig(seed=seed, databases=DATABASES,
                            reduce=False, bug_ids=[],
                            guidance=guided, track_plans=not guided)
    result = Campaign(config).run()
    return result.plan_coverage.distinct, result.stats.queries


def test_guidance_discovers_more_plans():
    """Emit ``guidance.json`` and assert the >= 1.5x mean-ratio bar.

    Runs without the pytest-benchmark fixture so the CI smoke job can
    execute it standalone.
    """
    artifact: dict = {"databases": DATABASES, "seeds": list(SEEDS),
                      "runs": [], "mean_ratio": None}

    ratios = []
    for seed in SEEDS:
        unguided, unguided_queries = coverage_for(seed, guided=False)
        guided, guided_queries = coverage_for(seed, guided=True)
        # The nominal budget (databases x pivots x queries) is equal;
        # the consumed count can drift by a round's worth when a state
        # ends up with no selectable pivot.  Keep the drift negligible
        # and compare on the per-1k-queries rate.
        assert abs(guided_queries - unguided_queries) <= \
            0.05 * unguided_queries, "query budgets diverged"
        per_1k_unguided = 1000 * unguided / unguided_queries
        per_1k_guided = 1000 * guided / guided_queries
        ratio = per_1k_guided / per_1k_unguided
        ratios.append(ratio)
        artifact["runs"].append({
            "seed": seed,
            "unguided_queries": unguided_queries,
            "guided_queries": guided_queries,
            "unguided_distinct_plans": unguided,
            "guided_distinct_plans": guided,
            "unguided_plans_per_1k_queries": round(per_1k_unguided, 2),
            "guided_plans_per_1k_queries": round(per_1k_guided, 2),
            "ratio": round(ratio, 3),
        })

    mean_ratio = sum(ratios) / len(ratios)
    artifact["mean_ratio"] = round(mean_ratio, 3)

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "guidance.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {path}")
    print(json.dumps(artifact, indent=2))

    for run in artifact["runs"]:
        assert run["guided_distinct_plans"] > \
            run["unguided_distinct_plans"], run
    assert mean_ratio >= 1.5, \
        f"guided/unguided mean ratio {mean_ratio:.2f} below 1.5x bar"
