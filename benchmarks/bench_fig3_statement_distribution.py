"""Figure 3 — distribution of SQL statements in reduced bug reports.

Paper: CREATE TABLE and INSERT appear in most reports for all DBMS,
SELECT ranks highly (the containment oracle relies on it), CREATE INDEX
ranks highly everywhere; §4.3 adds constraint statistics (UNIQUE 22.2%,
PRIMARY KEY 17.2%, CREATE INDEX 28.3%, FOREIGN KEY 1.0%) and that 90.0%
of reports involve a single table.
"""

from _shared import DIALECTS, all_campaigns, format_table, write_result

from repro.campaigns.metrics import (
    constraint_statistics,
    single_table_fraction,
    statement_distribution,
)


def test_fig3_statement_distribution(benchmark):
    results = benchmark.pedantic(all_campaigns, rounds=1, iterations=1)

    sections = []
    for dialect in DIALECTS:
        reports = results[dialect].reports
        if not reports:
            continue
        dist = statement_distribution(reports)
        ordered = sorted(dist.items(), key=lambda kv: -kv[1]["share"])
        rows = []
        for category, entry in ordered:
            triggers = ", ".join(
                f"{key.removeprefix('trigger_')}:{value:.2f}"
                for key, value in entry.items()
                if key.startswith("trigger_"))
            rows.append([category, f"{entry['share']:.2f}", triggers])
        sections.append(f"-- {dialect} ({len(reports)} reports)\n"
                        + format_table(["statement", "share",
                                        "triggering oracle"], rows))
    write_result("fig3_statement_distribution.txt",
                 "Figure 3 — statement distribution in reduced reports\n"
                 + "\n".join(sections))

    # Shape assertions (paper §4.3).
    for dialect in DIALECTS:
        reports = results[dialect].reports
        if not reports:
            continue
        dist = statement_distribution(reports)
        # "Part of most bug reports" (§4.3) — not all: single-statement
        # cases like the SET-option bug (Listing 3) have no CREATE TABLE.
        assert dist.get("CREATE TABLE", {}).get("share", 0) >= 0.75, \
            dialect
        shares = {k: v["share"] for k, v in dist.items()}
        top = sorted(shares, key=shares.get, reverse=True)[:4]
        assert "CREATE TABLE" in top


def test_fig3_constraint_statistics(benchmark):
    results = benchmark.pedantic(all_campaigns, rounds=1, iterations=1)
    reports = [r for d in DIALECTS for r in results[d].reports]
    stats = constraint_statistics(reports)
    single = single_table_fraction(reports)
    rows = [[name, f"{value:.1%}"] for name, value in stats.items()]
    rows.append(["single-table reports", f"{single:.1%}"])
    write_result(
        "fig3_constraints.txt",
        "Constraint occurrence in reduced reports (paper §4.3: UNIQUE "
        "22.2%, PRIMARY KEY 17.2%, CREATE INDEX 28.3%, FOREIGN KEY "
        "1.0%; single-table 90.0%)\n" + format_table(["feature",
                                                      "share"], rows))
    # Shapes: indexes/constraints are common; FOREIGN KEY absent (out of
    # fragment, matching its 1.0% paper share); most reports use one
    # table.
    assert stats["FOREIGN KEY"] == 0.0
    assert stats["CREATE INDEX"] >= 0.15
    assert single >= 0.6
