#!/usr/bin/env python3
"""Produce a paper-style evaluation report for your own campaign.

Runs bug-hunting campaigns over all three dialects (smaller than the
benchmark suite's, so it finishes in ~a minute) and prints the same
artifacts the paper's evaluation section reports: the Table 2/3 rows,
the Figure 2 LOC distribution, and the Figure 3 statement mix.

Run:  python examples/campaign_report.py [databases-per-dialect]
"""

import sys

from repro import Campaign, CampaignConfig
from repro.campaigns.metrics import (
    constraint_statistics,
    mean_loc,
    single_table_fraction,
    statement_distribution,
    testcase_loc_cdf,
)

DIALECTS = ("sqlite", "mysql", "postgres")


def main() -> None:
    databases = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    results = {}
    for dialect in DIALECTS:
        print(f"hunting {dialect} ({databases} databases)...")
        results[dialect] = Campaign(
            CampaignConfig(dialect=dialect, seed=42,
                           databases=databases)).run()

    print("\n== Table 2 style: reported bugs and status ==")
    print(f"{'DBMS':<10} {'fixed':>6} {'verified':>9} {'intended':>9} "
          f"{'duplicate':>10}")
    for dialect in DIALECTS:
        row = results[dialect].table2_row()
        print(f"{dialect:<10} {row['fixed']:>6} {row['verified']:>9} "
              f"{row['intended']:>9} {row['duplicate']:>10}")

    print("\n== Table 3 style: true bugs per oracle ==")
    print(f"{'DBMS':<10} {'contains':>9} {'error':>6} {'segfault':>9}")
    for dialect in DIALECTS:
        row = results[dialect].table3_row()
        print(f"{dialect:<10} {row['contains']:>9} {row['error']:>6} "
              f"{row['segfault']:>9}")

    reports = [r for d in DIALECTS for r in results[d].reports]
    if not reports:
        print("\n(no findings at this budget — raise the database "
              "count)")
        return

    print(f"\n== Figure 2 style: reduced test-case LOC "
          f"(mean {mean_loc(reports):.2f}) ==")
    for loc, fraction in testcase_loc_cdf(reports):
        print(f"  {loc:>3}  {fraction:>5.2f}  "
              f"{'#' * int(round(fraction * 40))}")

    print("\n== Figure 3 style: statement mix across all reports ==")
    dist = statement_distribution(reports)
    for category, entry in sorted(dist.items(),
                                  key=lambda kv: -kv[1]["share"]):
        bar = "#" * int(round(entry["share"] * 30))
        print(f"  {category:<20} {entry['share']:>5.2f}  {bar}")

    stats = constraint_statistics(reports)
    print(f"\nconstraints: UNIQUE {stats['UNIQUE']:.1%}, "
          f"PRIMARY KEY {stats['PRIMARY KEY']:.1%}, "
          f"CREATE INDEX {stats['CREATE INDEX']:.1%}; "
          f"single-table {single_table_fraction(reports):.1%}")


if __name__ == "__main__":
    main()
