#!/usr/bin/env python3
"""Run the PQS loop against a real, production SQLite build.

The same tool that finds MiniDB's injected defects drives the stdlib
``sqlite3`` engine here.  On a current SQLite the containment oracle
stays silent — every synthesized query fetches its pivot row — which is
itself the paper's soundness property in action: the oracle is exact, so
silence means "no logic bug observed", not "nothing was checked".

The script prints a few of the synthesized pivot-fetching queries so you
can see what the DBMS is being interrogated with.

Run:  python examples/real_sqlite_hunt.py
"""

import sqlite3

from repro import PQSRunner, RunnerConfig, SQLite3Connection
from repro.core.error_oracle import SQLITE3_DOCUMENTED_QUIRKS


class NarratingConnection(SQLite3Connection):
    """A connection that keeps the last few statements for display."""

    def __init__(self):
        super().__init__()
        self.samples: list[str] = []

    def execute(self, sql):
        if sql.startswith("SELECT") and "INTERSECT" not in sql and \
                len(self.samples) < 500:
            self.samples.append(sql)
        return super().execute(sql)


def main() -> None:
    print(f"=== PQS vs real SQLite {sqlite3.sqlite_version} ===\n")
    connections: list[NarratingConnection] = []

    def factory():
        conn = NarratingConnection()
        connections.append(conn)
        return conn

    runner = PQSRunner(factory, RunnerConfig(
        dialect="sqlite", seed=7,
        documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
    stats = runner.run(25)

    print(f"databases tested    : {stats.databases}")
    print(f"statements executed : {stats.statements}")
    print(f"pivot rows checked  : {stats.pivots}")
    print(f"queries synthesized : {stats.queries}")
    print(f"findings            : {len(stats.reports)}\n")

    if stats.reports:
        print("!!! findings against a production SQLite — "
              "either a real bug or an oracle defect; inspect:")
        for report in stats.reports:
            print(report.oracle.value, report.message)
            print(report.test_case.render())
        return

    print("no findings — every synthesized query fetched its pivot "
          "row.\nsample pivot-fetching queries sent to SQLite:\n")
    shown = 0
    for conn in connections:
        for sql in conn.samples:
            if "WHERE" in sql and len(sql) < 160:
                print(f"    {sql}")
                shown += 1
                if shown >= 8:
                    return


if __name__ == "__main__":
    main()
