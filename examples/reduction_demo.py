#!/usr/bin/env python3
"""Test-case reduction walkthrough (paper §4.1 / Figure 2).

Takes the paper's Listing 1 bug, buries it in 20 statements of random
noise, and watches the delta-debugging reducer recover the minimal
4-statement reproduction — the same pipeline that produces the Figure 2
LOC distribution.

Run:  python examples/reduction_demo.py
"""

from repro import TestCase, TestCaseReducer
from repro.campaigns.replay import DifferentialReplayer
from repro.minidb.bugs import BugRegistry

ESSENTIAL = [
    "CREATE TABLE t0(c0)",
    "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
    "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)",
]
NOISE = [
    "CREATE TABLE junk(a, b)",
    "INSERT INTO junk(a, b) VALUES (1, 'x'), (2, 'y')",
    "CREATE INDEX junk_i ON junk(a)",
    "UPDATE junk SET b = 'z' WHERE a = 1",
    "INSERT INTO t0(c0) VALUES (7), (8)",
    "DELETE FROM junk WHERE a = 2",
    "CREATE VIEW junk_v AS SELECT junk.a FROM junk",
    "ANALYZE junk",
    "PRAGMA automatic_index = 0",
    "INSERT INTO junk(a) VALUES (9)",
    "CREATE TABLE more(c)",
    "INSERT INTO more(c) VALUES (0.5)",
    "UPDATE more SET c = c + 1",
    "CREATE INDEX more_i ON more(c)",
    "REINDEX more",
    "DELETE FROM more WHERE c > 100",
    "VACUUM",
]
FINAL = "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1"


def main() -> None:
    print("=== Delta-debugging reduction demo (paper Listing 1) ===\n")

    # Interleave the essential statements with noise, Listing-1 query
    # last.  The defect: the planner wrongly assumes `c0 IS NOT 1`
    # implies `c0 NOT NULL` and uses the partial index.
    statements = []
    noise = iter(NOISE)
    for essential in ESSENTIAL:
        statements.append(essential)
        for _ in range(3):
            nxt = next(noise, None)
            if nxt:
                statements.append(nxt)
    statements.extend(noise)
    statements.append(FINAL)
    original = TestCase(statements=statements, dialect="sqlite")
    print(f"original test case: {original.loc} statements\n")

    replayer = DifferentialReplayer(
        "sqlite", BugRegistry({"sqlite-partial-index-is-not"}))
    assert replayer.manifests(original), "defect must manifest"

    reducer = TestCaseReducer(replayer.manifests)
    reduced = reducer.reduce(original)

    print(f"reduced test case:  {reduced.loc} statements "
          f"({reducer.replays} replays)\n")
    print(reduced.render())
    print("\n-- the pivot row (NULL) vanishes because the partial index")
    print("-- i0 only holds rows where c0 NOT NULL, and the buggy")
    print("-- planner believes `c0 IS NOT 1` implies that predicate.")

    expected = set(ESSENTIAL + [FINAL])
    assert set(reduced.statements) == expected, "reduction missed noise"
    print("\nreduction recovered exactly the paper's 4-line test case.")


if __name__ == "__main__":
    main()
