#!/usr/bin/env python3
"""Quickstart: hunt bugs in a defect-injected engine with PQS.

This walks the paper's Figure 1 end to end: a campaign generates random
databases (step 1), picks pivot rows (step 2), synthesizes rectified
queries (steps 3-5), and checks containment plus the error/crash oracles
(steps 6-7).  Findings are reduced with delta debugging and attributed to
the injected defects they expose.

Run:  python examples/quickstart.py
"""

from repro import BUG_CATALOG, Campaign, CampaignConfig


def main() -> None:
    print("=== PQS quickstart: hunting injected defects in MiniDB ===\n")
    config = CampaignConfig(dialect="sqlite", seed=42, databases=80)
    print(f"dialect={config.dialect}  databases={config.databases}  "
          f"seed={config.seed}")
    print("running campaign (generate -> pivot -> synthesize -> check "
          "-> reduce -> attribute)...\n")

    result = Campaign(config).run()

    print(f"statements executed : {result.stats.statements}")
    print(f"queries synthesized : {result.stats.queries}")
    print(f"expected errors     : {result.stats.expected_errors} "
          "(normal noise, ignored by the error oracle)")
    print(f"bug reports         : {len(result.reports)}\n")

    for number, report in enumerate(result.reports, 1):
        bug = BUG_CATALOG[report.attributed_bugs[0]]
        print(f"--- report #{number} "
              f"[oracle={report.oracle.value}, triage={report.triage}]")
        print(f"    defect : {bug.bug_id}")
        print(f"    models : {bug.paper_ref}")
        print("    reduced test case:")
        for statement in report.test_case.statements:
            print(f"        {statement};")
        print()

    detected = sorted(result.detected_bug_ids)
    print(f"distinct defects detected: {len(detected)}")
    for bug_id in detected:
        print(f"    {bug_id}")


if __name__ == "__main__":
    main()
