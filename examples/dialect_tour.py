#!/usr/bin/env python3
"""A tour of the three dialect personalities and their oracles.

Demonstrates why differential testing fails across DBMS (the paper's
motivation) by running the *same logical scenarios* through the three
MiniDB dialects, then shows each dialect's characteristic defect being
caught by the matching oracle:

* sqlite  — flexible typing, IS NOT on values, containment oracle;
* mysql   — <=> and unsigned casts, crash oracle (CHECK TABLE CVE);
* postgres— strict typing, inheritance, error oracle.

Run:  python examples/dialect_tour.py
"""

from repro import BugRegistry, DBCrash, DBError, Engine


def show(engine: Engine, sql: str) -> None:
    try:
        result = engine.execute(sql)
        rows = result.python_rows()
        print(f"    {sql}\n        -> {rows if rows else 'ok'}")
    except DBCrash as crash:
        print(f"    {sql}\n        -> CRASH: {crash.message}")
    except DBError as error:
        print(f"    {sql}\n        -> ERROR: {error.message}")


def dialect_differences() -> None:
    print("--- the same expression, three dialects "
          "(why differential testing fails) ---")
    for dialect in ("sqlite", "mysql", "postgres"):
        engine = Engine(dialect)
        print(f"  [{dialect}]")
        show(engine, "SELECT '1' = 1")     # affinity vs coercion vs error
        show(engine, "SELECT 5 / 2")       # int division vs decimal
        show(engine, "SELECT 'a' = 'A'")   # collation differences
        print()


def sqlite_containment() -> None:
    print("--- sqlite: containment oracle (paper Listing 1) ---")
    engine = Engine("sqlite",
                    BugRegistry({"sqlite-partial-index-is-not"}))
    for sql in ("CREATE TABLE t0(c0)",
                "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
                "INSERT INTO t0(c0) VALUES (0), (1), (NULL)"):
        engine.execute(sql)
    show(engine, "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1")
    print("        (the NULL pivot row is missing: a logic bug only the")
    print("         containment oracle can see — no crash, no error)\n")


def mysql_crash() -> None:
    print("--- mysql: crash oracle (paper Listing 14, CVE-2019-2879) ---")
    engine = Engine("mysql", BugRegistry({"mysql-check-table-crash"}))
    for sql in ("CREATE TABLE t0(c0 INT)",
                "CREATE INDEX i0 ON t0((t0.c0 || 1))",
                "INSERT INTO t0(c0) VALUES (1)"):
        engine.execute(sql)
    show(engine, "CHECK TABLE t0 FOR UPGRADE")
    print()


def postgres_error() -> None:
    print("--- postgres: error oracle (paper Listing 16) ---")
    engine = Engine("postgres", BugRegistry({"pg-stats-bitmap-error"}))
    for sql in ("CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN)",
                "CREATE STATISTICS s1 ON c0, c1 FROM t0",
                "INSERT INTO t0(c1) VALUES(TRUE)",
                "ANALYZE",
                "CREATE INDEX i0 ON t0((t0.c1 AND t0.c1))"):
        engine.execute(sql)
    show(engine, "SELECT t0.c0 FROM t0 WHERE (((t0.c1) AND (t0.c1)) "
                 "OR FALSE) IS TRUE")
    print("        ('negative bitmapset member' is never an expected")
    print("         error, so the error oracle reports it)\n")


if __name__ == "__main__":
    dialect_differences()
    sqlite_containment()
    mysql_crash()
    postgres_error()
