"""Public API surface: everything advertised imports and works."""

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_snippet_from_docstring(self):
        # The module docstring's snippet must actually run.
        result = repro.Campaign(
            repro.CampaignConfig(dialect="sqlite", seed=1,
                                 databases=5)).run()
        assert result.stats.databases == 5

    def test_error_hierarchy(self):
        assert issubclass(repro.DBError, Exception)
        assert issubclass(repro.DBCrash, BaseException)
        assert not issubclass(repro.DBCrash, Exception), \
            "crashes must not be swallowed by `except Exception`"
        assert issubclass(repro.PQSError, Exception)

    def test_subpackage_exports(self):
        from repro.campaigns import ParallelCampaign  # noqa: F401
        from repro.core import PQSRunner  # noqa: F401
        from repro.dialects import get_dialect  # noqa: F401
        from repro.interp import make_interpreter  # noqa: F401
        from repro.minidb import Engine  # noqa: F401
        from repro.multiplan import MultiPlanOracle  # noqa: F401
        from repro.stategen import ActionGenerator  # noqa: F401

    def test_bug_catalog_shape(self):
        for bug in repro.BUG_CATALOG.values():
            assert bug.dialect in ("sqlite", "mysql", "postgres")
            assert bug.oracle in ("contains", "error", "crash",
                                  "multiplan")
            assert bug.triage in ("fixed", "verified", "docs",
                                  "intended", "duplicate")
            assert bug.description and bug.paper_ref

    def test_engine_rejects_unknown_dialect(self):
        with pytest.raises(ValueError):
            repro.Engine("mongodb")

    def test_value_reexported(self):
        assert repro.Value.integer(1).v == 1
