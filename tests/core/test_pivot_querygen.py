"""Pivot selection (step 2) and query synthesis (step 5)."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.containment import check_containment, containment_query
from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotRow, PivotSelector
from repro.core.querygen import QueryGenerator
from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import get_dialect
from repro.interp import make_interpreter
from repro.rng import RandomSource
from repro.values import Value


def setup_connection(dialect="sqlite"):
    conn = MiniDBConnection(dialect)
    conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT)")
    conn.execute("INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), "
                 "(3, NULL)")
    model = TableModel(name="t0", columns=[
        ColumnModel(name="c0", type_name="INT"),
        ColumnModel(name="c1", type_name="TEXT")])
    schema = SchemaModel(dialect=dialect, tables=[model])
    return conn, schema, model


class TestPivotSelector:
    def test_selects_existing_row(self):
        conn, schema, model = setup_connection()
        selector = PivotSelector(conn, schema, RandomSource(1))
        tables_rows = selector.tables_with_rows([model])
        assert len(tables_rows) == 1
        pivot = selector.select(tables_rows)
        assert pivot.row_counts["t0"] == 3
        assert "t0.c0" in pivot.values and "t0.c1" in pivot.values

    def test_empty_tables_dropped(self):
        conn, schema, model = setup_connection()
        conn.execute("DELETE FROM t0")
        selector = PivotSelector(conn, schema, RandomSource(1))
        assert selector.tables_with_rows([model]) == []

    def test_unreadable_relation_dropped(self):
        conn, schema, model = setup_connection()
        ghost = TableModel(name="ghost",
                           columns=[ColumnModel(name="x")])
        selector = PivotSelector(conn, schema, RandomSource(1))
        assert selector.tables_with_rows([ghost]) == []

    def test_all_single_row_flag(self):
        pivot = PivotRow(tables=[], row_counts={"a": 1, "b": 1})
        assert pivot.all_single_row
        pivot.row_counts["b"] = 2
        assert not pivot.all_single_row


def make_querygen(dialect="sqlite", seed=5, **kwargs):
    rng = RandomSource(seed)
    generator = ExpressionGenerator(get_dialect(dialect), rng, max_depth=3)
    interp = make_interpreter(dialect)
    return QueryGenerator(generator, interp, rng, **kwargs), interp


class TestQuerySynthesis:
    def test_query_always_fetches_pivot(self):
        conn, schema, model = setup_connection()
        selector = PivotSelector(conn, schema, RandomSource(7))
        querygen, interp = make_querygen()
        for _ in range(150):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize(pivot)
            assert check_containment(conn, query, interp.semantics), \
                query.sql

    def test_intersect_mode_agrees(self):
        conn, schema, model = setup_connection()
        selector = PivotSelector(conn, schema, RandomSource(8))
        querygen, interp = make_querygen(seed=8)
        for _ in range(80):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize(pivot)
            client = check_containment(conn, query, interp.semantics,
                                       use_intersect=False)
            via_intersect = check_containment(conn, query,
                                              interp.semantics,
                                              use_intersect=True)
            assert client and via_intersect, query.sql

    def test_containment_query_shape(self):
        conn, schema, model = setup_connection()
        selector = PivotSelector(conn, schema, RandomSource(9))
        querygen, _ = make_querygen(seed=9)
        pivot = selector.select(selector.tables_with_rows([model]))
        query = querygen.synthesize(pivot)
        sql = containment_query(query, "sqlite")
        assert sql.startswith("SELECT ") and " INTERSECT " in sql

    def test_multi_table_pivot(self):
        conn, schema, model = setup_connection()
        conn.execute("CREATE TABLE t1(c0 INT)")
        conn.execute("INSERT INTO t1(c0) VALUES (10), (20)")
        other = TableModel(name="t1",
                           columns=[ColumnModel(name="c0",
                                                type_name="INT")])
        schema.tables.append(other)
        selector = PivotSelector(conn, schema, RandomSource(10))
        querygen, interp = make_querygen(seed=10)
        for _ in range(60):
            pivot = selector.select(
                selector.tables_with_rows([model, other]))
            query = querygen.synthesize(pivot)
            assert check_containment(conn, query, interp.semantics), \
                query.sql

    def test_aggregate_mode_single_row(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t0(c0 INT)")
        conn.execute("INSERT INTO t0(c0) VALUES (5)")
        model = TableModel(name="t0",
                           columns=[ColumnModel(name="c0",
                                                type_name="INT")])
        schema = SchemaModel(dialect="sqlite", tables=[model])
        selector = PivotSelector(conn, schema, RandomSource(11))
        querygen, interp = make_querygen(seed=11,
                                         aggregate_probability=1.0)
        saw_aggregate = False
        for _ in range(60):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize(pivot)
            saw_aggregate = saw_aggregate or query.uses_aggregates
            assert check_containment(conn, query, interp.semantics), \
                query.sql
        assert saw_aggregate

    def test_groupby_mode(self):
        conn, schema, model = setup_connection()
        selector = PivotSelector(conn, schema, RandomSource(12))
        querygen, interp = make_querygen(seed=12,
                                         groupby_probability=1.0,
                                         aggregate_probability=0.0)
        saw_groupby = False
        for _ in range(60):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize(pivot)
            saw_groupby = saw_groupby or "GROUP BY" in query.sql
            assert check_containment(conn, query, interp.semantics), \
                query.sql
        assert saw_groupby

    def test_postgres_synthesis(self):
        conn = MiniDBConnection("postgres")
        conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT)")
        conn.execute("INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, NULL)")
        model = TableModel(name="t0", columns=[
            ColumnModel(name="c0", type_name="INT"),
            ColumnModel(name="c1", type_name="TEXT")])
        schema = SchemaModel(dialect="postgres", tables=[model])
        selector = PivotSelector(conn, schema, RandomSource(13))
        querygen, interp = make_querygen("postgres", seed=13)
        for _ in range(80):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize(pivot)
            try:
                contained = check_containment(conn, query,
                                              interp.semantics)
            except Exception:  # noqa: BLE001 - runtime errors allowed
                continue
            assert contained, query.sql
