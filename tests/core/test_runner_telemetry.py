"""Runner instrumentation: the PQS loop measures itself accurately."""

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig
from repro.telemetry import ListSink, Telemetry, Tracer, names


def hunted(telemetry, databases=3, seed=7):
    runner = PQSRunner(lambda: MiniDBConnection("sqlite"),
                       RunnerConfig(dialect="sqlite", seed=seed),
                       telemetry=telemetry)
    return runner.run(databases)


class TestCountersMatchStatistics:
    def test_counters_equal_run_statistics(self):
        telemetry = Telemetry()
        stats = hunted(telemetry)
        registry = telemetry.registry
        assert registry.value(names.ROUNDS) == stats.databases
        assert registry.value(names.STATEMENTS) == stats.statements
        assert registry.value(names.QUERIES) == stats.queries
        assert registry.value(names.PIVOTS) == stats.pivots
        assert registry.value(names.EXPECTED_ERRORS) \
            == stats.expected_errors
        assert registry.value(names.TIMEOUTS) == stats.timeouts
        assert registry.value(names.REPORTS) == len(stats.reports)

    def test_expected_errors_labeled_by_statement_kind(self):
        telemetry = Telemetry()
        stats = hunted(telemetry, databases=6)
        if stats.expected_errors == 0:
            return  # nothing to label on this seed
        kinds = [i.labels["kind"]
                 for i in telemetry.registry.instruments()
                 if i.name == names.EXPECTED_ERRORS]
        assert kinds and all(kinds)

    def test_round_seconds_always_measured(self):
        # Timing is telemetry-independent: even a null-telemetry run
        # reports wall-clock (throughput must always be computable).
        stats = hunted(None)
        assert stats.seconds > 0
        assert stats.queries_per_second > 0


class TestPhaseHistograms:
    def test_all_four_phases_observed(self):
        telemetry = Telemetry()
        stats = hunted(telemetry)
        registry = telemetry.registry
        for phase in names.PHASES:
            histogram = registry.histogram(names.PHASE_SECONDS,
                                           phase=phase)
            assert histogram.count > 0, phase
            assert histogram.sum > 0, phase
        # Synthesis + containment run once per checked query.
        synth = registry.histogram(names.PHASE_SECONDS,
                                   phase=names.PHASE_SYNTH)
        assert synth.count >= stats.queries
        stategen = registry.histogram(names.PHASE_SECONDS,
                                      phase=names.PHASE_STATEGEN)
        assert stategen.count == stats.databases

    def test_phase_time_within_round_time(self):
        telemetry = Telemetry()
        hunted(telemetry)
        registry = telemetry.registry
        phase_total = sum(
            registry.histogram(names.PHASE_SECONDS, phase=p).sum
            for p in names.PHASES)
        round_total = registry.histogram(names.ROUND_SECONDS).sum
        assert phase_total <= round_total


class TestTracing:
    def test_spans_cover_the_loop_in_order(self):
        sink = ListSink()
        hunted(Telemetry(tracer=Tracer(sink)), databases=1)
        spans = [e["name"] for e in sink.events if e["kind"] == "span"]
        assert spans[0] == names.PHASE_STATEGEN
        assert names.PHASE_SYNTH in spans
        assert names.PHASE_CONTAIN in spans
        # Synthesis always closes before its containment check.
        assert spans.index(names.PHASE_SYNTH) \
            < spans.index(names.PHASE_CONTAIN)

    def test_disabled_telemetry_emits_nothing(self):
        sink = ListSink()
        # Default construction: no telemetry argument at all.
        runner = PQSRunner(lambda: MiniDBConnection("sqlite"),
                           RunnerConfig(dialect="sqlite", seed=7))
        stats = runner.run(2)
        assert stats.databases == 2
        assert sink.events == []
        assert runner.telemetry.registry.snapshot() == {}

    def test_telemetry_does_not_perturb_the_hunt(self):
        # Identical seeds must produce identical findings with
        # telemetry on, off, and tracing-only — instrumentation cannot
        # consume randomness or change control flow.
        baseline = hunted(None, databases=4, seed=11)
        metered = hunted(Telemetry(), databases=4, seed=11)
        traced = hunted(Telemetry(tracer=Tracer(ListSink())),
                        databases=4, seed=11)
        for other in (metered, traced):
            assert other.statements == baseline.statements
            assert other.queries == baseline.queries
            assert len(other.reports) == len(baseline.reports)
            assert [r.message for r in other.reports] \
                == [r.message for r in baseline.reports]
