"""Literal generator tests: dialect/type discipline and pool shape."""

import pytest

from repro.core.literals import (
    BLOB_POOL,
    CASE_PAIR_POOL,
    INTEGER_POOL,
    LiteralGenerator,
    REAL_POOL,
    TEXT_POOL,
)
from repro.rng import RandomSource
from repro.values import SQLType


def gen(dialect="sqlite", seed=1):
    return LiteralGenerator(dialect, RandomSource(seed))


class TestPools:
    def test_boundary_integers_present(self):
        assert 2**63 - 1 in INTEGER_POOL
        assert -(2**63) in INTEGER_POOL
        assert 127 in INTEGER_POOL and -128 in INTEGER_POOL
        # The paper's own bug-triggering constants:
        assert 2035382037 in INTEGER_POOL          # Listing 12
        assert 2851427734582196970 in INTEGER_POOL  # Listing 2

    def test_text_pool_has_collation_fodder(self):
        assert "a" in TEXT_POOL and "A" in TEXT_POOL
        assert any(t.endswith(" ") for t in TEXT_POOL)   # RTRIM
        assert any(t.startswith(" ") for t in TEXT_POOL)
        assert "%" in TEXT_POOL and "_" in TEXT_POOL     # LIKE
        assert "./" in TEXT_POOL                          # Listing 7
        assert "0.5" in TEXT_POOL                         # MySQL bool bug

    def test_case_pair_pool_collides_under_nocase(self):
        from repro.values import collate_nocase

        lowered = {}
        collisions = 0
        for text in CASE_PAIR_POOL:
            for other in CASE_PAIR_POOL:
                if text != other and collate_nocase(text, other) == 0:
                    collisions += 1
        assert collisions >= 6

    def test_blob_pool_is_nul_free_ascii(self):
        for blob in BLOB_POOL:
            assert all(0 < byte < 128 for byte in blob)


class TestTypedDraws:
    @pytest.mark.parametrize("bucket,expected_types", [
        ("number", {SQLType.INTEGER, SQLType.REAL}),
        ("text", {SQLType.TEXT}),
        ("blob", {SQLType.BLOB}),
        ("boolean", {SQLType.BOOLEAN}),
    ])
    def test_bucket_types(self, bucket, expected_types):
        generator = gen("postgres")
        seen = set()
        for _ in range(200):
            node = generator.typed_literal(bucket, null_probability=0.0)
            seen.add(node.value.t)
        assert seen <= expected_types
        assert seen

    def test_null_probability_extremes(self):
        generator = gen()
        assert all(generator.typed_literal("number", 1.0).value.is_null
                   for _ in range(20))
        assert not any(
            generator.typed_literal("number", 0.0).value.is_null
            for _ in range(20))

    def test_any_literal_sqlite_spans_storage_classes(self):
        generator = gen("sqlite")
        seen = {generator.any_literal().value.t for _ in range(400)}
        assert {SQLType.INTEGER, SQLType.REAL, SQLType.TEXT,
                SQLType.BLOB, SQLType.NULL} <= seen

    def test_any_literal_postgres_never_blob(self):
        generator = gen("postgres")
        seen = {generator.any_literal().value.t for _ in range(300)}
        assert SQLType.BLOB not in seen


class TestInsertValues:
    def test_postgres_insert_values_match_column_type(self):
        generator = gen("postgres")
        for _ in range(100):
            node = generator.insert_value("INT", null_probability=0.0)
            assert node.value.t in (SQLType.INTEGER, SQLType.REAL)
        for _ in range(100):
            node = generator.insert_value("TEXT", null_probability=0.0)
            assert node.value.t is SQLType.TEXT
        for _ in range(100):
            node = generator.insert_value("BOOLEAN",
                                          null_probability=0.0)
            assert node.value.t is SQLType.BOOLEAN

    def test_sqlite_insert_values_ignore_declared_type(self):
        """Storing ill-typed values is how the paper found SQLite's
        type-flexibility bugs (§4.4)."""
        generator = gen("sqlite", seed=3)
        seen = {generator.insert_value("INT",
                                       null_probability=0.0).value.t
                for _ in range(300)}
        assert SQLType.TEXT in seen and SQLType.INTEGER in seen

    def test_not_null_columns_never_get_null(self):
        generator = gen()
        assert not any(
            generator.insert_value("INT", null_probability=0.0
                                   ).value.is_null
            for _ in range(50))
