"""Containment-check unit behaviour: collation-aware matching, INTERSECT
gating, and NaN handling."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.containment import (
    _intersect_safe,
    _target_collations,
    check_containment,
    containment_query,
)
from repro.core.querygen import SynthesizedQuery
from repro.interp import get_semantics
from repro.sqlast.nodes import CollateNode, ColumnNode, LiteralNode
from repro.values import Value


def query(sql, targets, expected, **kwargs):
    return SynthesizedQuery(sql=sql, targets=targets, expected=expected,
                            **kwargs)


class TestCollationAwareMatch:
    def test_nocase_representative_counts_as_contained(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t(a TEXT COLLATE NOCASE)")
        conn.execute("INSERT INTO t(a) VALUES ('AB')")
        target = ColumnNode("t", "a", collation="NOCASE",
                            affinity="TEXT")
        q = query("SELECT a FROM t WHERE 1", [target],
                  [Value.text("ab")])
        assert check_containment(conn, q, get_semantics("sqlite"))

    def test_binary_columns_stay_strict(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t(a TEXT)")
        conn.execute("INSERT INTO t(a) VALUES ('AB')")
        target = ColumnNode("t", "a", affinity="TEXT")
        q = query("SELECT a FROM t WHERE 1", [target],
                  [Value.text("ab")])
        assert not check_containment(conn, q, get_semantics("sqlite"))

    def test_collations_extracted_from_targets(self):
        targets = [ColumnNode("t", "a", collation="NOCASE"),
                   CollateNode(LiteralNode(Value.text("x")), "RTRIM"),
                   LiteralNode(Value.integer(1))]
        q = query("SELECT 1", targets,
                  [Value.text("a"), Value.text("x"), Value.integer(1)])
        assert _target_collations(q, "sqlite") == ["NOCASE", "RTRIM",
                                                   None]
        assert _target_collations(q, "postgres") == [None, None, None]


class TestIntersectGating:
    def test_extreme_reals_not_intersect_safe(self):
        assert _intersect_safe(Value.real(1.0))
        assert _intersect_safe(Value.real(0.0))
        assert not _intersect_safe(Value.real(9.1e-297))
        assert not _intersect_safe(Value.real(4e250))
        assert not _intersect_safe(Value.real(float("nan")))
        assert _intersect_safe(Value.text("x"))

    def test_order_by_disables_intersect(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t(a)")
        conn.execute("INSERT INTO t(a) VALUES (1)")
        q = query("SELECT a FROM t WHERE 1 ORDER BY a",
                  [ColumnNode("t", "a")], [Value.integer(1)],
                  has_order_by=True)
        # Must not raise (an INTERSECT over ORDER BY would), and match.
        assert check_containment(conn, q, get_semantics("sqlite"),
                                 use_intersect=True)

    def test_intersect_query_rendering(self):
        q = query("SELECT a FROM t WHERE 1", [ColumnNode("t", "a")],
                  [Value.integer(3), Value.text("x'y")])
        sql = containment_query(q, "sqlite")
        assert sql == "SELECT 3, 'x''y' INTERSECT SELECT a FROM t WHERE 1"

    def test_intersect_and_client_agree(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t(a)")
        conn.execute("INSERT INTO t(a) VALUES (1), ('x')")
        semantics = get_semantics("sqlite")
        for value, present in ((Value.integer(1), True),
                               (Value.text("x"), True),
                               (Value.integer(9), False)):
            q = query("SELECT a FROM t WHERE 1", [ColumnNode("t", "a")],
                      [value])
            assert check_containment(conn, q, semantics,
                                     use_intersect=True) is present
            assert check_containment(conn, q, semantics,
                                     use_intersect=False) is present


class TestRowArity:
    def test_width_mismatch_never_matches(self):
        conn = MiniDBConnection("sqlite")
        conn.execute("CREATE TABLE t(a, b)")
        conn.execute("INSERT INTO t(a, b) VALUES (1, 2)")
        q = query("SELECT a, b FROM t WHERE 1", [ColumnNode("t", "a")],
                  [Value.integer(1)])
        assert not check_containment(conn, q, get_semantics("sqlite"))
