"""Rectification (paper Algorithm 3): the soundness pillar of PQS."""

import pytest

from repro.core.rectify import (
    apply_rectification,
    rectify_condition,
    verify_rectified,
)
from repro.interp import make_interpreter
from repro.minidb.parser import parse_expression
from repro.sqlast.nodes import PostfixNode, PostfixOp, UnaryNode, UnaryOp
from repro.values import Value

INTERP = make_interpreter("sqlite")


class TestApplyRectification:
    def test_true_unchanged(self):
        expr = parse_expression("1")
        assert apply_rectification(expr, True) is expr

    def test_false_wrapped_in_not(self):
        expr = parse_expression("0")
        out = apply_rectification(expr, False)
        assert isinstance(out, UnaryNode) and out.op is UnaryOp.NOT

    def test_null_wrapped_in_isnull(self):
        expr = parse_expression("NULL")
        out = apply_rectification(expr, None)
        assert isinstance(out, PostfixNode)
        assert out.op is PostfixOp.ISNULL


class TestRectifyCondition:
    @pytest.mark.parametrize("sql", [
        "1", "0", "NULL", "1 = 2", "NULL + 3", "'abc'", "0.5",
        "NULL IS NOT 1", "X'61'", "1 IN (NULL, 2)",
    ])
    def test_always_true_after_rectification(self, sql):
        expr = parse_expression(sql)
        rectified = rectify_condition(expr, INTERP, {})
        assert INTERP.evaluate_bool(rectified, {}) is True
        assert verify_rectified(rectified, INTERP, {})

    def test_rectifies_against_pivot_row(self):
        row = {"t0.c0": Value.null()}
        expr = parse_expression("t0.c0 IS NOT 1")
        rectified = rectify_condition(expr, INTERP, row)
        # NULL IS NOT 1 is TRUE already: unchanged (paper Listing 1).
        assert rectified is expr

    def test_false_on_pivot_gets_negated(self):
        row = {"t0.c0": Value.integer(1)}
        expr = parse_expression("t0.c0 IS NOT 1")
        rectified = rectify_condition(expr, INTERP, row)
        assert INTERP.evaluate_bool(rectified, row) is True

    def test_strict_dialect_errors_propagate(self):
        from repro.interp.base import EvalError

        pg = make_interpreter("postgres")
        with pytest.raises(EvalError):
            rectify_condition(parse_expression("1 / 0 = 1"), pg, {})


class TestRectifyPropertyRandom:
    def test_random_expressions_rectify_true(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent))
        from support.diffharness import ExprFuzzer

        fuzzer = ExprFuzzer(777)
        rectified_count = 0
        for _ in range(500):
            expr = fuzzer.expr(3)
            try:
                rectified = rectify_condition(expr, INTERP, {})
            except Exception:  # noqa: BLE001 - out-of-fragment draws
                continue
            assert INTERP.evaluate_bool(rectified, {}) is True
            rectified_count += 1
        assert rectified_count > 400
