"""Expression-level query shrinking tests."""

from repro.core.reports import TestCase
from repro.core.shrink import QueryShrinker
from repro.errors import DBError
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine


def engine_fails_predicate(bug_id: str, wrong_result_marker):
    """A predicate replaying candidates against single-bug vs clean
    engines (same scheme the campaign uses)."""
    from repro.campaigns.replay import DifferentialReplayer

    return DifferentialReplayer("sqlite",
                                BugRegistry({bug_id})).manifests


class TestShrinkMechanics:
    def test_keeps_failure(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
            "INSERT INTO t0(c0) VALUES (0), (1), (NULL)",
            "SELECT c0 FROM t0 WHERE ((t0.c0 IS NOT 1) AND (1 = 1))",
        ])
        manifests = engine_fails_predicate("sqlite-partial-index-is-not",
                                           None)
        assert manifests(case)
        shrunk = QueryShrinker(manifests).shrink(case)
        assert manifests(shrunk)

    def test_shrinks_padded_condition(self):
        # The padded AND-with-tautology must shrink toward the core
        # `t0.c0 IS NOT 1` predicate.
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
            "INSERT INTO t0(c0) VALUES (0), (1), (NULL)",
            "SELECT c0 FROM t0 WHERE ((t0.c0 IS NOT 1) AND "
            "((1 = 1) AND (2 = 2)))",
        ])
        manifests = engine_fails_predicate("sqlite-partial-index-is-not",
                                           None)
        shrunk = QueryShrinker(manifests).shrink(case)
        final = shrunk.statements[-1]
        assert "IS NOT 1" in final
        assert len(final) < len(case.statements[-1])

    def test_non_select_final_untouched(self):
        case = TestCase(statements=["CREATE TABLE t0(c0)", "VACUUM"])
        shrunk = QueryShrinker(lambda c: True).shrink(case)
        assert shrunk.statements == case.statements

    def test_select_without_where_untouched(self):
        case = TestCase(statements=["CREATE TABLE t0(c0)",
                                    "SELECT * FROM t0"])
        shrunk = QueryShrinker(lambda c: True).shrink(case)
        assert shrunk is case

    def test_attempt_budget_respected(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "SELECT c0 FROM t0 WHERE ((1 = 1) AND ((2 = 2) AND "
            "((3 = 3) AND (4 = 4))))",
        ])
        shrinker = QueryShrinker(lambda c: False, max_attempts=5)
        shrinker.shrink(case)
        assert shrinker.attempts <= 6

    def test_never_grows(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "SELECT c0 FROM t0 WHERE (t0.c0 = 1)",
        ])
        shrunk = QueryShrinker(lambda c: True).shrink(case)
        assert len(shrunk.statements[-1]) <= len(case.statements[-1])


class TestCampaignIntegration:
    def test_campaign_reports_have_small_conditions(self):
        from repro.campaigns.campaign import Campaign, CampaignConfig

        result = None
        for seed in range(6):
            config = CampaignConfig(
                dialect="sqlite", seed=seed, databases=60,
                bug_ids=["sqlite-partial-index-is-not"])
            result = Campaign(config).run()
            if result.reports:
                break
        assert result is not None and result.reports
        for report in result.reports:
            final = report.test_case.statements[-1]
            # Shrunk WHERE clauses stay compact.
            assert len(final) < 400, final
