"""Tool-side schema model tests."""

import pytest

from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.sqlast.nodes import ColumnNode


class TestColumnModel:
    def test_affinity_only_for_sqlite(self):
        column = ColumnModel(name="c", type_name="INT")
        assert column.affinity("sqlite") == "INTEGER"
        assert column.affinity("mysql") is None
        assert ColumnModel(name="c").affinity("sqlite") is None

    @pytest.mark.parametrize("type_name,bucket", [
        ("INT", "number"), ("BIGINT", "number"), ("DOUBLE", "number"),
        ("SERIAL", "number"), ("TEXT", "text"), ("VARCHAR", "text"),
        ("BOOLEAN", "boolean"), ("BLOB", "blob"), ("BYTEA", "blob"),
        (None, "any"),
    ])
    def test_type_buckets(self, type_name, bucket):
        assert ColumnModel(name="c", type_name=type_name).type_bucket(
            "postgres" if type_name != "BLOB" else "mysql") == bucket

    def test_column_node_annotations(self):
        column = ColumnModel(name="c", type_name="INT",
                             collation="NOCASE")
        node = column.column_node("t", "sqlite")
        assert node == ColumnNode("t", "c", collation="NOCASE",
                                  affinity="INTEGER")
        bare = column.column_node("t", "postgres")
        assert bare.affinity is None


class TestTableModel:
    def test_column_lookup(self):
        table = TableModel(name="t", columns=[ColumnModel(name="a")])
        assert table.column("a").name == "a"
        with pytest.raises(KeyError):
            table.column("z")


class TestSchemaModel:
    def test_fresh_names(self):
        schema = SchemaModel(dialect="sqlite")
        assert [schema.fresh_table_name() for _ in range(2)] == \
            ["t0", "t1"]
        assert schema.fresh_index_name() == "i0"
        assert schema.fresh_view_name() == "v0"

    def test_base_tables_exclude_views(self):
        schema = SchemaModel(dialect="sqlite", tables=[
            TableModel(name="t", columns=[]),
            TableModel(name="v", columns=[], is_view=True)])
        assert [t.name for t in schema.base_tables()] == ["t"]
        assert len(schema.relations()) == 2

    def test_table_lookup(self):
        schema = SchemaModel(dialect="sqlite", tables=[
            TableModel(name="t", columns=[])])
        assert schema.table("t").name == "t"
        with pytest.raises(KeyError):
            schema.table("nope")
