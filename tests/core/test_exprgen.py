"""Expression generation (paper Algorithm 1): depth bound, fragment
discipline, and strict-dialect well-typedness."""

import pytest

from repro.core.exprgen import ExpressionGenerator
from repro.dialects import get_dialect
from repro.interp import make_interpreter
from repro.interp.base import EvalError
from repro.rng import RandomSource
from repro.sqlast.nodes import ColumnNode, FunctionNode, LiteralNode, depth, walk
from repro.values import SQLType, Value


def make_generator(dialect="sqlite", seed=1, max_depth=4):
    gen = ExpressionGenerator(get_dialect(dialect), RandomSource(seed),
                              max_depth=max_depth)
    return gen


class TestDepthBound:
    @pytest.mark.parametrize("max_depth", [1, 2, 4, 6])
    def test_depth_never_exceeded(self, max_depth):
        gen = make_generator(max_depth=max_depth)
        for _ in range(300):
            expr = gen.condition()
            # A node per level plus one leaf: depth <= max_depth + 1.
            assert depth(expr) <= max_depth + 1

    def test_max_depth_zero_gives_leaves(self):
        gen = make_generator(max_depth=0)
        for _ in range(50):
            expr = gen.condition()
            assert isinstance(expr, (LiteralNode, ColumnNode))


class TestColumnUsage:
    def test_columns_referenced_when_available(self):
        gen = make_generator(seed=3)
        node = ColumnNode("t0", "c0", affinity="INTEGER")
        gen.set_columns([(node, "number")])
        used = 0
        for _ in range(200):
            expr = gen.condition()
            if any(isinstance(n, ColumnNode) for n in walk(expr)):
                used += 1
        assert used > 100

    def test_no_columns_means_constant_expressions(self):
        gen = make_generator(seed=4)
        for _ in range(100):
            expr = gen.condition()
            assert not any(isinstance(n, ColumnNode) for n in walk(expr))

    def test_pivot_value_literals_drawn(self):
        gen = make_generator(seed=5)
        node = ColumnNode("t0", "c0")
        sentinel = Value.integer(424242)
        gen.set_columns([(node, "number")], {"t0.c0": sentinel})
        seen = False
        for _ in range(300):
            expr = gen.condition()
            for n in walk(expr):
                if isinstance(n, LiteralNode) and n.value == sentinel:
                    seen = True
        assert seen


class TestFragmentDiscipline:
    def test_substr_offsets_are_small_literals(self):
        gen = make_generator(seed=6)
        for _ in range(500):
            expr = gen.condition()
            for node in walk(expr):
                if isinstance(node, FunctionNode) and \
                        node.name == "SUBSTR":
                    for arg in node.args[1:]:
                        assert isinstance(arg, LiteralNode)
                        assert abs(int(arg.value.v)) <= 7

    def test_only_dialect_functions_used(self):
        dialect = get_dialect("mysql")
        gen = make_generator("mysql", seed=7)
        allowed = {sig.name for sig in dialect.functions}
        for _ in range(400):
            for node in walk(gen.condition()):
                if isinstance(node, FunctionNode):
                    assert node.name in allowed

    def test_no_glob_outside_sqlite(self):
        from repro.sqlast.nodes import BinaryNode, BinaryOp

        gen = make_generator("postgres", seed=8)
        for _ in range(300):
            for node in walk(gen.condition()):
                if isinstance(node, BinaryNode):
                    assert node.op is not BinaryOp.GLOB


class TestPostgresWellTypedness:
    """Generated PG conditions almost always evaluate without type errors
    — the point of typed generation (§3.2)."""

    def test_boolean_root_evaluates(self):
        gen = make_generator("postgres", seed=9)
        node = ColumnNode("t0", "c0")
        gen.set_columns([(node, "number")],
                        {"t0.c0": Value.integer(3)})
        interp = make_interpreter("postgres")
        ok = errors = 0
        for _ in range(400):
            expr = gen.condition()
            try:
                out = interp.evaluate_bool(expr, {"t0.c0":
                                                  Value.integer(3)})
            except EvalError:
                errors += 1
                continue
            assert out in (True, False, None)
            ok += 1
        # Division by zero and overflow still slip through; type errors
        # should not dominate.
        assert ok > errors * 3

    def test_scalar_buckets(self):
        gen = make_generator("postgres", seed=10)
        interp = make_interpreter("postgres")
        types = set()
        for _ in range(300):
            expr = gen.scalar()
            try:
                value = interp.evaluate(expr, {})
            except EvalError:
                continue
            types.add(value.t)
        assert SQLType.TEXT in types
        assert SQLType.INTEGER in types or SQLType.REAL in types


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = make_generator(seed=11), make_generator(seed=11)
        assert [a.condition() for _ in range(30)] == \
            [b.condition() for _ in range(30)]
