"""The §7 negative-containment extension: conditions rectified to FALSE,
the pivot row must NOT be fetched."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.containment import check_containment
from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotSelector
from repro.core.querygen import QueryGenerator
from repro.core.rectify import rectify_condition_to_false
from repro.core.runner import PQSRunner, RunnerConfig
from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import get_dialect
from repro.interp import make_interpreter
from repro.minidb.bugs import BugRegistry
from repro.minidb.parser import parse_expression
from repro.rng import RandomSource
from repro.values import Value

INTERP = make_interpreter("sqlite")


class TestRectifyToFalse:
    @pytest.mark.parametrize("sql", ["1", "0", "NULL", "0.5", "'abc'",
                                     "NULL + 1", "1 = 1"])
    def test_always_false(self, sql):
        expr = parse_expression(sql)
        rectified = rectify_condition_to_false(expr, INTERP, {})
        assert INTERP.evaluate_bool(rectified, {}) is False

    def test_false_condition_unchanged(self):
        expr = parse_expression("1 = 2")
        assert rectify_condition_to_false(expr, INTERP, {}) is expr


def _fixture(dialect="sqlite"):
    conn = MiniDBConnection(dialect)
    conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT)")
    conn.execute("INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b')")
    model = TableModel(name="t0", columns=[
        ColumnModel(name="c0", type_name="INT"),
        ColumnModel(name="c1", type_name="TEXT")])
    schema = SchemaModel(dialect=dialect, tables=[model])
    return conn, schema, model


class TestNegativeSynthesis:
    def test_pivot_never_fetched_on_clean_engine(self):
        conn, schema, model = _fixture()
        rng = RandomSource(19)
        selector = PivotSelector(conn, schema, rng)
        generator = ExpressionGenerator(get_dialect("sqlite"), rng,
                                        max_depth=3)
        querygen = QueryGenerator(generator, INTERP, rng)
        for _ in range(120):
            pivot = selector.select(selector.tables_with_rows([model]))
            query = querygen.synthesize_negative(pivot)
            assert query.negative
            assert not check_containment(conn, query, INTERP.semantics), \
                query.sql

    def test_catches_rtrim_defect(self):
        """Deterministic version of the extension catching a bug: the
        oracle says `c0 = 'x'` is FALSE for pivot ' x' (RTRIM keeps
        leading spaces), but the defective engine strips them and
        fetches the row."""
        conn = MiniDBConnection(
            "sqlite", bugs=BugRegistry({"sqlite-rtrim-compare"}))
        conn.execute("CREATE TABLE t0(c0 TEXT COLLATE RTRIM)")
        conn.execute("INSERT INTO t0(c0) VALUES (' x'), ('y')")

        from repro.core.querygen import SynthesizedQuery
        from repro.sqlast.nodes import ColumnNode

        pivot_env = {"t0.c0": Value.text(" x")}
        condition = parse_expression("t0.c0 = 'x'")
        # Bind the collation annotation the generator would attach.
        from repro.sqlast.transform import transform

        def bind(node):
            if isinstance(node, ColumnNode):
                return ColumnNode("t0", "c0", collation="RTRIM",
                                  affinity="TEXT")
            return None

        condition = transform(condition, bind)
        rectified = rectify_condition_to_false(condition, INTERP,
                                               pivot_env)
        assert INTERP.evaluate_bool(rectified, pivot_env) is False

        from repro.sqlast.render import render_expr

        query = SynthesizedQuery(
            sql=f"SELECT t0.c0 FROM t0 WHERE "
                f"{render_expr(rectified)}",
            targets=[], expected=[Value.text(" x")], negative=True)
        # Defective engine: the FALSE condition evaluates TRUE for the
        # pivot and the row is fetched — a finding.
        assert check_containment(conn, query, INTERP.semantics)
        # Clean engine: nothing fetched.
        clean = MiniDBConnection("sqlite")
        clean.execute("CREATE TABLE t0(c0 TEXT COLLATE RTRIM)")
        clean.execute("INSERT INTO t0(c0) VALUES (' x'), ('y')")
        assert not check_containment(clean, query, INTERP.semantics)


class TestRunnerIntegration:
    def test_negative_mode_sound_on_clean_engines(self):
        for dialect in ("sqlite", "mysql", "postgres"):
            config = RunnerConfig(dialect=dialect, seed=33,
                                  negative_probability=0.5)
            runner = PQSRunner(lambda d=dialect: MiniDBConnection(d),
                               config)
            stats = runner.run(10)
            assert stats.reports == [], dialect

    def test_duplicate_valued_rows_disable_negative_mode(self):
        conn, schema, model = _fixture()
        conn.execute("INSERT INTO t0(c0, c1) VALUES (1, 'a')")  # dup row
        config = RunnerConfig(dialect="sqlite", seed=3)
        runner = PQSRunner(lambda: conn, config)
        rows = conn.execute("SELECT * FROM t0")
        pivot_rows = [(model, rows)]
        selector = PivotSelector(conn, schema, RandomSource(3))
        pivot = selector.select(pivot_rows)
        if all(INTERP.semantics.values_equal(a, b)
               for a, b in zip(pivot.row_by_table["t0"], rows[0])):
            assert not runner._negative_mode_sound(pivot, pivot_rows)
