"""The error oracle's expected/unexpected classification (paper §3.3)."""

import pytest

from repro.core.error_oracle import ErrorOracle, statement_kind
from repro.errors import DBError, DBTimeout


ORACLE = ErrorOracle("sqlite")


class TestStatementKind:
    @pytest.mark.parametrize("sql,kind", [
        ("SELECT 1", "SELECT"),
        ("select 1", "SELECT"),
        ("INSERT INTO t VALUES (1)", "INSERT"),
        ("CREATE TABLE t(a)", "CREATE TABLE"),
        ("CREATE UNIQUE INDEX i ON t(a)", "CREATE INDEX"),
        ("CREATE INDEX i ON t(a)", "CREATE INDEX"),
        ("CREATE VIEW v AS SELECT 1", "CREATE VIEW"),
        ("CREATE STATISTICS s ON a FROM t", "CREATE STATISTICS"),
        ("CHECK TABLE t", "CHECK TABLE"),
        ("REPAIR TABLE t", "REPAIR TABLE"),
        ("PRAGMA x = 1", "PRAGMA"),
        ("SET GLOBAL a = 1", "SET"),
        ("VACUUM", "VACUUM"),
        ("  REINDEX t", "REINDEX"),
        ("", "UNKNOWN"),
        ("GIBBERISH", "UNKNOWN"),
    ])
    def test_kinds(self, sql, kind):
        assert statement_kind(sql) == kind


class TestExpectedErrors:
    @pytest.mark.parametrize("sql,message", [
        ("INSERT INTO t VALUES (1)", "UNIQUE constraint failed: t.a"),
        ("INSERT INTO t VALUES (1)", "NOT NULL constraint failed: t.a"),
        ("INSERT INTO t VALUES (1)", "Duplicate entry for key 'PRIMARY'"),
        ("UPDATE t SET a = 1", "duplicate key value violates unique "
                              "constraint"),
        ("INSERT INTO t VALUES (1)", "integer out of range"),
        ("DELETE FROM t WHERE x", "division by zero"),
        ("CREATE TABLE t(a)", "table t already exists"),
        ("CREATE INDEX i ON t(a)", "no such table: t"),
        ("SELECT a FROM v", "no such column: a"),
        ("SELECT 1", "bigint out of range"),
        ("CREATE TABLE c(a TEXT) INHERITS (p)",
         'child table "c" has different type for column "a"'),
    ])
    def test_expected(self, sql, message):
        verdict = ORACLE.classify(sql, DBError(message))
        assert verdict.expected, (sql, message)


class TestUnexpectedErrors:
    @pytest.mark.parametrize("sql,message", [
        # Corruption is always a finding, regardless of statement.
        ("INSERT INTO t VALUES (1)", "database disk image is malformed"),
        ("SELECT 1", "malformed database schema (i0)"),
        ("VACUUM", "index is corrupted"),
        ("SELECT 1", "negative bitmapset member not allowed"),
        ("SELECT 1", 'found unexpected null value in index "i0"'),
        # Maintenance failures are findings (paper §4.3/§4.4).
        ("REINDEX", "UNIQUE constraint failed: t0.c0"),
        ("VACUUM", "integer out of range"),
        ("REPAIR TABLE t", "Incorrect key file for table 't'"),
        ("SET GLOBAL key_cache_division_limit = 100",
         "Incorrect arguments to SET"),
        # A containment query reporting a random internal error.
        ("SELECT 1", "stack overflow in frobnicator"),
    ])
    def test_unexpected(self, sql, message):
        verdict = ORACLE.classify(sql, DBError(message))
        assert not verdict.expected, (sql, message)

    def test_corruption_beats_expected_list(self):
        # 'malformed' matches ALWAYS_UNEXPECTED even on an INSERT whose
        # expected list is broad.
        verdict = ORACLE.classify(
            "INSERT INTO t VALUES (1)",
            DBError("malformed database schema (x) - no such column: c"))
        assert not verdict.expected

    def test_verdict_carries_context(self):
        verdict = ORACLE.classify("SELECT 1", DBError("boom"))
        assert verdict.statement_kind == "SELECT"
        assert verdict.message == "boom"


class TestTimeouts:
    def test_timeout_never_a_finding(self):
        # A watchdog expiry is an availability event, not an error-
        # oracle finding — even when its message would otherwise match
        # an always-unexpected pattern.
        verdict = ORACLE.classify(
            "SELECT 1",
            DBTimeout("statement exceeded 1s watchdog deadline"))
        assert verdict.expected

    def test_timeout_classified_before_patterns(self):
        verdict = ORACLE.classify(
            "VACUUM", DBTimeout("corrupt state made VACUUM hang"))
        assert verdict.expected, \
            "DBTimeout must short-circuit ALWAYS_UNEXPECTED matching"

    def test_timeout_is_a_db_error_subclass(self):
        assert issubclass(DBTimeout, DBError)
