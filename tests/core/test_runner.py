"""Runner internals: statement logging, error routing, option tracking,
report caps, and per-database round structure."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import DatabaseRound, PQSRunner, RunnerConfig
from repro.minidb.bugs import BugRegistry


def make_runner(dialect="sqlite", bugs=(), **overrides):
    config = RunnerConfig(dialect=dialect, seed=overrides.pop("seed", 0),
                          **overrides)
    return PQSRunner(
        lambda: MiniDBConnection(dialect, bugs=BugRegistry(set(bugs))),
        config)


class TestRunStatistics:
    def test_counters_accumulate(self):
        runner = make_runner(seed=5)
        stats = runner.run(5)
        assert stats.databases == 5
        assert stats.statements > 0
        assert stats.queries > 0
        assert stats.pivots > 0

    def test_expected_errors_counted_not_reported(self):
        runner = make_runner(seed=5)
        stats = runner.run(20)
        assert stats.expected_errors > 0
        assert stats.reports == []


class TestReportCap:
    def test_max_reports_per_database(self):
        runner = make_runner(
            bugs=["sqlite-rename-expr-index"], seed=3,
            max_reports_per_database=2)
        for _ in range(30):
            round_ = runner.run_database_round()
            assert len(round_.reports) <= 2


class TestOptionTracking:
    def test_case_sensitive_like_mirrored_into_oracle(self):
        runner = make_runner()
        connection = MiniDBConnection("sqlite")
        round_ = DatabaseRound()
        log = []
        runner._run_statement(connection,
                              "PRAGMA case_sensitive_like = 1", None,
                              log, round_)
        assert runner.interpreter.semantics.like_case_sensitive is True
        runner._run_statement(connection,
                              "PRAGMA case_sensitive_like = 0", None,
                              log, round_)
        assert runner.interpreter.semantics.like_case_sensitive is False

    def test_reset_each_database(self):
        runner = make_runner()
        runner.interpreter.semantics.like_case_sensitive = True
        runner.run_database_round()
        # A fresh database starts with the default PRAGMA value; the
        # round may have toggled it, but the *start* of the round reset
        # it, so a round generating no PRAGMA leaves it False.
        runner2 = make_runner(extra_statements=0)
        runner2.interpreter.semantics.like_case_sensitive = True
        runner2.run_database_round()
        assert runner2.interpreter.semantics.like_case_sensitive is False

    def test_failed_pragma_not_tracked(self):
        runner = make_runner()
        from repro.errors import DBError

        class FailingConnection:
            dialect = "sqlite"

            def execute(self, sql):
                raise DBError("no such pragma")

            def close(self):
                pass

        round_ = DatabaseRound()
        runner._run_statement(FailingConnection(),
                              "PRAGMA case_sensitive_like = 1", None,
                              [], round_)
        assert runner.interpreter.semantics.like_case_sensitive is False


class TestErrorRouting:
    def test_unexpected_error_reported_with_log(self):
        runner = make_runner(bugs=["mysql-set-option-error"],
                             dialect="mysql", seed=11)
        found = None
        for _ in range(60):
            round_ = runner.run_database_round()
            for report in round_.reports:
                if "Incorrect arguments" in report.message:
                    found = report
                    break
            if found:
                break
        assert found is not None
        assert found.test_case.statements[-1].startswith("SET")
        # The log prefix holds only statements that succeeded.
        assert all(not s.startswith("SET GLOBAL "
                                    "key_cache_division_limit = 100")
                   for s in found.test_case.statements[:-1])

    def test_crash_reported(self):
        runner = make_runner(bugs=["mysql-check-table-crash"],
                             dialect="mysql", seed=11)
        crashes = []
        for _ in range(80):
            round_ = runner.run_database_round()
            crashes.extend(r for r in round_.reports
                           if r.oracle.value == "segfault")
            if crashes:
                break
        assert crashes
        assert "CHECK TABLE" in crashes[0].test_case.statements[-1]


class TestLogDiscipline:
    def test_every_logged_statement_replays(self):
        """The statement log must be replayable on a fresh engine: every
        entry either succeeds or fails identically — the invariant the
        reducer and the attribution replay depend on."""
        from repro.errors import DBCrash, DBError

        runner = make_runner(seed=21)
        reports = []
        logs = []

        original = runner._run_statement

        def capture(connection, sql, on_success, log, round_):
            original(connection, sql, on_success, log, round_)
            logs.append(list(log))

        runner._run_statement = capture
        runner.run_database_round()
        assert logs
        final_log = logs[-1]
        replay = MiniDBConnection("sqlite")
        failures = 0
        for sql in final_log:
            try:
                replay.execute(sql)
            except (DBError, DBCrash):
                failures += 1
        assert failures == 0, "logged statements must replay cleanly"
