"""Delta-debugging reducer tests: 1-minimality, monotone and
non-monotone predicates, and replay budgets."""

import pytest

from repro.core.reducer import TestCaseReducer
from repro.core.reports import TestCase
from repro.errors import ReductionError


def case(*statements):
    return TestCase(statements=list(statements))


class TestReduction:
    def test_removes_irrelevant_statements(self):
        needed = {"CREATE", "INSERT-2", "FAIL"}

        def still_fails(candidate):
            return needed <= set(candidate.statements)

        original = case("CREATE", "INSERT-1", "INSERT-2", "INSERT-3",
                        "PRAGMA", "ANALYZE", "FAIL")
        reduced = TestCaseReducer(still_fails).reduce(original)
        assert set(reduced.statements) == needed

    def test_final_statement_always_kept(self):
        def still_fails(candidate):
            return candidate.statements[-1] == "FAIL"

        reduced = TestCaseReducer(still_fails).reduce(
            case("A", "B", "FAIL"))
        assert reduced.statements == ["FAIL"]

    def test_order_preserved(self):
        def still_fails(candidate):
            stmts = candidate.statements
            return "A" in stmts and "C" in stmts and \
                stmts.index("A") < stmts.index("C")

        reduced = TestCaseReducer(still_fails).reduce(
            case("A", "B", "C", "D", "FAIL"))
        assert reduced.statements == ["A", "C", "FAIL"]

    def test_one_minimality(self):
        # Every remaining statement is necessary: deleting any single
        # one must break the predicate.
        needed = {"S1", "S4", "S7"}

        def still_fails(candidate):
            return needed <= set(candidate.statements)

        original = case(*[f"S{i}" for i in range(10)], "FAIL")
        reduced = TestCaseReducer(still_fails).reduce(original)
        for index in range(len(reduced.statements) - 1):
            candidate = case(*(reduced.statements[:index]
                               + reduced.statements[index + 1:]))
            assert not still_fails(candidate)

    def test_non_monotone_predicate(self):
        # Failure requires an *odd* number of X statements — ddmin must
        # still terminate with a failing case.
        def still_fails(candidate):
            return sum(1 for s in candidate.statements
                       if s == "X") % 2 == 1

        original = case("X", "X", "X", "Y", "FAIL")
        reduced = TestCaseReducer(still_fails).reduce(original)
        assert still_fails(reduced)
        assert len(reduced.statements) <= len(original.statements)

    def test_rejects_non_failing_input(self):
        reducer = TestCaseReducer(lambda c: False)
        with pytest.raises(ReductionError):
            reducer.reduce(case("A", "FAIL"))

    def test_replay_budget_counts(self):
        reducer = TestCaseReducer(lambda c: True)
        reducer.reduce(case("A", "B", "C", "FAIL"))
        assert reducer.replays > 0

    def test_budget_exhaustion_stops_cleanly(self):
        calls = []

        def still_fails(candidate):
            calls.append(1)
            return True

        reducer = TestCaseReducer(still_fails, max_replays=3)
        reduced = reducer.reduce(case("A", "B", "C", "D", "FAIL"))
        # With only 3 replays allowed the result is valid but may not be
        # minimal; the reducer must not loop forever.
        assert reduced.statements[-1] == "FAIL"

    def test_metadata_preserved(self):
        original = TestCase(statements=["A", "FAIL"],
                            expected_row=[1, 2], dialect="mysql")
        reduced = TestCaseReducer(lambda c: True).reduce(original)
        assert reduced.expected_row == [1, 2]
        assert reduced.dialect == "mysql"

    def test_loc_metric(self):
        assert case("A", "B").loc == 2

    def test_render(self):
        assert case("A", "B").render() == "A;\nB;"
