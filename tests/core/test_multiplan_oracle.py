"""The multi-plan differential oracle: hints, candidates, arbitration,
and the off-is-free determinism invariant."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.querygen import SynthesizedQuery
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBError
from repro.interp import make_interpreter
from repro.minidb.bugs import BugRegistry
from repro.multiplan import (
    BASELINE,
    MultiPlanOracle,
    NULL_MULTIPLAN,
    NullMultiPlan,
    PlannerHints,
)
from repro.sqlast.nodes import ColumnNode
from repro.values import Value

SEMANTICS = make_interpreter("sqlite").semantics

STATE = ("CREATE TABLE t0 (c0 TEXT)",
         "CREATE INDEX i0 ON t0 (c0)",
         "INSERT INTO t0 VALUES ('a'), ('b'), ('c')")


def build(*bug_ids: str) -> MiniDBConnection:
    conn = MiniDBConnection("sqlite", bugs=BugRegistry(set(bug_ids)))
    for sql in STATE:
        conn.execute(sql)
    return conn


def query(sql: str = "SELECT c0 FROM t0",
          pivot: str = "c") -> SynthesizedQuery:
    return SynthesizedQuery(
        sql=sql, targets=[ColumnNode("t0", "c0")],
        expected=[Value.text(pivot)], table_names=["t0"])


class TestPlannerHints:
    def test_baseline_is_default(self):
        assert BASELINE.is_baseline
        assert BASELINE.describe() == "baseline"

    def test_contradictory_hints_rejected(self):
        with pytest.raises(DBError):
            PlannerHints(force_full_scan=True,
                         force_index="i0").validate()

    def test_unknown_index_rejected_by_with_plan(self):
        conn = build()
        with pytest.raises(DBError):
            conn.with_plan("SELECT c0 FROM t0",
                           PlannerHints(force_index="no_such_index"))

    def test_roundtrips_through_dict(self):
        hints = PlannerHints(force_index="i0", analyze=True)
        assert PlannerHints.from_dict(hints.as_dict()) == hints
        assert PlannerHints.from_dict(BASELINE.as_dict()) == BASELINE

    def test_with_plan_is_not_part_of_the_stream(self):
        conn = build()
        before = conn.statements_executed
        conn.with_plan("SELECT c0 FROM t0",
                       PlannerHints(force_index="i0"))
        conn.with_plan("SELECT c0 FROM t0",
                       PlannerHints(force_full_scan=True, analyze=True))
        assert conn.statements_executed == before
        # Forcing state (hints, synthesized ANALYZE flags) is restored.
        assert conn.engine.hints is None
        assert conn.engine.hint_analyzed is False


class TestNullMultiPlan:
    def test_is_free(self):
        assert NullMultiPlan.enabled is False
        assert NULL_MULTIPLAN.check(None, None, None) is None
        assert NULL_MULTIPLAN.take_round_outcome() == {}

    def test_runner_defaults_to_null(self):
        runner = PQSRunner(lambda: MiniDBConnection("sqlite"),
                           RunnerConfig(dialect="sqlite", seed=0))
        assert runner.multiplan is NULL_MULTIPLAN

    def test_runner_builds_oracle_when_configured(self):
        runner = PQSRunner(
            lambda: MiniDBConnection("sqlite"),
            RunnerConfig(dialect="sqlite", seed=0, multiplan=True))
        assert isinstance(runner.multiplan, MultiPlanOracle)


class TestOracle:
    def test_clean_engine_plans_agree(self):
        oracle = MultiPlanOracle()
        assert oracle.check(build(), query(), SEMANTICS) is None
        outcome = oracle.take_round_outcome()
        assert outcome["queries"] == 1
        assert outcome["divergences"] == 0
        # Baseline, full-scan (pre/post-ANALYZE) and the forced index
        # all executed; same-shape duplicates deduped by fingerprint.
        assert sum(int(plans) * count
                   for plans, count in outcome["plans"].items()) >= 2

    def test_divergence_detected_and_arbitrated(self):
        oracle = MultiPlanOracle()
        divergence = oracle.check(
            build("sqlite-forced-index-fencepost"), query(), SEMANTICS)
        assert divergence is not None
        deviant = [run for run in divergence.runs if run.deviant]
        agreed = [run for run in divergence.runs if not run.deviant]
        # The forced index scan lost the key-largest row 'c' (the
        # pivot); the interpreter verdict marks it — and only it —
        # deviant, keeping the baseline and full-scan runs.
        assert [run.hints.force_index for run in deviant] == ["i0"]
        assert [len(run.rows) for run in deviant] == [2]
        assert any(run.hints.is_baseline for run in agreed)
        assert all(len(run.rows) == 3 for run in agreed)
        assert "divergence" in divergence.message
        assert oracle.take_round_outcome()["divergences"] == 1

    def test_plan_results_are_json_safe(self):
        import json

        oracle = MultiPlanOracle()
        divergence = oracle.check(
            build("sqlite-forced-index-fencepost"), query(), SEMANTICS)
        results = divergence.plan_results()
        assert json.loads(json.dumps(results)) == results
        assert {entry["deviant"] for entry in results} == {True, False}
        assert all(entry["fingerprint"] for entry in results)

    def test_target_without_hook_is_skipped(self):
        class Bare:
            dialect = "sqlite"

        oracle = MultiPlanOracle()
        assert oracle.check(Bare(), query(), SEMANTICS) is None
        assert oracle.take_round_outcome() == {}

    def test_candidates_are_deterministic(self):
        oracle = MultiPlanOracle()
        conn = build()
        first = oracle._candidates(conn, query())
        second = oracle._candidates(conn, query())
        assert first == second
        assert first[0] is BASELINE
        assert PlannerHints(force_index="i0") in first


class TestDeterminismInvariant:
    def test_stream_identical_with_oracle_on_and_off(self):
        """Enabling multiplan must not perturb the tested statement
        stream: forced runs go through with_plan only, never execute."""

        def run(multiplan: bool) -> list[str]:
            log: list[str] = []

            class Recording(MiniDBConnection):
                def execute(self, sql):
                    log.append(sql)
                    return super().execute(sql)

            runner = PQSRunner(
                lambda: Recording("sqlite"),
                RunnerConfig(dialect="sqlite", seed=11,
                             multiplan=multiplan))
            for _ in range(3):
                runner.run_database_round()
            return log

        assert run(False) == run(True)
