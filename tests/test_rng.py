"""Tests for the seeded random source."""

from repro.rng import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(5)
        b = RandomSource(5)
        assert [a.int_between(0, 100) for _ in range(20)] == \
            [b.int_between(0, 100) for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = RandomSource(5)
        b = RandomSource(6)
        assert [a.int_between(0, 10**9) for _ in range(5)] != \
            [b.int_between(0, 10**9) for _ in range(5)]

    def test_fork_is_deterministic_but_independent(self):
        a = RandomSource(5).fork()
        b = RandomSource(5).fork()
        assert a.seed == b.seed
        assert a.seed != 5


class TestDraws:
    def test_flip_bounds(self):
        rng = RandomSource(1)
        assert all(rng.flip(1.0) for _ in range(10))
        assert not any(rng.flip(0.0) for _ in range(10))

    def test_int_between_inclusive(self):
        rng = RandomSource(2)
        values = {rng.int_between(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_empty_raises(self):
        import pytest

        with pytest.raises(IndexError):
            RandomSource(1).choice([])

    def test_sample_size(self):
        rng = RandomSource(3)
        assert len(rng.sample([1, 2, 3, 4], 2)) == 2

    def test_weighted_choice_respects_zero_weight(self):
        rng = RandomSource(4)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"a"}

    def test_small_int_hits_boundaries(self):
        rng = RandomSource(5)
        values = {rng.small_int() for _ in range(500)}
        assert 0 in values and (2**63 - 1) in values

    def test_short_text_length_bound(self):
        rng = RandomSource(6)
        assert all(len(rng.short_text(5)) <= 5 for _ in range(100))

    def test_short_blob_bytes(self):
        rng = RandomSource(7)
        blob = rng.short_blob(4)
        assert isinstance(blob, bytes) and len(blob) <= 4

    def test_identifier(self):
        assert RandomSource(1).identifier("t", 3) == "t3"

    def test_shuffled_preserves_elements(self):
        rng = RandomSource(8)
        out = rng.shuffled([1, 2, 3])
        assert sorted(out) == [1, 2, 3]
