"""Tests for AST node structure: children, traversal, immutability."""

import pytest

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
    count_nodes,
    depth,
    referenced_columns,
    walk,
)
from repro.values import NULL, Value

LIT = LiteralNode(Value.integer(1))
COL = ColumnNode("t0", "c0")


class TestChildren:
    def test_leaf_nodes_have_no_children(self):
        assert LIT.children() == ()
        assert COL.children() == ()

    def test_unary(self):
        node = UnaryNode(UnaryOp.NOT, LIT)
        assert node.children() == (LIT,)

    def test_binary(self):
        node = BinaryNode(BinaryOp.ADD, LIT, COL)
        assert node.children() == (LIT, COL)

    def test_between(self):
        node = BetweenNode(COL, LIT, LIT)
        assert len(node.children()) == 3

    def test_in_list(self):
        node = InListNode(COL, (LIT, LIT))
        assert len(node.children()) == 3

    def test_case_with_operand_and_else(self):
        node = CaseNode(COL, ((LIT, LIT),), LIT)
        assert len(node.children()) == 4

    def test_case_without_operand(self):
        node = CaseNode(None, ((LIT, LIT),), None)
        assert len(node.children()) == 2

    def test_function(self):
        node = FunctionNode("ABS", (LIT,))
        assert node.children() == (LIT,)

    def test_cast_and_collate(self):
        assert CastNode(LIT, "TEXT").children() == (LIT,)
        assert CollateNode(LIT, "NOCASE").children() == (LIT,)


class TestTraversal:
    def test_walk_preorder(self):
        tree = BinaryNode(BinaryOp.AND, UnaryNode(UnaryOp.NOT, LIT), COL)
        nodes = list(walk(tree))
        assert nodes[0] is tree
        assert COL in nodes and LIT in nodes
        assert len(nodes) == 4

    def test_depth(self):
        assert depth(LIT) == 1
        assert depth(UnaryNode(UnaryOp.NOT, LIT)) == 2
        nested = BinaryNode(BinaryOp.OR, UnaryNode(UnaryOp.NOT, LIT), LIT)
        assert depth(nested) == 3

    def test_count_nodes(self):
        tree = BinaryNode(BinaryOp.ADD, LIT, LIT)
        assert count_nodes(tree) == 3

    def test_referenced_columns(self):
        tree = BinaryNode(BinaryOp.EQ, COL, ColumnNode("t1", "c2"))
        cols = referenced_columns(tree)
        assert [c.qualified for c in cols] == ["t0.c0", "t1.c2"]


class TestIdentity:
    def test_nodes_hashable_and_equal_by_value(self):
        a = BinaryNode(BinaryOp.ADD, LIT, COL)
        b = BinaryNode(BinaryOp.ADD, LIT, COL)
        assert a == b and hash(a) == hash(b)

    def test_nodes_frozen(self):
        with pytest.raises(AttributeError):
            LIT.value = NULL  # type: ignore[misc]

    def test_column_qualified_name(self):
        assert COL.qualified == "t0.c0"

    def test_column_annotations_not_part_of_name(self):
        annotated = ColumnNode("t0", "c0", collation="NOCASE",
                               affinity="TEXT")
        assert annotated.qualified == "t0.c0"
        assert annotated != COL  # annotations do affect equality


class TestOperatorClassification:
    def test_comparisons(self):
        assert BinaryOp.EQ.is_comparison
        assert BinaryOp.IS_NOT.is_comparison
        assert BinaryOp.LIKE.is_comparison
        assert not BinaryOp.ADD.is_comparison

    def test_logical(self):
        assert BinaryOp.AND.is_logical and BinaryOp.OR.is_logical
        assert not BinaryOp.EQ.is_logical

    def test_postfix_op_values(self):
        assert PostfixOp.ISNULL.value == "ISNULL"
        assert PostfixOp.IS_NOT_TRUE.value == "IS NOT TRUE"
