"""Tests for bottom-up tree transformation."""

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
    walk,
)
from repro.sqlast.transform import transform
from repro.values import Value

ONE = LiteralNode(Value.integer(1))
TWO = LiteralNode(Value.integer(2))


def replace_one_with_two(node):
    if node == ONE:
        return TWO
    return None


class TestTransform:
    def test_identity_returns_same_object(self):
        tree = BinaryNode(BinaryOp.ADD, ONE, ONE)
        assert transform(tree, lambda n: None) is tree

    def test_leaf_replacement_everywhere(self):
        tree = BinaryNode(BinaryOp.ADD, ONE,
                          UnaryNode(UnaryOp.MINUS, ONE))
        out = transform(tree, replace_one_with_two)
        assert all(n != ONE for n in walk(out))

    def test_root_replacement(self):
        out = transform(ONE, replace_one_with_two)
        assert out == TWO

    def test_bottom_up_order(self):
        # fn sees rebuilt children: replacing 1->2 then 2+2 -> 0.
        def fold(node):
            if node == ONE:
                return TWO
            if isinstance(node, BinaryNode) and node.left == TWO \
                    and node.right == TWO:
                return LiteralNode(Value.integer(0))
            return None

        tree = BinaryNode(BinaryOp.ADD, ONE, TWO)
        assert transform(tree, fold) == LiteralNode(Value.integer(0))

    def test_all_node_kinds_traversed(self):
        tree = CaseNode(
            operand=InListNode(ONE, (CastNode(ONE, "TEXT"),)),
            whens=((CollateNode(ONE, "NOCASE"),
                    FunctionNode("ABS", (ONE,))),),
            else_=BetweenNode(ONE, ONE, PostfixNode(PostfixOp.ISNULL,
                                                    ONE)))
        out = transform(tree, replace_one_with_two)
        assert all(n != ONE for n in walk(out))

    def test_original_tree_untouched(self):
        tree = BinaryNode(BinaryOp.ADD, ONE, ONE)
        transform(tree, replace_one_with_two)
        assert tree.left == ONE

    def test_column_rebind(self):
        tree = BinaryNode(BinaryOp.EQ, ColumnNode("", "c0"), ONE)

        def bind(node):
            if isinstance(node, ColumnNode) and not node.table:
                return ColumnNode("t0", node.column, affinity="INTEGER")
            return None

        out = transform(tree, bind)
        assert out.left == ColumnNode("t0", "c0", affinity="INTEGER")
