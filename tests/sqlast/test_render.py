"""Tests for SQL rendering of literals and expression trees."""

import pytest

from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.sqlast.render import render_expr, render_literal
from repro.values import NULL, Value


def lit(x):
    return LiteralNode(Value.from_python(x))


class TestLiterals:
    def test_null(self):
        assert render_literal(NULL) == "NULL"

    def test_integer(self):
        assert render_literal(Value.integer(-7)) == "-7"

    def test_real_round_trips(self):
        text = render_literal(Value.real(-9.223372036854776e+18))
        assert float(text) == -9.223372036854776e+18

    def test_real_infinity(self):
        assert float(render_literal(Value.real(float("inf")))) == \
            float("inf")

    def test_text_escaping(self):
        assert render_literal(Value.text("a'b")) == "'a''b'"

    def test_mysql_backslash_escaping(self):
        assert render_literal(Value.text("a\\b"), "mysql") == "'a\\\\b'"

    def test_blob_sqlite(self):
        assert render_literal(Value.blob(b"ab")) == "X'6162'"

    def test_blob_postgres(self):
        assert render_literal(Value.blob(b"ab"), "postgres") == \
            "'\\x6162'::bytea"

    def test_boolean_postgres_keyword(self):
        assert render_literal(Value.boolean(True), "postgres") == "TRUE"

    def test_boolean_sqlite_numeric(self):
        assert render_literal(Value.boolean(True), "sqlite") == "1"


class TestExpressions:
    def test_unary_minus_never_forms_comment(self):
        # "--" starts a SQL comment; nested negation must keep a space.
        tree = UnaryNode(UnaryOp.MINUS, UnaryNode(UnaryOp.MINUS, lit(1)))
        assert "--" not in render_expr(tree)

    def test_not(self):
        assert render_expr(UnaryNode(UnaryOp.NOT, lit(1))) == "(NOT 1)"

    def test_binary_parenthesized(self):
        tree = BinaryNode(BinaryOp.ADD, lit(1), lit(2))
        assert render_expr(tree) == "(1 + 2)"

    def test_between(self):
        tree = BetweenNode(lit(1), lit(0), lit(2), negated=True)
        assert render_expr(tree) == "(1 NOT BETWEEN 0 AND 2)"

    def test_in_list(self):
        tree = InListNode(lit(1), (lit(2), lit(3)))
        assert render_expr(tree) == "(1 IN (2, 3))"

    def test_cast(self):
        assert render_expr(CastNode(lit(1), "TEXT")) == "CAST(1 AS TEXT)"

    def test_collate(self):
        tree = CollateNode(lit("a"), "NOCASE")
        assert render_expr(tree) == "('a' COLLATE NOCASE)"

    def test_case_searched(self):
        tree = CaseNode(None, ((lit(1), lit(2)),), lit(3))
        assert render_expr(tree) == "(CASE WHEN 1 THEN 2 ELSE 3 END)"

    def test_case_with_operand(self):
        tree = CaseNode(lit(9), ((lit(1), lit(2)),), None)
        assert render_expr(tree) == "(CASE 9 WHEN 1 THEN 2 END)"

    def test_function(self):
        tree = FunctionNode("ABS", (lit(-1),))
        assert render_expr(tree) == "ABS(-1)"

    def test_column(self):
        assert render_expr(ColumnNode("t0", "c0")) == "t0.c0"

    def test_postfix_isnull_sqlite_vs_postgres(self):
        tree = PostfixNode(PostfixOp.ISNULL, lit(1))
        assert render_expr(tree, "sqlite") == "(1 ISNULL)"
        assert render_expr(tree, "postgres") == "(1 IS NULL)"

    def test_postfix_is_not_true(self):
        tree = PostfixNode(PostfixOp.IS_NOT_TRUE, lit(1))
        assert render_expr(tree) == "(1 IS NOT TRUE)"

    def test_is_vs_is_not(self):
        assert render_expr(BinaryNode(BinaryOp.IS_NOT, lit(1), lit(2))) \
            == "(1 IS NOT 2)"

    def test_null_safe_eq(self):
        assert render_expr(
            BinaryNode(BinaryOp.NULL_SAFE_EQ, lit(1), lit(2))) == \
            "(1 <=> 2)"

    def test_unknown_node_rejected(self):
        from repro.sqlast.nodes import Expr

        with pytest.raises(ValueError):
            render_expr(Expr())
