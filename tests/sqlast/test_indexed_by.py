"""``INDEXED BY`` / ``NOT INDEXED`` clause splicing into rendered SQL.

The sqlite3 adapter forces plans by rewriting statement text; these
tests pin the rewriter across the FROM shapes the generator produces —
joins, subqueries in FROM, quoted and renamed tables — and prove the
rewritten text is still SQL a real SQLite accepts.
"""

import sqlite3

import pytest

from repro.sqlast.indexed_by import force_index, force_no_index


class TestForceNoIndex:
    def test_single_table(self):
        assert force_no_index("SELECT * FROM t0") == \
            "SELECT * FROM t0 NOT INDEXED"

    def test_where_clause_untouched(self):
        assert force_no_index("SELECT c0 FROM t0 WHERE c0 > 1") == \
            "SELECT c0 FROM t0 NOT INDEXED WHERE c0 > 1"

    def test_comma_join_hits_every_reference(self):
        assert force_no_index("SELECT * FROM t0, t1 WHERE t0.a = t1.b") \
            == ("SELECT * FROM t0 NOT INDEXED, t1 NOT INDEXED "
                "WHERE t0.a = t1.b")

    def test_explicit_join(self):
        sql = "SELECT * FROM t0 JOIN t1 ON t0.a = t1.b"
        assert force_no_index(sql) == \
            ("SELECT * FROM t0 NOT INDEXED JOIN t1 NOT INDEXED "
             "ON t0.a = t1.b")

    def test_left_join_keywords_not_mistaken_for_tables(self):
        sql = "SELECT * FROM t0 LEFT OUTER JOIN t1 ON t0.a = t1.b"
        out = force_no_index(sql)
        assert "t0 NOT INDEXED LEFT OUTER JOIN t1 NOT INDEXED" in out

    def test_alias_clause_goes_after_alias(self):
        assert force_no_index("SELECT * FROM t0 AS x WHERE x.a = 1") == \
            "SELECT * FROM t0 AS x NOT INDEXED WHERE x.a = 1"
        assert force_no_index("SELECT * FROM t0 x WHERE x.a = 1") == \
            "SELECT * FROM t0 x NOT INDEXED WHERE x.a = 1"

    def test_subquery_in_from(self):
        sql = "SELECT * FROM (SELECT * FROM t0) AS s, t1"
        out = force_no_index(sql)
        # Both the inner reference and the outer plain table are forced;
        # the derived-table alias itself takes no INDEXED clause.
        assert out == ("SELECT * FROM (SELECT * FROM t0 NOT INDEXED) "
                       "AS s, t1 NOT INDEXED")

    def test_string_literal_from_is_not_a_clause(self):
        sql = "SELECT ' FROM t0 ' FROM t0"
        assert force_no_index(sql) == \
            "SELECT ' FROM t0 ' FROM t0 NOT INDEXED"


class TestForceIndex:
    def test_only_the_named_table(self):
        sql = "SELECT * FROM t0, t1 WHERE t0.a = t1.b"
        assert force_index(sql, "t1", "i1") == \
            "SELECT * FROM t0, t1 INDEXED BY i1 WHERE t0.a = t1.b"

    def test_match_is_case_insensitive(self):
        assert force_index("SELECT * FROM T0", "t0", "i0") == \
            "SELECT * FROM T0 INDEXED BY i0"

    def test_quoted_table_reference(self):
        assert force_index('SELECT * FROM "t0"', "t0", "i0") == \
            'SELECT * FROM "t0" INDEXED BY i0'

    def test_renamed_table_keeps_clause_after_alias(self):
        sql = "SELECT x.a FROM t0 AS x JOIN t1 ON x.a = t1.b"
        assert force_index(sql, "t0", "i0") == \
            ("SELECT x.a FROM t0 AS x INDEXED BY i0 "
             "JOIN t1 ON x.a = t1.b")

    def test_subquery_reference_forced_at_depth(self):
        sql = "SELECT * FROM (SELECT a FROM t0 WHERE a > 1) s"
        assert force_index(sql, "t0", "i0") == \
            "SELECT * FROM (SELECT a FROM t0 INDEXED BY i0 WHERE a > 1) s"

    def test_unrelated_table_untouched(self):
        sql = "SELECT * FROM t0"
        assert force_index(sql, "t9", "i9") == sql


class TestAgainstRealSQLite:
    """The spliced text must be SQL sqlite itself accepts and honors."""

    @pytest.fixture
    def db(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript(
            "CREATE TABLE t0 (a INT, b TEXT);"
            "CREATE INDEX i0 ON t0(a);"
            "CREATE TABLE t1 (c INT);"
            "INSERT INTO t0 VALUES (1, 'x'), (2, 'y');"
            "INSERT INTO t1 VALUES (1), (3);")
        yield conn
        conn.close()

    def test_not_indexed_executes_and_plans_a_scan(self, db):
        forced = force_no_index("SELECT a FROM t0 WHERE a = 1")
        assert db.execute(forced).fetchall() == [(1,)]
        plan = db.execute("EXPLAIN QUERY PLAN " + forced).fetchall()
        assert all("i0" not in row[-1] for row in plan)

    def test_indexed_by_executes_and_plans_the_index(self, db):
        forced = force_index("SELECT a FROM t0 WHERE a = 1", "t0", "i0")
        assert db.execute(forced).fetchall() == [(1,)]
        plan = db.execute("EXPLAIN QUERY PLAN " + forced).fetchall()
        assert any("i0" in row[-1] for row in plan)

    def test_join_and_subquery_shapes_execute(self, db):
        shapes = [
            "SELECT * FROM t0 JOIN t1 ON t0.a = t1.c",
            "SELECT * FROM t0 AS x, t1 WHERE x.a = t1.c",
            "SELECT * FROM (SELECT a FROM t0) s, t1",
            'SELECT * FROM "t0" WHERE "t0".a > 0',
        ]
        for sql in shapes:
            baseline = sorted(db.execute(sql).fetchall())
            assert sorted(db.execute(
                force_no_index(sql)).fetchall()) == baseline
            assert sorted(db.execute(
                force_index(sql, "t0", "i0")).fetchall()) == baseline
