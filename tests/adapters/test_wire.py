"""Round-trip and fuzz coverage for the compact rowset wire encoding."""

import math
import pickle
import random

import pytest

from repro.adapters import wire
from repro.values import (
    FALSE,
    INT64_MAX,
    INT64_MIN,
    NULL,
    TRUE,
    SQLType,
    Value,
)


def roundtrip(rows):
    """Encode as a rowset frame, assert the compact tag was used, decode."""
    body = wire.dumps({"ok": rows}, use_rowset=True)
    assert body[0] == wire.TAG_ROWSET
    return wire.loads(body)["ok"]


class TestRowsetRoundTrip:
    def test_every_value_kind_in_one_row(self):
        rows = [(NULL, Value.integer(42), Value.real(1.5),
                 Value.text("abc"), Value.blob(b"\x00\xff"), TRUE, FALSE)]
        assert roundtrip(rows) == rows

    def test_empty_rowset(self):
        assert roundtrip([]) == []

    def test_rows_of_zero_columns(self):
        assert roundtrip([(), (), ()]) == [(), (), ()]

    def test_int64_bounds(self):
        rows = [(Value.integer(INT64_MIN),),
                (Value.integer(INT64_MAX),),
                (Value.integer(0),), (Value.integer(-1),)]
        assert roundtrip(rows) == rows

    def test_real_special_values(self):
        rows = [(Value.real(math.inf),), (Value.real(-math.inf),),
                (Value.real(-0.0),), (Value.real(1e308),)]
        assert roundtrip(rows) == rows
        nan_back = roundtrip([(Value.real(math.nan),)])
        assert math.isnan(nan_back[0][0].v)

    def test_text_interning_repeated_strings(self):
        rows = [(Value.text("repeat"), Value.text("répéter"))
                for _ in range(50)]
        body = wire.dumps({"ok": rows}, use_rowset=True)
        # Each unique string appears once in the frame.
        assert body.count("répéter".encode("utf-8")) == 1
        assert wire.loads(body)["ok"] == rows

    def test_blob_edges(self):
        rows = [(Value.blob(b""),), (Value.blob(bytes(range(256))),),
                (Value.blob(b"\x00" * 300),)]
        assert roundtrip(rows) == rows

    def test_null_bitmap_boundary_row_counts(self):
        # Cell counts straddling byte boundaries of the bitmap.
        for nrows in (1, 7, 8, 9, 16, 17):
            rows = [(NULL if r % 2 else Value.integer(r),)
                    for r in range(nrows)]
            assert roundtrip(rows) == rows

    def test_all_null_matrix(self):
        rows = [(NULL, NULL, NULL)] * 9
        assert roundtrip(rows) == rows

    def test_huge_rowset(self):
        rows = [tuple(Value.integer(r * 10 + c) for c in range(10))
                for r in range(1000)]
        assert roundtrip(rows) == rows

    def test_fuzz_random_matrices(self):
        rng = random.Random(1234)

        def random_value():
            kind = rng.randrange(7)
            if kind == 0:
                return NULL
            if kind == 1:
                return Value.integer(rng.randint(INT64_MIN, INT64_MAX))
            if kind == 2:
                return Value.real(rng.uniform(-1e9, 1e9))
            if kind == 3:
                return Value.text(
                    "".join(chr(rng.randrange(32, 0x2FF))
                            for _ in range(rng.randrange(8))))
            if kind == 4:
                return Value.blob(bytes(rng.randrange(256)
                                        for _ in range(rng.randrange(12))))
            return TRUE if kind == 5 else FALSE

        for _ in range(100):
            nrows = rng.randrange(6)
            ncols = rng.randrange(1, 5)
            rows = [tuple(random_value() for _ in range(ncols))
                    for _ in range(nrows)]
            assert roundtrip(rows) == rows

    def test_decoded_singletons_are_interned(self):
        rows = [(NULL, TRUE, FALSE, Value.integer(7))]
        back = roundtrip(rows)[0]
        assert back[0] is NULL and back[1] is TRUE and back[2] is FALSE
        # Small-int interning survives the decode path too.
        assert back[3] is Value.integer(7)


class TestPickleFallback:
    def assert_pickled(self, obj):
        body = wire.dumps(obj, use_rowset=True)
        assert body[0] == wire.TAG_PICKLE
        decoded = wire.loads(body)
        assert decoded == obj or repr(decoded) == repr(obj)

    def test_ragged_rows(self):
        self.assert_pickled({"ok": [(NULL,), (NULL, NULL)]})

    def test_non_tuple_rows(self):
        self.assert_pickled({"ok": [[NULL]]})

    def test_non_value_cells(self):
        self.assert_pickled({"ok": [("bare string",)]})

    def test_plan_step_like_payload(self):
        # Rows of arbitrary objects (EXPLAIN plans) must fall back.
        class Step:
            def __eq__(self, other):
                return isinstance(other, Step)
        body = wire.dumps({"ok": [Step.__name__]}, use_rowset=True)
        assert body[0] == wire.TAG_PICKLE

    def test_out_of_range_integer(self):
        self.assert_pickled({"ok": [(Value(SQLType.INTEGER, 2**64),)]})

    def test_unencodable_text(self):
        self.assert_pickled({"ok": [(Value.text("\ud800"),)]})

    def test_control_frames_always_pickle(self):
        for obj in ({"op": "execute", "sql": "SELECT 1"},
                    {"error": ("DBError", "boom")},
                    {"ok": "not-a-rowset"},
                    ["a", "list"]):
            body = wire.dumps(obj, use_rowset=True)
            assert body[0] == wire.TAG_PICKLE
            assert wire.loads(body) == obj

    def test_rowset_disabled_by_default(self):
        rows = [(Value.integer(1),)]
        body = wire.dumps({"ok": rows})
        assert body[0] == wire.TAG_PICKLE
        assert wire.loads(body) == {"ok": rows}


class TestFrameErrors:
    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown wire tag"):
            wire.loads(bytes([0x7A]) + b"junk")

    def test_empty_frame_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            wire.loads(b"")

    def test_future_rowset_version_rejected(self):
        body = bytearray(wire.dumps({"ok": [(NULL,)]}, use_rowset=True))
        assert body[0] == wire.TAG_ROWSET
        body[1] = wire.WIRE_VERSION + 1
        with pytest.raises(ValueError, match="unsupported rowset version"):
            wire.loads(bytes(body))

    def test_pickle_tag_still_decodes_rowset_shape(self):
        # Decoders accept both encodings regardless of negotiation.
        rows = [(Value.integer(1), Value.text("x"))]
        body = bytes([wire.TAG_PICKLE]) + pickle.dumps({"ok": rows})
        assert wire.loads(body) == {"ok": rows}
