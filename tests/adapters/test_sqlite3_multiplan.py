"""Plan forcing on the real SQLite build: ``with_plan`` rewrites the
statement text (INDEXED BY / NOT INDEXED), brackets synthesized
ANALYZE in a savepoint, and — regression — surfaces *every* sqlite
failure as a typed :class:`DBError`, including schemas sqlite itself
refuses to reparse (the multiplan oracle counts those as forced-plan
failures instead of crashing the round)."""

import sqlite3

import pytest

from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.core.querygen import SynthesizedQuery
from repro.errors import DBError
from repro.interp import make_interpreter
from repro.multiplan import BASELINE, MultiPlanOracle, PlannerHints
from repro.sqlast.nodes import ColumnNode
from repro.values import Value

STATE = ("CREATE TABLE t0 (c0 TEXT)",
         "CREATE INDEX i0 ON t0 (c0)",
         "INSERT INTO t0 VALUES ('a'), ('b'), ('c')")


@pytest.fixture
def conn():
    connection = SQLite3Connection()
    for sql in STATE:
        connection.execute(sql)
    yield connection
    connection.close()


class TestForcing:
    def test_forced_index_is_honored(self, conn):
        rows, steps = conn.with_plan("SELECT c0 FROM t0 WHERE c0 > 'a'",
                                     PlannerHints(force_index="i0"))
        assert sorted(v.v for (v,) in rows) == ["b", "c"]
        assert any(step.index == "i0" for step in steps)

    def test_forced_full_scan_avoids_the_index(self, conn):
        rows, steps = conn.with_plan("SELECT c0 FROM t0 WHERE c0 = 'b'",
                                     PlannerHints(force_full_scan=True))
        assert [v.v for (v,) in rows] == ["b"]
        assert all(step.index != "i0" for step in steps)

    def test_analyze_is_bracketed_in_a_savepoint(self, conn):
        conn.with_plan("SELECT c0 FROM t0",
                       PlannerHints(force_full_scan=True, analyze=True))
        # The synthesized ANALYZE was rolled back: no stats leak into
        # the tested stream's planner input.
        rows = conn.execute("SELECT name FROM sqlite_master "
                            "WHERE name = 'sqlite_stat1'")
        assert rows == []

    def test_unknown_index_is_a_typed_error(self, conn):
        with pytest.raises(DBError):
            conn.with_plan("SELECT c0 FROM t0",
                           PlannerHints(force_index="nope"))

    def test_index_candidates(self, conn):
        assert conn.index_candidates(["t0"]) == ["i0"]
        assert conn.index_candidates(["t9"]) == []


class TestMalformedSchema:
    """A generated schema sqlite later refuses to reparse (seen in the
    wild via expression indexes) must not leak raw sqlite3 errors."""

    @pytest.fixture
    def malformed(self, tmp_path):
        path = str(tmp_path / "malformed.db")
        raw = sqlite3.connect(path)
        raw.executescript(
            "CREATE TABLE t0 (c0 TEXT);"
            "CREATE INDEX i0 ON t0 (c0);"
            "INSERT INTO t0 VALUES ('a');")
        raw.execute("PRAGMA writable_schema=ON")
        raw.execute("UPDATE sqlite_master SET sql = "
                    "'CREATE INDEX i0 ON t0(random())' "
                    "WHERE name = 'i0'")
        raw.commit()
        raw.close()
        # A fresh connection reparses the schema on first use and
        # rejects it ("non-deterministic functions prohibited ...").
        connection = SQLite3Connection(path)
        yield connection
        connection.close()

    def test_with_plan_raises_typed_error(self, malformed):
        for hints in (PlannerHints(force_index="i0"),
                      PlannerHints(force_full_scan=True, analyze=True)):
            with pytest.raises(DBError):
                malformed.with_plan("SELECT c0 FROM t0", hints)

    def test_index_candidates_raises_typed_error(self, malformed):
        with pytest.raises(DBError):
            malformed.index_candidates(["t0"])

    def test_oracle_counts_forced_failures_and_survives(self, malformed):
        oracle = MultiPlanOracle()
        query = SynthesizedQuery(
            sql="SELECT c0 FROM t0", targets=[ColumnNode("t0", "c0")],
            expected=[Value.text("a")], table_names=["t0"])
        semantics = make_interpreter("sqlite").semantics
        assert oracle.check(malformed, query, semantics) is None
        outcome = oracle.take_round_outcome()
        assert outcome["forced_failures"] > 0
        assert outcome["divergences"] == 0


class TestOracleOnRealSQLite:
    def test_clean_plans_agree(self, conn):
        oracle = MultiPlanOracle()
        query = SynthesizedQuery(
            sql="SELECT c0 FROM t0 WHERE c0 >= 'a'",
            targets=[ColumnNode("t0", "c0")],
            expected=[Value.text("c")], table_names=["t0"])
        semantics = make_interpreter("sqlite").semantics
        assert oracle.check(conn, query, semantics) is None
        outcome = oracle.take_round_outcome()
        assert outcome["queries"] == 1
        assert outcome["divergences"] == 0
        # Baseline and at least one forced shape executed distinctly.
        assert sum(int(plans) * count
                   for plans, count in outcome["plans"].items()) >= 2

    def test_baseline_hints_are_a_plain_execution(self, conn):
        rows, _steps = conn.with_plan("SELECT c0 FROM t0", BASELINE)
        assert sorted(v.v for (v,) in rows) == ["a", "b", "c"]
