"""The optional ``with_plan`` / ``index_candidates`` hooks across the
subprocess harness and the fault proxy.

Forced-plan executions are introspection, exactly like ``query_plan``:
they must cross the pipe, but never enter the crash-replay log and
never advance a fault schedule — otherwise enabling the multiplan
oracle would change what a restarted worker replays and which
statement a fault plan fires on.
"""

import pytest

from repro.adapters.faults import FaultPlan, FaultyConnection, FaultyFactory
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.subprocess_adapter import SubprocessConnection
from repro.errors import DBCrash, DBError, UnsupportedError
from repro.multiplan import BASELINE, PlannerHints

STATE = ("CREATE TABLE t0 (c0 TEXT)",
         "CREATE INDEX i0 ON t0 (c0)",
         "INSERT INTO t0 VALUES ('a'), ('b'), ('c')")


class TestSubprocessForwarding:
    def test_with_plan_crosses_the_pipe(self):
        conn = SubprocessConnection(MiniDBConnection)
        try:
            for sql in STATE:
                conn.execute(sql)
            rows, steps = conn.with_plan(
                "SELECT c0 FROM t0", PlannerHints(force_index="i0"))
            assert [v.v for (v,) in rows] == ["a", "b", "c"]
            assert steps[0].index == "i0"
        finally:
            conn.close()

    def test_index_candidates_cross_the_pipe(self):
        conn = SubprocessConnection(MiniDBConnection)
        try:
            for sql in STATE:
                conn.execute(sql)
            assert conn.index_candidates(["t0"]) == ["i0"]
        finally:
            conn.close()

    def test_forced_plan_errors_cross_typed(self):
        conn = SubprocessConnection(MiniDBConnection)
        try:
            for sql in STATE:
                conn.execute(sql)
            with pytest.raises(DBError):
                conn.with_plan("SELECT c0 FROM t0",
                               PlannerHints(force_index="nope"))
        finally:
            conn.close()

    def test_replay_length_regression(self):
        """Introspection never grows the replay log: a worker restarted
        after heavy forced-plan traffic replays only the executes."""
        conn = SubprocessConnection(MiniDBConnection)
        try:
            for sql in STATE:
                conn.execute(sql)
            before = conn.statements_replayed
            for _ in range(5):
                conn.with_plan("SELECT c0 FROM t0", BASELINE)
                conn.with_plan("SELECT c0 FROM t0",
                               PlannerHints(force_full_scan=True))
                conn.index_candidates(["t0"])
            assert conn.statements_replayed == before == len(STATE)
        finally:
            conn.close()

    def test_hooks_work_after_crash_restore(self):
        factory = FaultyFactory(MiniDBConnection,
                                FaultPlan(crash_at=(3,)))
        conn = SubprocessConnection(factory)
        try:
            for sql in STATE:
                conn.execute(sql)
            with pytest.raises(DBCrash):
                conn.execute("SELECT * FROM t0")
            # The restarted worker replays the three state statements
            # (not the forced runs); the hooks answer again.
            rows, _steps = conn.with_plan(
                "SELECT c0 FROM t0", PlannerHints(force_index="i0"))
            assert len(rows) == 3
            assert conn.index_candidates(["t0"]) == ["i0"]
            assert conn.statements_replayed == len(STATE)
        finally:
            conn.close()


class TestFaultProxyForwarding:
    def test_forwards_without_schedule_advance(self):
        plan = FaultPlan(error_at=(1,))
        conn = FaultyConnection(MiniDBConnection("sqlite"), plan)
        conn.execute(STATE[0])  # global statement #0
        for _ in range(3):
            conn.with_plan("SELECT c0 FROM t0", BASELINE)
            conn.index_candidates(["t0"])
        # The next execute is global statement #1 and must still fault.
        with pytest.raises(DBError):
            conn.execute(STATE[1])

    def test_unsupported_when_inner_lacks_hooks(self):
        class Bare:
            dialect = "sqlite"

            def execute(self, sql):
                return []

            def close(self):
                pass

        conn = FaultyConnection(Bare(), FaultPlan())
        with pytest.raises(UnsupportedError):
            conn.with_plan("SELECT 1", BASELINE)
        with pytest.raises(UnsupportedError):
            conn.index_candidates(["t0"])
