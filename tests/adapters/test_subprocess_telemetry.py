"""Fault-isolation harness instrumentation: restarts, kills, replay."""

import pytest

from repro.adapters.faults import FaultPlan, FaultyFactory
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.adapters.subprocess_adapter import (
    SubprocessConfig,
    SubprocessConnection,
)
from repro.errors import DBCrash, DBTimeout
from repro.telemetry import Telemetry, names

FAST = SubprocessConfig(statement_timeout=5.0, backoff_base=0.01)


def isolated(telemetry, plan=None, config=FAST):
    factory = (SQLite3Connection if plan is None
               else FaultyFactory(SQLite3Connection, plan))
    return SubprocessConnection(factory, config, telemetry=telemetry)


class TestHarnessMetrics:
    def test_clean_run_counts_roundtrips_only(self):
        telemetry = Telemetry()
        conn = isolated(telemetry)
        try:
            conn.execute("CREATE TABLE t(a)")
            conn.execute("INSERT INTO t VALUES (1)")
            conn.execute("SELECT * FROM t")
        finally:
            conn.close()
        registry = telemetry.registry
        assert registry.histogram(names.ROUNDTRIP_SECONDS).count == 3
        assert registry.value(names.WORKER_RESTARTS) == 0
        assert registry.value(names.WATCHDOG_KILLS) == 0

    def test_crash_recovery_counts_restart_and_replay(self):
        telemetry = Telemetry()
        conn = isolated(telemetry, FaultPlan(crash_at=(2,)))
        try:
            conn.execute("CREATE TABLE t(a)")
            conn.execute("INSERT INTO t VALUES (1)")
            with pytest.raises(DBCrash):
                conn.execute("INSERT INTO t VALUES (2)")
            # Restore replays the two successful statements.
            assert conn.execute("SELECT COUNT(*) FROM t")[0][0].v == 1
        finally:
            conn.close()
        registry = telemetry.registry
        assert registry.value(names.WORKER_RESTARTS) == 1
        replay = registry.histogram(names.REPLAY_STATEMENTS,
                                    buckets=names.COUNT_BUCKETS)
        assert replay.count == 1
        assert replay.sum == 2  # two statements replayed

    def test_watchdog_kill_counted(self):
        telemetry = Telemetry()
        config = SubprocessConfig(statement_timeout=0.3,
                                  backoff_base=0.01)
        conn = isolated(telemetry, FaultPlan(hang_at=(1,)),
                        config=config)
        try:
            conn.execute("CREATE TABLE t(a)")
            with pytest.raises(DBTimeout):
                conn.execute("INSERT INTO t VALUES (1)")
        finally:
            conn.close()
        assert telemetry.registry.value(names.WATCHDOG_KILLS) == 1

    def test_disabled_mode_records_nothing(self):
        conn = isolated(None, FaultPlan(crash_at=(0,)))
        try:
            with pytest.raises(DBCrash):
                conn.execute("CREATE TABLE t(a)")
            conn.execute("CREATE TABLE t(a)")
        finally:
            conn.close()
        assert conn.telemetry.registry.snapshot() == {}
