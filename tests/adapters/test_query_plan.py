"""The optional ``query_plan`` adapter hook, across every adapter."""

from __future__ import annotations

import pytest

from repro.adapters.faults import FaultPlan, FaultyConnection
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.errors import DBError, UnsupportedError
from repro.guidance import PlanStep, fingerprint

STATE = ("CREATE TABLE t0 (c0 INT, c1 TEXT)",
         "CREATE INDEX i0 ON t0(c0)",
         "INSERT INTO t0 VALUES (1, 'a'), (2, 'b')")


def build(conn):
    for sql in STATE:
        conn.execute(sql)
    return conn


def test_minidb_query_plan():
    conn = build(MiniDBConnection())
    steps = conn.query_plan("SELECT * FROM t0 WHERE c0 = 1")
    assert steps and isinstance(steps[0], PlanStep)
    assert steps[0].kind == "index-scan"
    assert steps[0].index == "i0"


def test_minidb_query_plan_does_not_count_statements():
    conn = build(MiniDBConnection())
    before = conn.statements_executed
    conn.query_plan("SELECT * FROM t0")
    assert conn.statements_executed == before


def test_sqlite3_query_plan():
    conn = build(SQLite3Connection())
    steps = conn.query_plan("SELECT * FROM t0 WHERE c0 = 1")
    assert steps and steps[0].kind == "index-scan"
    assert steps[0].index == "i0"
    full = conn.query_plan("SELECT * FROM t0")
    assert full[0].kind == "full-scan"


def test_sqlite3_query_plan_bad_sql_raises_dberror():
    conn = build(SQLite3Connection())
    with pytest.raises(DBError):
        conn.query_plan("SELECT * FROM nonexistent")


def test_minidb_and_sqlite3_agree_on_shape():
    """Different engines, same schema shape => same fingerprint family
    (index-scan over T0/I0), though constraint details may differ."""
    mini = build(MiniDBConnection()).query_plan(
        "SELECT * FROM t0 WHERE c0 = 1")
    lite = build(SQLite3Connection()).query_plan(
        "SELECT * FROM t0 WHERE c0 = 1")
    assert mini[0].kind == lite[0].kind == "index-scan"
    assert fingerprint(mini) and fingerprint(lite)


def test_faulty_connection_forwards_without_schedule_advance():
    plan = FaultPlan(error_at=(1,))
    conn = FaultyConnection(MiniDBConnection(), plan)
    conn.execute(STATE[0])  # index 0
    for _ in range(3):
        conn.query_plan("SELECT * FROM t0")
    # The next execute is global statement #1 and must still fault.
    with pytest.raises(DBError):
        conn.execute(STATE[1])


def test_faulty_connection_without_inner_hook():
    class Bare:
        dialect = "sqlite"

        def execute(self, sql):
            return []

        def close(self):
            pass

    conn = FaultyConnection(Bare(), FaultPlan())
    with pytest.raises(UnsupportedError):
        conn.query_plan("SELECT 1")


def test_subprocess_forwards_query_plan():
    pytest.importorskip("repro.adapters.subprocess_adapter")
    from repro.adapters.subprocess_adapter import SubprocessConnection

    conn = SubprocessConnection(MiniDBConnection)
    try:
        for sql in STATE:
            conn.execute(sql)
        steps = conn.query_plan("SELECT * FROM t0 WHERE c0 = 1")
        assert steps[0].kind == "index-scan"
        assert steps[0].index == "i0"
    finally:
        conn.close()


def test_subprocess_query_plan_not_replayed_after_crash():
    """Plan lookups must not enter the replay log: after a crash the
    worker restores state from executed statements only."""
    from repro.adapters.faults import FaultyFactory
    from repro.adapters.subprocess_adapter import SubprocessConnection
    from repro.errors import DBCrash

    factory = FaultyFactory(MiniDBConnection, FaultPlan(crash_at=(3,)))
    conn = SubprocessConnection(factory)
    try:
        for sql in STATE:
            conn.execute(sql)
        conn.query_plan("SELECT * FROM t0")
        with pytest.raises(DBCrash):
            conn.execute("SELECT * FROM t0")
        # Restarted worker replays the three state statements; the
        # query still answers and the plan hook still works.
        rows = conn.execute("SELECT c0 FROM t0")
        assert len(rows) == 2
        steps = conn.query_plan("SELECT * FROM t0 WHERE c0 = 1")
        assert steps[0].index == "i0"
    finally:
        conn.close()
