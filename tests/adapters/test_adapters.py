"""Adapter tests, including PQS against a real SQLite build."""

import pytest

from repro.adapters.base import DBMSConnection
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.core.error_oracle import SQLITE3_DOCUMENTED_QUIRKS
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBError, IntegrityError
from repro.values import SQLType


class TestProtocol:
    def test_both_adapters_satisfy_protocol(self):
        assert isinstance(MiniDBConnection("sqlite"), DBMSConnection)
        assert isinstance(SQLite3Connection(), DBMSConnection)


class TestSQLite3Adapter:
    def test_value_lifting(self):
        conn = SQLite3Connection()
        row = conn.execute("SELECT 1, 1.5, 'a', X'61', NULL")[0]
        assert [v.t for v in row] == [
            SQLType.INTEGER, SQLType.REAL, SQLType.TEXT, SQLType.BLOB,
            SQLType.NULL]

    def test_errors_normalized(self):
        conn = SQLite3Connection()
        with pytest.raises(DBError):
            conn.execute("SELECT * FROM missing")

    def test_statements_persist(self):
        conn = SQLite3Connection()
        conn.execute("CREATE TABLE t(a)")
        conn.execute("INSERT INTO t VALUES (1)")
        assert conn.execute("SELECT a FROM t")[0][0].v == 1

    def test_close(self):
        conn = SQLite3Connection()
        conn.close()
        with pytest.raises(Exception):
            conn.execute("SELECT 1")

    def test_real_corruption_maps_to_integrity_error(self, tmp_path):
        """Scrambling b-tree pages of an on-disk database makes real
        SQLite report 'database disk image is malformed' — the paper's
        motivating bug class, which the error oracle must see as an
        IntegrityError (always a finding), not generic DBError noise."""
        import sqlite3 as sqlite3_mod

        path = str(tmp_path / "corrupt.db")
        seed_conn = sqlite3_mod.connect(path)
        seed_conn.execute("PRAGMA page_size=512")
        seed_conn.execute("CREATE TABLE t(a)")
        seed_conn.executemany("INSERT INTO t VALUES (?)",
                              [(i,) for i in range(2000)])
        seed_conn.commit()
        seed_conn.close()
        data = bytearray(open(path, "rb").read())
        for page_start in range(512, len(data), 512):
            for i in range(page_start + 8, page_start + 20):
                data[i] = 0xFF  # scramble each page's cell pointers
        open(path, "wb").write(bytes(data))

        conn = SQLite3Connection(path)
        with pytest.raises(IntegrityError) as exc:
            conn.execute("SELECT * FROM t")
        assert "malformed" in exc.value.message
        conn.close()


class TestPQSAgainstRealSQLite:
    """The headline demonstration: the same PQS loop that finds MiniDB's
    injected defects runs against production SQLite and finds nothing —
    the containment oracle holds on a correct engine."""

    def test_no_findings_on_real_sqlite(self):
        runner = PQSRunner(SQLite3Connection,
                           RunnerConfig(dialect="sqlite", seed=1234,
                                        documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
        stats = runner.run(15)
        details = [(r.oracle.value, r.message,
                    r.test_case.statements[-1][:160])
                   for r in stats.reports]
        assert stats.reports == [], details
        assert stats.queries > 100

    def test_second_seed(self):
        runner = PQSRunner(SQLite3Connection,
                           RunnerConfig(dialect="sqlite", seed=888,
                                        documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
        stats = runner.run(10)
        assert stats.reports == []
