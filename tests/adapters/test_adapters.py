"""Adapter tests, including PQS against a real SQLite build."""

import pytest

from repro.adapters.base import DBMSConnection
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.core.error_oracle import SQLITE3_DOCUMENTED_QUIRKS
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBError
from repro.values import SQLType


class TestProtocol:
    def test_both_adapters_satisfy_protocol(self):
        assert isinstance(MiniDBConnection("sqlite"), DBMSConnection)
        assert isinstance(SQLite3Connection(), DBMSConnection)


class TestSQLite3Adapter:
    def test_value_lifting(self):
        conn = SQLite3Connection()
        row = conn.execute("SELECT 1, 1.5, 'a', X'61', NULL")[0]
        assert [v.t for v in row] == [
            SQLType.INTEGER, SQLType.REAL, SQLType.TEXT, SQLType.BLOB,
            SQLType.NULL]

    def test_errors_normalized(self):
        conn = SQLite3Connection()
        with pytest.raises(DBError):
            conn.execute("SELECT * FROM missing")

    def test_statements_persist(self):
        conn = SQLite3Connection()
        conn.execute("CREATE TABLE t(a)")
        conn.execute("INSERT INTO t VALUES (1)")
        assert conn.execute("SELECT a FROM t")[0][0].v == 1

    def test_close(self):
        conn = SQLite3Connection()
        conn.close()
        with pytest.raises(Exception):
            conn.execute("SELECT 1")


class TestPQSAgainstRealSQLite:
    """The headline demonstration: the same PQS loop that finds MiniDB's
    injected defects runs against production SQLite and finds nothing —
    the containment oracle holds on a correct engine."""

    def test_no_findings_on_real_sqlite(self):
        runner = PQSRunner(SQLite3Connection,
                           RunnerConfig(dialect="sqlite", seed=1234,
                                        documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
        stats = runner.run(15)
        details = [(r.oracle.value, r.message,
                    r.test_case.statements[-1][:160])
                   for r in stats.reports]
        assert stats.reports == [], details
        assert stats.queries > 100

    def test_second_seed(self):
        runner = PQSRunner(SQLite3Connection,
                           RunnerConfig(dialect="sqlite", seed=888,
                                        documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
        stats = runner.run(10)
        assert stats.reports == []
