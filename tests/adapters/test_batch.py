"""Batched pipe protocol: execute_many semantics, mid-batch faults,
replay re-attribution, batch telemetry, and the batch-size /
wire-encoding byte-identity acceptance checks."""

import functools
import os
import signal
import threading
import time

from repro.adapters import execute_batch
from repro.adapters.faults import FaultPlan, FaultyFactory
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.adapters.subprocess_adapter import (
    SubprocessConfig,
    SubprocessConnection,
)
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBCrash, DBError, DBTimeout
from repro.minidb.bugs import BugRegistry
from repro.telemetry import Telemetry, names

FAST = SubprocessConfig(statement_timeout=5.0, backoff_base=0.01)


def isolated(plan=None, config=FAST, telemetry=None):
    factory = (SQLite3Connection if plan is None
               else FaultyFactory(SQLite3Connection, plan))
    return SubprocessConnection(factory, config, telemetry=telemetry)


PLAN = ["CREATE TABLE t(a)",
        "INSERT INTO t VALUES (1)",
        "INSERT INTO t VALUES (2)",
        "INSERT INTO t VALUES (3)",
        "SELECT COUNT(*) FROM t"]


def table_count(conn):
    return conn.execute("SELECT COUNT(*) FROM t")[0][0].v


class TestExecuteMany:
    def test_all_ok_batch(self):
        conn = isolated()
        try:
            outcomes = conn.execute_many(PLAN)
            assert [kind for kind, _ in outcomes] == ["ok"] * 5
            assert outcomes[-1][1][0][0].v == 3
        finally:
            conn.close()

    def test_empty_batch(self):
        conn = isolated()
        try:
            assert conn.execute_many([]) == []
        finally:
            conn.close()

    def test_stops_at_first_error(self):
        conn = isolated()
        try:
            outcomes = conn.execute_many(
                ["CREATE TABLE t(a)",
                 "INSERT INTO t VALUES (1)",
                 "INSERT INTO nope VALUES (2)",   # fails
                 "INSERT INTO t VALUES (3)"])     # must never execute
            assert [kind for kind, _ in outcomes] == ["ok", "ok", "error"]
            assert isinstance(outcomes[2][1], DBError)
            assert table_count(conn) == 1
        finally:
            conn.close()

    def test_batch_equals_sequential_state(self):
        batched = isolated()
        sequential = isolated()
        try:
            assert all(k == "ok" for k, _ in batched.execute_many(PLAN))
            for sql in PLAN:
                sequential.execute(sql)
            assert table_count(batched) == table_count(sequential)
        finally:
            batched.close()
            sequential.close()

    def test_successive_batches_share_state(self):
        conn = isolated()
        try:
            conn.execute_many(PLAN[:2])
            conn.execute_many(PLAN[2:4])
            assert table_count(conn) == 3
        finally:
            conn.close()


class TestMidBatchFaults:
    def test_simulated_crash_attributed_to_its_statement(self):
        conn = isolated(FaultPlan(crash_at=(2,)))
        try:
            outcomes = conn.execute_many(PLAN)
            assert [kind for kind, _ in outcomes] == ["ok", "ok", "crash"]
            assert isinstance(outcomes[2][1], DBCrash)
            # Restart replays only the two pre-crash successes; the
            # crashed INSERT and everything after it never ran.
            assert table_count(conn) == 1
        finally:
            conn.close()

    def test_resubmitted_remainder_completes_the_plan(self):
        conn = isolated(FaultPlan(crash_at=(2,)))
        try:
            outcomes = conn.execute_many(PLAN)
            executed_ok = sum(1 for k, _ in outcomes if k == "ok")
            remainder = PLAN[len(outcomes):]
            # Retry the crashed statement, then the untouched remainder —
            # exactly what sequential execution would have reached.
            retry = [PLAN[len(outcomes) - 1]] + remainder
            outcomes2 = conn.execute_many(retry)
            assert [k for k, _ in outcomes2] == ["ok"] * len(retry)
            assert executed_ok + len(retry) == len(PLAN)
            assert table_count(conn) == 3
        finally:
            conn.close()

    def test_worker_sigkill_attributed_to_in_flight_statement(self):
        # The worker hangs on global statement 2 (the second statement
        # of the batch); a real SIGKILL lands mid-batch while it is in
        # flight, well before the 5s watchdog, so the parent sees EOF
        # and must attribute the death to the first missing outcome.
        plan = FaultPlan(hang_at=(2,), hang_seconds=30.0)
        conn = SubprocessConnection(
            FaultyFactory(SQLite3Connection, plan), FAST)
        try:
            conn.execute("CREATE TABLE t(a)")
            pid = conn.worker_pid

            def killer():
                time.sleep(0.15)
                os.kill(pid, signal.SIGKILL)

            thread = threading.Thread(target=killer)
            thread.start()
            outcomes = conn.execute_many(PLAN[1:])
            thread.join()
            assert [k for k, _ in outcomes] == ["ok", "crash"]
            assert isinstance(outcomes[1][1], DBCrash)
            # Restart replays CREATE TABLE + the one pre-death INSERT.
            assert table_count(conn) == 1
        finally:
            conn.close()

    def test_watchdog_timeout_mid_batch(self):
        plan = FaultPlan(hang_at=(2,), hang_seconds=30.0)
        conn = SubprocessConnection(
            FaultyFactory(SQLite3Connection, plan),
            SubprocessConfig(statement_timeout=0.4, backoff_base=0.01))
        try:
            outcomes = conn.execute_many(PLAN)
            assert [k for k, _ in outcomes] == ["ok", "ok", "timeout"]
            assert isinstance(outcomes[2][1], DBTimeout)
            assert table_count(conn) == 1
        finally:
            conn.close()

    def test_fault_offset_advances_per_batched_statement(self):
        # error_at=3 must fire at global statement index 3 even though
        # indexes 0-2 were attempted inside one batch frame.
        conn = isolated(FaultPlan(error_at=(3,)))
        try:
            outcomes = conn.execute_many(PLAN)
            assert [k for k, _ in outcomes] == ["ok", "ok", "ok", "error"]
            # The injected fault fired once; a retry succeeds.
            retry = conn.execute_many(PLAN[3:])
            assert [k for k, _ in retry] == ["ok", "ok"]
            assert table_count(conn) == 3
        finally:
            conn.close()


class TestExecuteBatchFallback:
    def test_sequential_fallback_shares_the_prefix_contract(self):
        conn = MiniDBConnection("sqlite")
        outcomes = execute_batch(conn, ["CREATE TABLE t(a INTEGER)",
                                        "INSERT INTO t VALUES (1)",
                                        "SELECT * FROM nope",
                                        "INSERT INTO t VALUES (2)"])
        assert [k for k, _ in outcomes] == ["ok", "ok", "error"]
        assert conn.execute("SELECT COUNT(*) FROM t")[0][0].v == 1

    def test_native_hook_preferred(self):
        calls = []

        class Native:
            def execute_many(self, sqls):
                calls.append(list(sqls))
                return [("ok", []) for _ in sqls]

        outcomes = execute_batch(Native(), ["a", "b"])
        assert calls == [["a", "b"]]
        assert outcomes == [("ok", []), ("ok", [])]


class TestBatchTelemetry:
    def test_pipe_metrics_populated(self):
        telemetry = Telemetry()
        conn = isolated(telemetry=telemetry)
        try:
            conn.execute_many(PLAN)
        finally:
            conn.close()
        registry = telemetry.registry
        batch = registry.histogram(names.PIPE_BATCH_STATEMENTS,
                                   buckets=names.COUNT_BUCKETS)
        assert batch.count == 1
        assert batch.sum == len(PLAN)
        assert registry.value(names.PIPE_BYTES_SENT) > 0
        assert registry.value(names.PIPE_BYTES_RECEIVED) > 0
        assert registry.histogram(names.PIPE_ENCODE_SECONDS).count > 0
        assert registry.histogram(names.PIPE_DECODE_SECONDS).count > 0


class _Recording:
    """Proxy that logs every statement reaching the target, in order."""

    def __init__(self, inner, log):
        self._inner = inner
        self._log = log
        self.dialect = inner.dialect

    def execute(self, sql):
        self._log.append(sql)
        return self._inner.execute(sql)

    def execute_many(self, sqls):
        # Delegate to the inner connection's native batch hook (or the
        # sequential fallback) and log the executed prefix.
        outcomes = execute_batch(self._inner, sqls)
        self._log.extend(sql for sql, _ in zip(sqls, outcomes))
        return outcomes

    def close(self):
        self._inner.close()


def hunt_trace(make_connection, databases=4, seed=3, batch_size=16,
               bugs=("sqlite-rename-expr-index",)):
    """Run a hunt and capture (statement stream, findings, counters)."""
    stream = []
    config = RunnerConfig(dialect="sqlite", seed=seed,
                          batch_size=batch_size)
    runner = PQSRunner(
        lambda: _Recording(make_connection(bugs), stream), config)
    stats = runner.run(databases)
    findings = [(r.test_case.statements, repr(r.test_case.expected_row))
                for r in stats.reports]
    return stream, findings, (stats.statements, stats.queries,
                              stats.pivots, stats.expected_errors)


class TestBatchSizeIdentity:
    """Tentpole acceptance: hunts are bit-identical at every batch size
    and across wire encodings."""

    def test_identical_across_batch_sizes(self):
        def in_process(bugs):
            return MiniDBConnection("sqlite", bugs=BugRegistry(set(bugs)))

        baseline = hunt_trace(in_process, batch_size=1)
        for batch_size in (8, 64):
            trace = hunt_trace(in_process, batch_size=batch_size)
            assert trace == baseline
        # The bug-injected hunt must actually find something, or this
        # test proves nothing about findings identity.
        assert baseline[1]

    def test_identical_across_wire_encodings(self, monkeypatch):
        # The factory must be picklable from repro.* alone (the worker
        # child cannot import test modules), so this hunt runs a clean
        # MiniDB target; findings identity is covered by the in-process
        # batch-size test above.
        def subprocess_conn(bugs):
            factory = functools.partial(MiniDBConnection, "sqlite")
            return SubprocessConnection(factory, FAST)

        monkeypatch.delenv("REPRO_WIRE", raising=False)
        rowset = hunt_trace(subprocess_conn, databases=2, bugs=())
        monkeypatch.setenv("REPRO_WIRE", "pickle")
        pickled = hunt_trace(subprocess_conn, databases=2, bugs=())
        assert pickled == rowset

    def test_negotiation_visible_on_connection(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE", raising=False)
        conn = isolated()
        try:
            conn.execute("SELECT 1")
            assert conn.wire_encoding == "rowset-v1"
        finally:
            conn.close()
        monkeypatch.setenv("REPRO_WIRE", "pickle")
        conn = isolated()
        try:
            conn.execute("SELECT 1")
            assert conn.wire_encoding is None
        finally:
            conn.close()
