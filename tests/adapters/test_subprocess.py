"""The fault-isolation harness: crash detection, watchdog, replay.

These tests spawn real child processes; they are the proof that the
crash oracle works for *live* targets — a worker death is detected,
reported, and recovered from without taking the campaign down.
"""

import pytest

from repro.adapters.base import DBMSConnection
from repro.adapters.faults import FaultPlan, FaultyFactory
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.adapters.subprocess_adapter import (
    SubprocessConfig,
    SubprocessConnection,
)
from repro.core.error_oracle import SQLITE3_DOCUMENTED_QUIRKS
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBCrash, DBError, DBTimeout, HarnessError

FAST = SubprocessConfig(statement_timeout=5.0, backoff_base=0.01)


def isolated(plan=None, config=FAST):
    factory = (SQLite3Connection if plan is None
               else FaultyFactory(SQLite3Connection, plan))
    return SubprocessConnection(factory, config)


class TestProtocol:
    def test_satisfies_connection_protocol(self):
        conn = isolated()
        try:
            assert isinstance(conn, DBMSConnection)
            assert conn.dialect == "sqlite"
        finally:
            conn.close()

    def test_value_fidelity_across_the_pipe(self):
        conn = isolated()
        try:
            row = conn.execute(
                "SELECT 1, 1.5, 'héllo', X'00ff', NULL")[0]
            assert [v.v for v in row] == [1, 1.5, "héllo",
                                          b"\x00\xff", None]
        finally:
            conn.close()

    def test_state_persists_across_statements(self):
        conn = isolated()
        try:
            conn.execute("CREATE TABLE t(a)")
            conn.execute("INSERT INTO t VALUES (41)")
            conn.execute("UPDATE t SET a = a + 1")
            assert conn.execute("SELECT a FROM t")[0][0].v == 42
        finally:
            conn.close()

    def test_db_errors_cross_the_pipe_typed(self):
        conn = isolated()
        try:
            with pytest.raises(DBError) as exc:
                conn.execute("SELECT * FROM missing")
            assert "missing" in exc.value.message
            assert not isinstance(exc.value, DBTimeout)
        finally:
            conn.close()

    def test_failed_statements_not_replayed(self):
        conn = isolated(FaultPlan(crash_at=(3,)))
        try:
            conn.execute("CREATE TABLE t(a UNIQUE)")
            conn.execute("INSERT INTO t VALUES (1)")
            with pytest.raises(DBError):
                conn.execute("INSERT INTO t VALUES (1)")  # constraint
            with pytest.raises(DBCrash):
                conn.execute("INSERT INTO t VALUES (2)")
            # Restore replays only the two successes.
            assert [r[0].v for r in conn.execute("SELECT a FROM t")] \
                == [1]
        finally:
            conn.close()

    def test_close_is_idempotent(self):
        conn = isolated()
        conn.close()
        conn.close()


class TestCrashRecovery:
    def test_crash_restart_replay_roundtrip(self):
        conn = isolated(FaultPlan(crash_at=(3,)))
        try:
            conn.execute("CREATE TABLE t(a)")
            conn.execute("INSERT INTO t VALUES (1)")
            conn.execute("INSERT INTO t VALUES (2)")
            first_pid = conn.worker_pid
            with pytest.raises(DBCrash) as exc:
                conn.execute("INSERT INTO t VALUES (3)")
            assert "injected segfault" in str(exc.value)
            rows = conn.execute("SELECT a FROM t ORDER BY a")
            assert [r[0].v for r in rows] == [1, 2]
            assert conn.worker_pid != first_pid
        finally:
            conn.close()

    def test_crash_fault_does_not_refire_after_restart(self):
        # The fault offset advances past the crashed statement, so a
        # deterministic crash_at cannot wedge the connection in a loop.
        conn = isolated(FaultPlan(crash_at=(1,)))
        try:
            conn.execute("CREATE TABLE t(a)")
            with pytest.raises(DBCrash):
                conn.execute("INSERT INTO t VALUES (1)")
            for i in range(5):
                conn.execute(f"INSERT INTO t VALUES ({i})")
            assert len(conn.execute("SELECT * FROM t")) == 5
        finally:
            conn.close()

    def test_real_process_death_is_a_crash(self):
        # Kill the worker out from under the harness — the next
        # statement must surface DBCrash, not hang or raise oddly.
        import os
        import signal

        conn = isolated()
        try:
            conn.execute("CREATE TABLE t(a)")
            os.kill(conn.worker_pid, signal.SIGKILL)
            with pytest.raises(DBCrash) as exc:
                conn.execute("INSERT INTO t VALUES (1)")
            assert "SIGKILL" in str(exc.value) or "died" in str(exc.value)
            conn.execute("INSERT INTO t VALUES (1)")  # recovered
        finally:
            conn.close()


class TestWatchdog:
    def test_timeout_fires_on_hung_statement(self):
        plan = FaultPlan(hang_at=(1,), hang_seconds=60)
        conn = isolated(plan, SubprocessConfig(statement_timeout=0.3,
                                               backoff_base=0.01))
        try:
            conn.execute("CREATE TABLE t(a)")
            with pytest.raises(DBTimeout) as exc:
                conn.execute("INSERT INTO t VALUES (1)")
            assert "watchdog" in exc.value.message
        finally:
            conn.close()

    def test_state_survives_a_timeout(self):
        plan = FaultPlan(hang_at=(2,), hang_seconds=60)
        conn = isolated(plan, SubprocessConfig(statement_timeout=0.3,
                                               backoff_base=0.01))
        try:
            conn.execute("CREATE TABLE t(a)")
            conn.execute("INSERT INTO t VALUES (7)")
            with pytest.raises(DBTimeout):
                conn.execute("INSERT INTO t VALUES (8)")
            # The hung statement was dropped; prior state was replayed.
            assert [r[0].v for r in conn.execute("SELECT a FROM t")] \
                == [7]
        finally:
            conn.close()


class UnbuildableTarget:
    """A factory whose target can never come up (fails in the child)."""

    def __call__(self):  # pragma: no cover - runs in the worker child
        raise RuntimeError("cannot build target")


class TestRetryBudget:
    def test_budget_exhaustion_raises_harness_error(self):
        # Every spawn attempt fails at the handshake, so restore burns
        # through its retry budget and gives up loudly.
        with pytest.raises(HarnessError):
            SubprocessConnection(
                UnbuildableTarget(),
                SubprocessConfig(statement_timeout=1.0, max_restarts=2,
                                 backoff_base=0.0))


class TestRunnerIntegration:
    """Acceptance: a fault plan that crashes the target mid-campaign
    yields a crash-oracle BugReport and the campaign completes the
    remaining databases — no process death, no lost results."""

    def test_crash_and_hang_mid_campaign(self):
        plan = FaultPlan(crash_at=(12,), hang_at=(25,), hang_seconds=60)
        harness = SubprocessConfig(statement_timeout=0.4,
                                   backoff_base=0.01)

        def factory():
            return SubprocessConnection(
                FaultyFactory(SQLite3Connection, plan), harness)

        runner = PQSRunner(
            factory,
            RunnerConfig(dialect="sqlite", seed=3,
                         documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
        stats = runner.run(3)
        assert stats.databases == 3, "campaign must complete every db"
        crashes = [r for r in stats.reports
                   if r.oracle.value == "segfault"]
        # The per-round schedule injects one crash and one hang per
        # database round.
        assert len(crashes) == 3
        assert stats.timeouts == 3
        for report in crashes:
            assert "injected segfault" in report.message
            assert report.test_case.statements

    def test_clean_subprocess_run_matches_in_process(self):
        config = RunnerConfig(dialect="sqlite", seed=55,
                              documented_quirks=SQLITE3_DOCUMENTED_QUIRKS)
        in_process = PQSRunner(SQLite3Connection, config).run(2)

        def factory():
            return SubprocessConnection(SQLite3Connection, FAST)

        config2 = RunnerConfig(dialect="sqlite", seed=55,
                               documented_quirks=SQLITE3_DOCUMENTED_QUIRKS)
        isolated_stats = PQSRunner(factory, config2).run(2)
        assert in_process.statements == isolated_stats.statements
        assert in_process.queries == isolated_stats.queries
        assert len(in_process.reports) == len(isolated_stats.reports) == 0
