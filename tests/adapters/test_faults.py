"""Deterministic fault injection (the harness's own test double)."""

import pytest

from repro.adapters.faults import FaultPlan, FaultyConnection, FaultyFactory
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.errors import DBCrash, DBError


def minidb():
    return MiniDBConnection("sqlite")


class TestFaultPlanDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=99, crash_rate=0.02, hang_rate=0.01,
                      error_rate=0.03, drop_row_rate=0.01)
        b = FaultPlan(seed=99, crash_rate=0.02, hang_rate=0.01,
                      error_rate=0.03, drop_row_rate=0.01)
        assert a.schedule == b.schedule
        assert a.schedule, "rates over a 1000-statement horizon " \
                           "should schedule at least one fault"

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, crash_rate=0.05, error_rate=0.05)
        b = FaultPlan(seed=2, crash_rate=0.05, error_rate=0.05)
        assert a.schedule != b.schedule

    def test_explicit_indexes_override_draw(self):
        plan = FaultPlan(seed=0, error_rate=1.0, crash_at=(3,),
                         horizon=10)
        assert plan.action(3) == "crash"
        assert plan.action(4) == "error"

    def test_fault_indexes_helper(self):
        plan = FaultPlan(crash_at=(5, 2), hang_at=(7,))
        assert plan.fault_indexes("crash") == [2, 5]
        assert plan.fault_indexes("hang") == [7]
        assert plan.fault_indexes("error") == []

    def test_zero_rates_schedule_nothing(self):
        assert FaultPlan(seed=123).schedule == {}


class TestFaultyConnection:
    def test_crash_fires_at_index(self):
        conn = FaultyConnection(minidb(), FaultPlan(crash_at=(1,)))
        conn.execute("CREATE TABLE t(a)")
        with pytest.raises(DBCrash):
            conn.execute("INSERT INTO t VALUES (1)")

    def test_error_fires_once(self):
        conn = FaultyConnection(minidb(), FaultPlan(error_at=(1,)))
        conn.execute("CREATE TABLE t(a)")
        with pytest.raises(DBError) as exc:
            conn.execute("INSERT INTO t VALUES (1)")
        assert "injected" in exc.value.message
        # The schedule advanced past the fault; the retry goes through.
        conn.execute("INSERT INTO t VALUES (1)")
        assert len(conn.execute("SELECT * FROM t")) == 1

    def test_drop_row_truncates_result(self):
        conn = FaultyConnection(minidb(), FaultPlan(drop_row_at=(2,)))
        conn.execute("CREATE TABLE t(a)")
        conn.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert len(conn.execute("SELECT * FROM t")) == 2
        assert len(conn.execute("SELECT * FROM t")) == 3

    def test_hang_sleeps_then_executes(self):
        plan = FaultPlan(hang_at=(0,), hang_seconds=0.01)
        conn = FaultyConnection(minidb(), plan)
        conn.execute("CREATE TABLE t(a)")  # survives the tiny hang
        assert conn.execute("SELECT * FROM t") == []

    def test_offset_seats_counter_mid_schedule(self):
        plan = FaultPlan(crash_at=(5,))
        conn = FaultyConnection(minidb(), plan, offset=5)
        with pytest.raises(DBCrash):
            conn.execute("CREATE TABLE t(a)")

    def test_replay_bypasses_faults_and_counter(self):
        plan = FaultPlan(crash_at=(1,))
        conn = FaultyConnection(minidb(), plan)
        conn.execute("CREATE TABLE t(a)")
        conn.execute_replay("INSERT INTO t VALUES (1)")
        assert conn.statement_index == 1
        with pytest.raises(DBCrash):
            conn.execute("INSERT INTO t VALUES (2)")

    def test_dialect_passthrough(self):
        conn = FaultyConnection(MiniDBConnection("mysql"), FaultPlan())
        assert conn.dialect == "mysql"


class TestFaultyFactory:
    def test_factory_builds_offset_connections(self):
        factory = FaultyFactory(minidb, FaultPlan(crash_at=(2,)))
        assert factory.accepts_offset
        conn = factory(offset=2)
        with pytest.raises(DBCrash):
            conn.execute("CREATE TABLE t(a)")

    def test_factory_is_picklable(self):
        import pickle

        from repro.adapters.sqlite3_adapter import SQLite3Connection

        factory = FaultyFactory(SQLite3Connection,
                                FaultPlan(seed=7, crash_rate=0.01))
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.plan.schedule == factory.plan.schedule
        conn = clone(offset=0)
        assert conn.execute("SELECT 1")[0][0].v == 1
