"""Plan fingerprinting: schema-shape canonicalization, stability."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.guidance import (
    PlanStep,
    canonicalize,
    fingerprint,
    parse_sqlite_eqp_detail,
    steps_from_sqlite_eqp,
)
from repro.minidb.bugs import BugRegistry


def plan(conn, sql):
    return conn.query_plan(sql)


def connection(*bugs):
    return MiniDBConnection("sqlite", bugs=BugRegistry(set(bugs)))


def build_state(conn, analyze=False):
    conn.execute("CREATE TABLE t0 (c0 INT, c1 TEXT)")
    conn.execute("CREATE INDEX i0 ON t0(c0)")
    conn.execute("INSERT INTO t0 VALUES (1, 'a'), (2, 'b')")
    if analyze:
        conn.execute("ANALYZE")


def test_distinct_states_distinct_fingerprints():
    """The four interesting optimizer states the guidance loop is meant
    to distinguish all hash differently."""
    fps = {}

    conn = connection()
    build_state(conn)
    fps["index"] = fingerprint(plan(conn,
                                    "SELECT * FROM t0 WHERE c0 = 1"))

    conn = connection("sqlite-skip-scan-distinct")
    build_state(conn, analyze=True)
    fps["skip-scan"] = fingerprint(plan(conn, "SELECT DISTINCT c0 FROM t0"))

    conn = connection()
    build_state(conn)
    conn.execute("CREATE INDEX ip ON t0(c1) WHERE c1 NOT NULL")
    fps["partial"] = fingerprint(plan(conn,
                                      "SELECT * FROM t0 WHERE c1 NOT NULL"))

    conn = connection()
    build_state(conn)
    conn.execute("CREATE INDEX ie ON t0((c1 || 'x'))")
    fps["expression"] = fingerprint(
        plan(conn, "SELECT * FROM t0 WHERE (c1 || 'x') = 'ax'"))

    conn = connection("sqlite-like-affinity-opt")
    build_state(conn)
    fps["like-opt"] = fingerprint(plan(conn,
                                       "SELECT * FROM t0 WHERE c0 LIKE '1'"))

    assert len(set(fps.values())) == len(fps), fps


def test_fingerprint_ignores_literals_and_names():
    """Same shape, different identifiers/literals => same fingerprint."""
    a = connection()
    a.execute("CREATE TABLE alpha (x INT)")
    a.execute("CREATE INDEX idx_alpha ON alpha(x)")
    b = connection()
    b.execute("CREATE TABLE beta (y INT)")
    b.execute("CREATE INDEX any_name ON beta(y)")
    fp_a = fingerprint(plan(a, "SELECT * FROM alpha WHERE x = 1"))
    fp_b = fingerprint(plan(b, "SELECT * FROM beta WHERE y = 99"))
    assert fp_a == fp_b


def test_fingerprint_deterministic_across_processes():
    """Never Python hash(): fingerprints survive PYTHONHASHSEED."""
    code = (
        "from repro.guidance import PlanStep, fingerprint;"
        "print(fingerprint([PlanStep('index-scan', 't0', 'i0', '(=?)'),"
        "                   PlanStep('full-scan', 't1')]))"
    )
    outs = set()
    for hashseed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p)
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))),
            capture_output=True, text=True, check=True)
        outs.add(out.stdout.strip())
    assert len(outs) == 1
    here = fingerprint([PlanStep("index-scan", "t0", "i0", "(=?)"),
                        PlanStep("full-scan", "t1")])
    assert outs == {here}


def test_canonicalize_autoindex_collapse():
    steps = [PlanStep("index-scan", "t0", "sqlite_autoindex_t0_1"),
             PlanStep("index-scan", "t1", "t1_autoindex_2")]
    canon = canonicalize(steps)
    assert "auto" in canon
    assert "sqlite_autoindex" not in canon


def test_canonicalize_first_appearance_numbering():
    steps = [PlanStep("full-scan", "zeta"),
             PlanStep("index-scan", "alpha", "some_index")]
    canon = canonicalize(steps)
    # Numbering is by first appearance, not name order: zeta -> T0.
    assert canon.startswith("full-scan[T0")
    assert "index-scan[T1,I0" in canon
    assert "zeta" not in canon and "alpha" not in canon
    assert "some_index" not in canon


# -- SQLite EXPLAIN QUERY PLAN text, across format generations ------------

def test_eqp_modern_and_legacy_scan_agree():
    new = parse_sqlite_eqp_detail("SCAN t0")
    old = parse_sqlite_eqp_detail("SCAN TABLE t0")
    assert new == old
    assert new.kind == "full-scan" and new.table == "t0"


def test_eqp_search_with_index_and_constraint():
    step = parse_sqlite_eqp_detail(
        "SEARCH t0 USING INDEX i0 (c0=? AND c1>?)")
    assert step.kind == "index-scan"
    assert step.index == "i0"
    assert step.detail == "(=? AND >?)"


def test_eqp_constraint_strips_identifiers():
    a = parse_sqlite_eqp_detail("SEARCH t0 USING INDEX i0 (c0=?)")
    b = parse_sqlite_eqp_detail("SEARCH other USING INDEX x (zz=?)")
    assert a.detail == b.detail == "(=?)"


def test_eqp_integer_primary_key():
    step = parse_sqlite_eqp_detail(
        "SEARCH t0 USING INTEGER PRIMARY KEY (rowid=?)")
    assert step.index == "<ipk>"


def test_eqp_covering_automatic_partial_flags():
    covering = parse_sqlite_eqp_detail(
        "SEARCH t0 USING COVERING INDEX i0 (c0=?)")
    automatic = parse_sqlite_eqp_detail(
        "SEARCH t0 USING AUTOMATIC COVERING INDEX (c0=?)")
    assert "covering" in covering.detail
    assert "auto" in (automatic.index or "") or "covering" in \
        automatic.detail


def test_eqp_temp_btree_and_fallback():
    btree = parse_sqlite_eqp_detail("USE TEMP B-TREE FOR ORDER BY")
    assert btree.kind == "temp-btree"
    odd = parse_sqlite_eqp_detail("MATERIALIZE t0")
    assert "t0" not in (odd.detail or "")


def test_steps_from_sqlite_eqp_is_stable_across_versions():
    legacy = steps_from_sqlite_eqp(["SCAN TABLE t0",
                                    "SEARCH TABLE t1 USING INDEX i1 "
                                    "(c0=?)"])
    modern = steps_from_sqlite_eqp(["SCAN t0",
                                    "SEARCH t1 USING INDEX i1 (c0=?)"])
    assert fingerprint(legacy) == fingerprint(modern)
