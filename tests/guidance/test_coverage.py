"""PlanCoverage: seen-set semantics, merge, JSON round-trip."""

from __future__ import annotations

from repro.guidance import PlanCoverage


def test_observe_reports_novelty_once():
    cov = PlanCoverage()
    assert cov.observe("aa", "SELECT 1")
    assert not cov.observe("aa", "SELECT 2")
    assert cov.distinct == 1
    assert "aa" in cov
    # First example wins — it is the plan's canonical witness.
    assert cov.example("aa") == "SELECT 1"


def test_merge_counts_only_new():
    a, b = PlanCoverage(), PlanCoverage()
    a.observe("x", "qx")
    b.observe("x", "other")
    b.observe("y", "qy")
    added = a.merge(b)
    assert added == 1
    assert a.distinct == 2
    assert a.example("x") == "qx"


def test_json_round_trip(tmp_path):
    cov = PlanCoverage()
    cov.observe("x", "qx")
    cov.observe("y", "qy")
    path = tmp_path / "cov.json"
    cov.dump(str(path))
    loaded = PlanCoverage.load(str(path))
    assert loaded.to_json() == cov.to_json()
    assert loaded.distinct == 2


def test_dump_is_deterministic(tmp_path):
    a, b = PlanCoverage(), PlanCoverage()
    for cov in (a, b):
        cov.observe("x", "qx")
        cov.observe("y", "qy")
    pa, pb = tmp_path / "a.json", tmp_path / "b.json"
    a.dump(str(pa))
    b.dump(str(pb))
    assert pa.read_text() == pb.read_text()
