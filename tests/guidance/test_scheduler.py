"""PlanGuidance scheduling: determinism, pooling, resume replay."""

from __future__ import annotations

from repro.errors import DBError
from repro.guidance import (
    NULL_GUIDANCE,
    PlanGuidance,
    PlanStep,
    mix_seed,
    mutation_weights,
)


class FakeConnection:
    """Returns a scripted plan per SQL string."""

    def __init__(self, plans):
        self.plans = plans

    def query_plan(self, sql):
        value = self.plans[sql]
        if isinstance(value, Exception):
            raise value
        return value


def test_null_guidance_is_inert():
    assert not NULL_GUIDANCE.enabled
    assert NULL_GUIDANCE.begin_round(1) is None
    assert NULL_GUIDANCE.observe_query(object(), "SELECT 1") is None
    assert NULL_GUIDANCE.end_round() == 0
    assert NULL_GUIDANCE.take_round_plans() == []


def test_passive_mode_never_steers():
    guidance = PlanGuidance(seed=1, feedback=False)
    assert guidance.begin_round(10) is None
    assert guidance.begin_round(11) is None
    assert guidance.pool == []


def test_mix_seed_process_stable():
    # Frozen values: the derivation must never drift, or resumed
    # journals would replay different states.
    assert mix_seed(0, 0) == 0
    assert mix_seed(1, 2) == mix_seed(1, 2)
    assert mix_seed(1, 2) != mix_seed(2, 1)
    assert 0 <= mix_seed(2**70, -3) < 2**64


def test_every_guided_round_gets_a_mutation_burst():
    guidance = PlanGuidance(seed=3)
    profile = guidance.begin_round(77)
    assert profile is not None
    assert profile.mutations
    assert profile.mutation_statements > 0
    assert profile.weights is not None
    assert profile.weights.create_index > profile.weights.insert


def test_observe_and_round_plans():
    guidance = PlanGuidance(seed=3)
    conn = FakeConnection({
        "q1": [PlanStep("full-scan", "t0")],
        "q2": [PlanStep("full-scan", "t0")],
        "q3": [PlanStep("index-scan", "t0", "i0")],
        "bad": DBError("no plan"),
        "empty": [],
    })
    guidance.begin_round(1)
    assert guidance.observe_query(conn, "q1") is not None
    assert guidance.observe_query(conn, "q2") is not None  # same fp, seen
    assert guidance.observe_query(conn, "q3") is not None
    assert guidance.observe_query(conn, "bad") is None
    assert guidance.observe_query(conn, "empty") is None
    assert guidance.observe_query(object(), "q1") is None  # no hook
    assert guidance.end_round() == 2
    plans = guidance.take_round_plans()
    assert [sql for _, sql in plans] == ["q1", "q3"]
    assert guidance.take_round_plans() == []


def test_novel_rounds_feed_the_pool_and_pool_is_bounded():
    guidance = PlanGuidance(seed=5, pool_size=3)
    conn = FakeConnection({})
    for i in range(8):
        guidance.begin_round(i)
        conn.plans[f"q{i}"] = [PlanStep("full-scan", f"t{i}", None,
                                        str(i))]
        guidance.observe_query(conn, f"q{i}")
        guidance.end_round()
    assert len(guidance.pool) <= 3


def test_barren_rounds_stay_out_of_the_pool():
    guidance = PlanGuidance(seed=5)
    guidance.begin_round(1)
    assert guidance.end_round() == 0
    assert guidance.pool == []


def test_restore_round_replays_scheduler_state():
    """A journal-resumed scheduler is indistinguishable from one that
    ran the rounds live: same pool, same coverage, same next profile."""
    plans_per_round = [
        [("f1", "q1"), ("f2", "q2")],
        [],
        [("f3", "q3")],
    ]

    live = PlanGuidance(seed=9)
    for index, plans in enumerate(plans_per_round):
        live.begin_round(100 + index)
        for fp, sql in plans:
            if live.coverage.observe(fp, sql):
                live._round_plans.append((fp, sql))
        live.end_round()

    resumed = PlanGuidance(seed=9)
    for index, plans in enumerate(plans_per_round):
        resumed.restore_round(100 + index, plans)

    assert resumed.pool == live.pool
    assert resumed.coverage.to_json() == live.coverage.to_json()
    assert resumed.begin_round(999) == live.begin_round(999)


def test_mutation_weights_shape():
    weights = mutation_weights()
    # Index creation and maintenance dominate; destructive actions are
    # nearly suppressed so mutated states keep their rows.
    assert weights.create_index > weights.maintenance > weights.insert
    assert weights.drop < weights.insert
