"""Guidance wired into PQSRunner: bit-identity off, coverage on."""

from __future__ import annotations

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.runner import PQSRunner, RunnerConfig
from repro.guidance import NULL_GUIDANCE, PlanGuidance


class Recording(MiniDBConnection):
    """Shared statement stream across a run's connections."""

    stream: list[str] = []

    def execute(self, sql):
        Recording.stream.append(sql)
        return super().execute(sql)


def run_stream(guidance, seed=11, rounds=4):
    Recording.stream = []
    runner = PQSRunner(Recording, RunnerConfig(seed=seed),
                       guidance=guidance)
    stats = runner.run(rounds)
    return list(Recording.stream), stats


def test_guidance_off_is_bit_identical():
    """No guidance, NULL_GUIDANCE, and passive observation all produce
    the exact statement stream of a build without the subsystem."""
    baseline, _ = run_stream(None)
    null_obj, _ = run_stream(NULL_GUIDANCE)
    passive, _ = run_stream(PlanGuidance(seed=11, feedback=False))
    assert baseline == null_obj
    assert baseline == passive


def test_passive_mode_still_tracks_coverage():
    guidance = PlanGuidance(seed=11, feedback=False)
    run_stream(guidance)
    assert guidance.coverage.distinct > 0
    assert guidance.pool == []


def test_guided_run_steers_and_tracks():
    guidance = PlanGuidance(seed=11)
    stream, stats = run_stream(guidance)
    baseline, base_stats = run_stream(None)
    assert stream != baseline  # feedback changes generation...
    assert stats.queries == base_stats.queries  # ...not the query budget
    assert guidance.coverage.distinct > 0
    assert guidance.pool  # novel rounds seeded the pool


def test_guided_run_is_deterministic():
    a = PlanGuidance(seed=11)
    stream_a, _ = run_stream(a)
    b = PlanGuidance(seed=11)
    stream_b, _ = run_stream(b)
    assert stream_a == stream_b
    assert a.coverage.to_json() == b.coverage.to_json()
