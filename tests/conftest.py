"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make `tests/support` importable as a plain package regardless of cwd.
sys.path.insert(0, str(Path(__file__).parent))

from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine


@pytest.fixture
def engine():
    """A clean SQLite-dialect MiniDB engine."""
    return Engine("sqlite")


@pytest.fixture
def mysql_engine():
    return Engine("mysql")


@pytest.fixture
def pg_engine():
    return Engine("postgres")


def make_engine(dialect: str = "sqlite", *bug_ids: str) -> Engine:
    """Engine factory with specific defects enabled."""
    return Engine(dialect, bugs=BugRegistry(set(bug_ids)))


def rows(result) -> list[tuple]:
    """ResultSet -> plain Python tuples."""
    return result.python_rows()


def run(engine: Engine, *statements: str):
    """Execute statements in order; returns the last result set."""
    result = None
    for sql in statements:
        result = engine.execute(sql)
    return result
