"""The paper's SQLite listings, run against *today's* SQLite.

Every SQLite bug the paper reported (Listings 1, 2, 4–10) has long been
fixed upstream; these tests execute the original test cases against the
stdlib ``sqlite3`` build and assert the *correct* behaviour — i.e. the
paper's "expected" column. Together with tests/minidb/test_bugs.py
(which reproduces the *buggy* behaviour via injection), this pins both
sides of each bug's history.
"""

import sqlite3

import pytest


@pytest.fixture
def conn():
    connection = sqlite3.connect(":memory:")
    connection.isolation_level = None
    yield connection
    connection.close()


def run(conn, *statements):
    out = None
    for sql in statements:
        out = conn.execute(sql).fetchall()
    return out


class TestListing1PartialIndex:
    """The critical partial-index bug, fixed shortly after reporting."""

    def test_null_row_fetched(self, conn):
        rows = run(conn,
                   "CREATE TABLE t0(c0)",
                   "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
                   "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)",
                   "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1")
        assert (None,) in rows
        assert len(rows) == 4


class TestListing2TextSubtraction:
    def test_exact_integer_result(self, conn):
        rows = run(conn, "SELECT '' - 2851427734582196970")
        assert rows == [(-2851427734582196970,)]


class TestListing4NocaseWithoutRowid:
    def test_both_rows_fetched(self, conn):
        rows = run(conn,
                   "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID",
                   "CREATE INDEX i0 ON t0(c0 COLLATE NOCASE)",
                   "INSERT INTO t0(c0) VALUES ('A')",
                   "INSERT INTO t0(c0) VALUES ('a')",
                   "SELECT * FROM t0")
        assert sorted(rows) == [("A",), ("a",)]


class TestListing5Rtrim:
    def test_padded_row_fetched(self, conn):
        rows = run(conn,
                   "CREATE TABLE t0(c0 COLLATE RTRIM, c1 BLOB UNIQUE, "
                   "PRIMARY KEY (c0, c1)) WITHOUT ROWID",
                   "INSERT INTO t0 VALUES (123, 3), (' ', 1), "
                   "('      ', 2), ('', 4)",
                   "SELECT * FROM t0 WHERE c1 = 1")
        assert rows == [(" ", 1)]


class TestListing6SkipScan:
    def test_distinct_returns_three_rows(self, conn):
        rows = run(conn,
                   "CREATE TABLE t1 (c1, c2, c3, c4, "
                   "PRIMARY KEY (c4, c3))",
                   "INSERT INTO t1(c3) VALUES (0), (0), (0), (0), (0), "
                   "(0), (0), (0), (0), (0), (NULL), (1), (0)",
                   "UPDATE t1 SET c2 = 0",
                   "INSERT INTO t1(c1) VALUES (0), (0), (NULL), (0), (0)",
                   "ANALYZE",
                   "UPDATE t1 SET c3 = 1",
                   "SELECT DISTINCT * FROM t1 WHERE t1.c3 = 1")
        assert len(rows) == 3


class TestListing7LikeOptimization:
    def test_exact_match_found(self, conn):
        rows = run(conn,
                   "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE)",
                   "INSERT INTO t0(c0) VALUES ('./')",
                   "SELECT * FROM t0 WHERE t0.c0 LIKE './'")
        assert rows == [("./",)]


class TestListing8DoubleQuotedIndex:
    def test_rename_now_detects_double_quoted_string_index(self, conn):
        """The paper's report led SQLite to disallow double-quoted
        strings in indexes.  On this build the legacy CREATE still
        parses, but ALTER ... RENAME now *refuses* instead of silently
        producing the wrong rows the paper observed."""
        run(conn, "CREATE TABLE t0(c1, c2)",
            "INSERT INTO t0(c1, c2) VALUES ('a', 1)",
            'CREATE INDEX i0 ON t0("C3")')
        with pytest.raises(sqlite3.OperationalError,
                           match="no such column: C3"):
            conn.execute("ALTER TABLE t0 RENAME COLUMN c1 TO c3")
        # The paper's wrong result (C3|1 instead of a|1) cannot occur.
        assert run(conn, "SELECT DISTINCT * FROM t0") == [("a", 1)]


class TestListing10RealPkCorruption:
    def test_no_malformed_image(self, conn):
        rows = run(conn,
                   "CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY)",
                   "INSERT INTO t1(c0, c1) VALUES (TRUE, "
                   "9223372036854775807), (TRUE, 0)",
                   "UPDATE t1 SET c0 = NULL",
                   "UPDATE OR REPLACE t1 SET c1 = 1",
                   "SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL)")
        assert rows == [(None, 1.0)]
        # Integrity stays intact.
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == \
            "ok"


class TestListing9DesignDefect:
    def test_like_index_rejected_or_schema_error(self, conn):
        """Listing 9 was resolved as a *design* defect: modern SQLite
        refuses LIKE patterns in index expressions at creation (or, for
        shapes it still accepts, reports the documented malformed-schema
        error after PRAGMA case_sensitive_like changes)."""
        run(conn, "CREATE TABLE test (c0)")
        try:
            conn.execute("CREATE INDEX index_0 ON test(c0 LIKE '')")
        except sqlite3.OperationalError as exc:
            assert "non-deterministic" in str(exc)
            return
        run(conn, "PRAGMA case_sensitive_like=false", "VACUUM")


class TestMySQLListingsOnMiniDB:
    """The MySQL/PostgreSQL listings cannot run against live servers
    offline; assert the *correct* behaviour on clean MiniDB instead
    (the buggy side lives in tests/minidb/test_bugs.py)."""

    def test_listing13_double_negation_correct(self):
        from repro.minidb.engine import Engine

        engine = Engine("mysql")
        engine.execute("CREATE TABLE t0(c0 INT)")
        engine.execute("INSERT INTO t0(c0) VALUES (1)")
        rows = engine.execute(
            "SELECT * FROM t0 WHERE 123 != (NOT (NOT 123))")
        assert rows.python_rows() == [(1,)]

    def test_listing15_inheritance_correct(self):
        from repro.minidb.engine import Engine

        engine = Engine("postgres")
        for sql in ("CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT)",
                    "CREATE TABLE t1(c0 INT) INHERITS (t0)",
                    "INSERT INTO t0(c0, c1) VALUES(0, 0)",
                    "INSERT INTO t1(c0, c1) VALUES(0, 1)"):
            engine.execute(sql)
        rows = engine.execute("SELECT c0, c1 FROM t0 GROUP BY c0, c1")
        assert sorted(rows.python_rows()) == [(0, 0), (0, 1)]
