"""Supervisor: bounded restarts, deterministic backoff, stall stealing."""

import time

from repro.campaigns.journal import RoundRecord, round_seed
from repro.campaigns.scheduler import RoundQueue
from repro.campaigns.supervisor import Supervisor, SupervisorConfig


class StubExecutor:
    """A minimal run_loop-compatible worker for supervision tests."""

    def __init__(self, worker_id, queue, heartbeats,
                 die_on=(), stall_on=()):
        self.worker_id = worker_id
        self.queue = queue
        self.heartbeats = heartbeats
        self.die_on = set(die_on)
        self.stall_on = set(stall_on)
        self.rounds_completed = 0

    def run_loop(self):
        while True:
            index = self.queue.lease(self.worker_id)
            if index is None:
                return
            self.heartbeats[self.worker_id] = time.monotonic()
            if index in self.die_on:
                self.die_on.discard(index)
                raise RuntimeError(f"death on round {index}")
            if index in self.stall_on:
                # Stop heartbeating but keep holding the lease until
                # the queue settles or aborts (a stuck incarnation).
                while not (self.queue.settled or self.queue.aborted
                           or self.worker_id in
                           self.queue._retired_workers):
                    time.sleep(0.005)
                return
            record = RoundRecord(index=index, seed=round_seed(0, index))
            self.queue.complete(index, record, self.worker_id)
            self.rounds_completed += 1


def run_supervised(rounds, slots, factory_behaviors, config=None):
    """factory_behaviors: worker_id -> dict of StubExecutor kwargs."""
    queue = RoundQueue(range(rounds), campaign_seed=0)

    def factory(worker_id, heartbeats):
        kwargs = factory_behaviors.get(worker_id, {})
        return StubExecutor(worker_id, queue, heartbeats, **kwargs)

    supervisor = Supervisor(
        queue, slots, factory,
        config=config or SupervisorConfig(restart_backoff=0.0))
    report = supervisor.run()
    return queue, report


class TestRestart:
    def test_dead_worker_restarted_and_rounds_kept(self):
        # Worker 0's first incarnation dies on its first lease; the
        # replacement (and worker 1) finish everything.
        queue, report = run_supervised(
            6, 2, {0: dict(die_on={0})})
        assert queue.settled
        assert len(queue.completed) == 6
        assert report.restarts == 1
        assert len(report.failures) == 1
        assert "death on round" in report.failures[0].traceback
        assert not report.aborted

    def test_restart_budget_exhaustion_retires_slot(self):
        # Every incarnation of every slot dies instantly; with one
        # restart per slot the fleet retires and the queue aborts.
        behaviors = {i: dict(die_on=set(range(100)))
                     for i in range(100)}
        queue, report = run_supervised(
            4, 2, behaviors,
            config=SupervisorConfig(max_worker_restarts=1,
                                    restart_backoff=0.0))
        assert report.aborted
        assert queue.aborted
        assert report.restarts == 2, "one restart per slot"
        assert len(report.failures) == 4, "two incarnations per slot"

    def test_clean_exit_is_not_restarted(self):
        queue, report = run_supervised(3, 2, {})
        assert report.restarts == 0
        assert report.failures == []

    def test_backoff_is_deterministic_exponential(self):
        config = SupervisorConfig(max_worker_restarts=3,
                                  restart_backoff=0.01,
                                  backoff_cap=0.02)
        behaviors = {i: dict(die_on=set(range(100)))
                     for i in range(100)}
        _, report = run_supervised(2, 1, behaviors, config=config)
        # 0.01 * 2**0, 0.01 * 2**1, then capped at 0.02.
        assert abs(report.backoff_seconds - (0.01 + 0.02 + 0.02)) < 1e-9

    def test_every_incarnation_is_collected(self):
        queue, report = run_supervised(
            6, 2, {0: dict(die_on={0})})
        assert len(report.executors) == 3, "2 initial + 1 restart"
        assert set(report.worker_slots.values()) == {0, 1}


class TestStall:
    def test_stalled_worker_leases_stolen_and_replaced(self):
        config = SupervisorConfig(stall_timeout=0.05,
                                  poll_interval=0.01,
                                  restart_backoff=0.0)
        queue, report = run_supervised(
            6, 2, {0: dict(stall_on={0})}, config=config)
        assert queue.settled, "the stalled round must be re-run"
        assert len(queue.completed) == 6
        assert report.stalls == 1
        assert report.restarts == 1, "a stalled slot gets a replacement"

    def test_stall_detection_off_by_default(self):
        config = SupervisorConfig()
        assert config.stall_timeout == 0.0
