"""Chaos acceptance: a fault-ridden campaign must equal an undisturbed one.

The strongest property the supervision layer can claim: with workers
being killed, rounds failing transiently, and journal bytes corrupted —
all from a seeded schedule — the campaign still completes, and its
merged reports, statistics, and plan coverage are **bit-identical** to a
run with chaos disabled.  Rounds derive campaign-global seeds, the
queue requeues everything that was interrupted, and the merge happens
in round-index order, so no fault can leave a fingerprint on the
results.
"""

import dataclasses

from repro.campaigns.chaos import ChaosKill, ChaosPolicy
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)

BASE = dict(dialect="sqlite", seed=5, threads=3,
            databases_per_thread=4, reduce=False)


def run(journal=None, chaos=None, resume=False, **overrides):
    config = dict(BASE, journal=journal, chaos=chaos, resume=resume)
    config.update(overrides)
    return ParallelCampaign(ParallelCampaignConfig(**config)).run()


def comparable(stats):
    """Everything but wall clock must be reproducible."""
    data = dataclasses.asdict(stats)
    data.pop("seconds")
    for report in data["reports"]:
        report.pop("seconds", None)
    return data


class TestChaosDeterminism:
    def test_chaos_run_is_bit_identical_to_undisturbed(self, tmp_path):
        undisturbed = run()
        chaos = ChaosPolicy(seed=11, kill_probability=0.5, max_kills=3,
                            transient_percent=30, transient_failures=1,
                            corrupt_probability=0.5, max_corruptions=2)
        disturbed = run(journal=str(tmp_path / "chaos.jsonl"),
                        chaos=chaos, max_worker_restarts=3)
        assert chaos.events.kills > 0, "the schedule must actually kill"
        assert chaos.events.transients > 0
        assert comparable(disturbed.stats) == \
            comparable(undisturbed.stats)
        assert [r.seed for r in disturbed.reports] == \
            [r.seed for r in undisturbed.reports]
        assert disturbed.quarantined == [], \
            "transients below the threshold never quarantine"

    def test_chaos_with_guidance_coverage_matches(self, tmp_path):
        undisturbed = run(plan_coverage=str(tmp_path / "a.json"))
        chaos = ChaosPolicy(seed=3, kill_probability=0.4, max_kills=2,
                            transient_percent=25, transient_failures=1)
        disturbed = run(journal=str(tmp_path / "chaos.jsonl"),
                        chaos=chaos, max_worker_restarts=3,
                        plan_coverage=str(tmp_path / "b.json"))
        assert undisturbed.plan_coverage is not None
        assert sorted(undisturbed.plan_coverage.fingerprints()) == \
            sorted(disturbed.plan_coverage.fingerprints())

    def test_same_chaos_seed_same_schedule(self):
        events = []
        for _ in range(2):
            chaos = ChaosPolicy(seed=17, kill_probability=0.5,
                                max_kills=2, transient_percent=40)
            kills = 0
            for step in range(20):
                try:
                    chaos.on_lease(0, step)
                except ChaosKill:
                    kills += 1
            transients = [i for i in range(50)
                          if chaos._is_transient(i)]
            events.append((kills, tuple(transients)))
        assert events[0] == events[1]


class TestQuarantine:
    def test_poison_rounds_quarantined_never_abort(self, tmp_path):
        chaos = ChaosPolicy(seed=1, kill_probability=0.0,
                            transient_percent=0,
                            corrupt_probability=0.0,
                            poison_rounds=frozenset({2, 7}))
        result = run(journal=str(tmp_path / "q.jsonl"), chaos=chaos,
                     quarantine_threshold=2)
        assert [q.index for q in result.quarantined] == [2, 7]
        assert result.stats.quarantined_rounds == 2
        assert result.stats.databases == 10, \
            "the other rounds complete despite the poison"
        reports = result.harness_reports()
        assert len(reports) == 2
        assert "quarantined after 2 attempt(s)" in reports[0]

    def test_quarantine_journaled_and_resumable(self, tmp_path):
        journal = str(tmp_path / "q.jsonl")
        chaos = ChaosPolicy(seed=1, kill_probability=0.0,
                            transient_percent=0,
                            corrupt_probability=0.0,
                            poison_rounds=frozenset({2}))
        first = run(journal=journal, chaos=chaos,
                    quarantine_threshold=2)
        # Resume without chaos: the quarantine record is honored, the
        # round is not retried, and nothing else re-runs.
        resumed = run(journal=journal, resume=True,
                      quarantine_threshold=2)
        assert [q.index for q in resumed.quarantined] == [2]
        assert resumed.stats.databases == first.stats.databases
        assert comparable(resumed.stats) == comparable(first.stats)


class TestCorruptionRecovery:
    def test_corrupted_journal_resumes_to_identical_results(
            self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        undisturbed = run()
        chaos = ChaosPolicy(seed=23, kill_probability=0.0,
                            transient_percent=0,
                            corrupt_probability=1.0, max_corruptions=3)
        run(journal=journal, chaos=chaos)
        assert chaos.events.corruptions > 0
        # Resume from the damaged journal: corrupt lines are skipped
        # and counted, only those rounds re-run, results identical.
        resumed = run(journal=journal, resume=True)
        # Two corruption events may land on the same line, so the
        # recovered count is bounded by — not equal to — the events.
        assert 1 <= resumed.recovery.corrupt_lines <= \
            chaos.events.corruptions
        assert comparable(resumed.stats) == \
            comparable(undisturbed.stats)


class TestObservedChaos:
    def test_fully_observed_chaos_run_is_bit_identical(self, tmp_path):
        """The acceptance bar for --serve: a chaos campaign with the
        event log, observatory, and live HTTP status server all
        attached produces results bit-identical to an undisturbed,
        unobserved run — observation must not perturb the hunt."""
        from repro.observe import EventLog, Observatory, StatusServer

        undisturbed = run()
        chaos = ChaosPolicy(seed=11, kill_probability=0.5, max_kills=3,
                            transient_percent=30, transient_failures=1,
                            corrupt_probability=0.5, max_corruptions=2)
        events = EventLog("sqlite-s5")
        observatory = Observatory(
            campaign="sqlite-s5", dialect="sqlite", seed=BASE["seed"],
            total_rounds=BASE["threads"] * BASE["databases_per_thread"],
            events=events)
        with StatusServer(observatory, port=0):
            observed = run(journal=str(tmp_path / "obs.jsonl"),
                           chaos=chaos, max_worker_restarts=3,
                           observe=observatory)
        assert chaos.events.kills > 0
        assert comparable(observed.stats) == \
            comparable(undisturbed.stats)
        assert [r.seed for r in observed.reports] == \
            [r.seed for r in undisturbed.reports]
        assert len(events) > 0, "the narrative was recorded"

    def test_observed_single_thread_journal_is_byte_identical(
            self, tmp_path):
        """Strongest form, schedule-noise free: one worker, same seed —
        the journal bytes with full observability on must equal the
        journal bytes without."""
        from repro.observe import EventLog, Observatory, StatusServer

        plain = tmp_path / "plain.jsonl"
        observed = tmp_path / "observed.jsonl"
        run(journal=str(plain), threads=1, databases_per_thread=12)
        events = EventLog("sqlite-s5")
        observatory = Observatory(
            campaign="sqlite-s5", dialect="sqlite", seed=BASE["seed"],
            total_rounds=12, events=events)
        with StatusServer(observatory, port=0):
            run(journal=str(observed), threads=1,
                databases_per_thread=12, observe=observatory)
        strip = lambda p: [line for line in
                           p.read_bytes().splitlines()]
        plain_lines, observed_lines = strip(plain), strip(observed)
        assert len(plain_lines) == len(observed_lines)
        # Round lines carry wall-clock seconds; compare with the
        # timing field zeroed, everything else byte-for-byte.
        import json as _json

        def normalized(lines):
            out = []
            for line in lines:
                data = _json.loads(line)
                data.pop("seconds", None)
                data.pop("crc", None)
                out.append(_json.dumps(data, sort_keys=True))
            return out

        assert normalized(plain_lines) == normalized(observed_lines)
