"""Tests for the Figure 2/3 and §4.3 statistics."""

import pytest

from repro.campaigns.metrics import (
    classify_statement,
    constraint_statistics,
    mean_loc,
    single_table_fraction,
    statement_distribution,
)
from repro.campaigns.metrics import testcase_loc_cdf as loc_cdf
from repro.core.reports import BugReport, Oracle, TestCase


def report(statements, oracle=Oracle.CONTAINMENT):
    return BugReport(oracle=oracle, dialect="sqlite",
                     test_case=TestCase(statements=statements))


class TestClassifyStatement:
    @pytest.mark.parametrize("sql,category", [
        ("PRAGMA x = 1", "OPTION"),
        ("SET GLOBAL a = 1", "OPTION"),
        ("ALTER TABLE t RENAME TO u", "ALTER TABLE"),
        ("CHECK TABLE t", "REPAIR/CHECK TABLE"),
        ("REPAIR TABLE t", "REPAIR/CHECK TABLE"),
        ("BEGIN", "TRANSACTION"),
        ("CREATE STATISTICS s ON a FROM t", "CREATE STATS"),
        ("DROP INDEX i", "DROP INDEX"),
        ("drop index if exists i", "DROP INDEX"),
        ("DROP TABLE t", "DROP TABLE"),
        ("DROP TABLE IF EXISTS t", "DROP TABLE"),
        ("DROP VIEW v", "DROP VIEW"),
        ("DROP DATABASE d", "DROP/CREATE/USE DB"),
        ("DROP SCHEMA s", "DROP/CREATE/USE DB"),
        ("SELECT 1", "SELECT"),
        ("CREATE TABLE t(a)", "CREATE TABLE"),
    ])
    def test_mapping(self, sql, category):
        assert classify_statement(sql) == category

    def test_every_drop_lands_in_a_figure3_category(self):
        from repro.campaigns.metrics import FIGURE3_CATEGORIES

        for sql in ("DROP TABLE t", "DROP VIEW v", "DROP INDEX i",
                    "DROP DATABASE d"):
            assert classify_statement(sql) in FIGURE3_CATEGORIES


class TestLocCdf:
    def test_cdf_monotone_and_complete(self):
        reports = [report(["A"] * n + ["SELECT 1"]) for n in (1, 2, 2, 5)]
        points = loc_cdf(reports)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_mean(self):
        reports = [report(["A", "B"]), report(["A", "B", "C", "D"])]
        assert mean_loc(reports) == 3.0

    def test_empty(self):
        assert loc_cdf([]) == []
        assert mean_loc([]) == 0.0


class TestStatementDistribution:
    def test_shares(self):
        reports = [
            report(["CREATE TABLE t(a)", "INSERT INTO t VALUES (1)",
                    "SELECT 1"]),
            report(["CREATE TABLE t(a)", "SELECT 1"],
                   oracle=Oracle.ERROR),
        ]
        dist = statement_distribution(reports)
        assert dist["CREATE TABLE"]["share"] == 1.0
        assert dist["INSERT"]["share"] == 0.5
        assert dist["SELECT"]["trigger_contains"] == 0.5
        assert dist["SELECT"]["trigger_error"] == 0.5

    def test_triggering_statement_is_final(self):
        reports = [report(["CREATE TABLE t(a)", "VACUUM"],
                          oracle=Oracle.ERROR)]
        dist = statement_distribution(reports)
        assert dist["VACUUM"]["trigger_error"] == 1.0
        assert "trigger_error" not in dist["CREATE TABLE"]


class TestConstraintStatistics:
    def test_counts(self):
        reports = [
            report(["CREATE TABLE t(a UNIQUE)", "SELECT 1"]),
            report(["CREATE TABLE t(a PRIMARY KEY)",
                    "CREATE INDEX i ON t(a)", "SELECT 1"]),
        ]
        stats = constraint_statistics(reports)
        assert stats["UNIQUE"] == 0.5
        assert stats["PRIMARY KEY"] == 0.5
        assert stats["CREATE INDEX"] == 0.5
        assert stats["FOREIGN KEY"] == 0.0

    def test_unique_index_counts_both(self):
        reports = [report(["CREATE UNIQUE INDEX i ON t(a)", "SELECT 1"])]
        stats = constraint_statistics(reports)
        assert stats["UNIQUE"] == 1.0 and stats["CREATE INDEX"] == 1.0


class TestSingleTableFraction:
    def test_fraction(self):
        reports = [
            report(["CREATE TABLE a(x)", "SELECT 1"]),
            report(["CREATE TABLE a(x)", "CREATE TABLE b(y)",
                    "SELECT 1"]),
        ]
        assert single_table_fraction(reports) == 0.5
