"""The benchmark suite's shared table formatter (imported via path since
benchmarks/ is not a package)."""

import importlib.util
import sys
from pathlib import Path

BENCH = Path(__file__).parent.parent.parent / "benchmarks"


def load_shared():
    spec = importlib.util.spec_from_file_location("_shared_under_test",
                                                  BENCH / "_shared.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules["_shared_under_test"] = module
    spec.loader.exec_module(module)
    return module


class TestFormatTable:
    def test_alignment(self):
        shared = load_shared()
        table = shared.format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_wide_cells_stretch_columns(self):
        shared = load_shared()
        table = shared.format_table(["h"], [["wide-cell-content"]])
        header, rule, row = table.splitlines()
        assert len(rule) >= len("wide-cell-content")


class TestPaperConstants:
    def test_table3_totals_match_paper(self):
        shared = load_shared()
        totals = {"contains": 0, "error": 0, "segfault": 0}
        for row in shared.PAPER_TABLE3.values():
            for key in totals:
                totals[key] += row[key]
        assert totals == {"contains": 61, "error": 34, "segfault": 4}

    def test_focus_hints_reference_known_defects(self):
        from repro.minidb.bugs import BUG_CATALOG

        shared = load_shared()
        for bug_id in shared.FOCUS_HINTS:
            assert bug_id in BUG_CATALOG
