"""difference_kind(): the post-reduction oracle re-derivation."""

from repro.campaigns.replay import DifferentialReplayer
from repro.core.reports import TestCase
from repro.minidb.bugs import BugRegistry


def replayer(*bugs):
    return DifferentialReplayer("sqlite", BugRegistry(set(bugs)))


class TestDifferenceKind:
    def test_rows_difference(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
            "INSERT INTO t0(c0) VALUES (0), (NULL)",
            "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1",
        ])
        rep = replayer("sqlite-partial-index-is-not")
        assert rep.difference_kind(case) == "rows"

    def test_error_difference(self):
        case = TestCase(statements=[
            "CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY)",
            "INSERT INTO t1(c0, c1) VALUES (1, 2.0), (1, 3.0)",
            "UPDATE OR REPLACE t1 SET c1 = 1",
            "SELECT DISTINCT * FROM t1 WHERE c1 = 1.0",
        ])
        rep = replayer("sqlite-real-pk-corrupt")
        assert rep.difference_kind(case) == "error"

    def test_crash_difference(self):
        from repro.campaigns.replay import DifferentialReplayer as DR

        case = TestCase(statements=[
            "CREATE TABLE t0(c0 INT)",
            "CREATE INDEX i0 ON t0((t0.c0 || 1))",
            "CHECK TABLE t0 FOR UPGRADE",
        ])
        rep = DR("mysql", BugRegistry({"mysql-check-table-crash"}))
        assert rep.difference_kind(case) == "crash"

    def test_no_difference(self):
        case = TestCase(statements=["CREATE TABLE t0(c0)",
                                    "SELECT * FROM t0"])
        rep = replayer("sqlite-partial-index-is-not")
        assert rep.difference_kind(case) is None

    def test_campaign_rederives_oracle(self):
        """End to end: a pg campaign's inherit-groupby report always
        carries the containment oracle after reduction, regardless of
        which oracle first surfaced the raw finding."""
        from repro.campaigns.campaign import Campaign, CampaignConfig

        found = None
        for seed in (1, 4, 0, 2, 3):
            config = CampaignConfig(dialect="postgres", seed=seed,
                                    databases=100,
                                    bug_ids=["pg-inherit-groupby"])
            result = Campaign(config).run()
            for report in result.reports:
                if report.attributed_bugs[0] == "pg-inherit-groupby":
                    found = report
                    break
            if found:
                break
        assert found is not None
        assert found.oracle.value == "contains"
