"""Event-log determinism: the merged, filtered stream is schedule-free.

Full event streams are honest about scheduling — which worker leased
which round, how many attempts, restarts — and therefore differ between
runs.  The contract is one level up: :func:`deterministic_view` of the
merged stream (outcome events only, schedule fields projected away)
must be identical across thread counts, work-stealing schedules, and
chaos injections, exactly like the campaign results themselves.
"""

from repro.campaigns.chaos import ChaosPolicy
from repro.campaigns.journal import round_seed
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)
from repro.observe import (
    EventLog,
    Observatory,
    campaign_id,
    deterministic_view,
    merge_events,
    novel_fingerprints,
)

SEED = 5
TOTAL = 12


def hunt(threads, per_thread, journal=None, chaos=None,
         telemetry=None, **overrides):
    events = EventLog(campaign_id("sqlite", SEED))
    observatory = Observatory(campaign=events.campaign,
                              dialect="sqlite", seed=SEED,
                              total_rounds=threads * per_thread,
                              events=events)
    config = ParallelCampaignConfig(
        dialect="sqlite", seed=SEED, threads=threads,
        databases_per_thread=per_thread, reduce=False,
        journal=journal, chaos=chaos, observe=observatory,
        telemetry=telemetry, **overrides)
    result = ParallelCampaign(config).run()
    return result, events.events()


class TestMergeDeterminism:
    def test_view_identical_across_thread_counts(self):
        views = []
        for threads, per_thread in [(1, 12), (2, 6), (3, 4)]:
            assert threads * per_thread == TOTAL
            _, events = hunt(threads, per_thread)
            views.append(deterministic_view(merge_events(events)))
        assert views[0] == views[1] == views[2]
        completed = [e for e in views[0]
                     if e["kind"] == "round_completed"]
        assert [e["round"] for e in completed] == list(range(TOTAL))

    def test_view_identical_under_chaos(self, tmp_path):
        _, calm = hunt(3, 4)
        chaos = ChaosPolicy(seed=11, kill_probability=0.5, max_kills=3,
                            transient_percent=30, transient_failures=1,
                            corrupt_probability=0.5, max_corruptions=2)
        _, disturbed = hunt(3, 4, journal=str(tmp_path / "c.jsonl"),
                            chaos=chaos, max_worker_restarts=3)
        assert chaos.events.kills > 0, "the schedule must actually kill"
        # The raw streams differ: chaos adds worker_death / round_failed
        # / chaos_* events the calm run never sees.
        disturbed_kinds = {e["kind"] for e in disturbed}
        assert "worker_death" in disturbed_kinds
        assert deterministic_view(merge_events(disturbed)) == \
            deterministic_view(merge_events(calm))

    def test_per_worker_streams_merge_like_one(self):
        # Simulate cross-process collection: each worker writes its own
        # event file; merging the shards equals merging the whole.
        _, events = hunt(3, 4)
        shards = {}
        for event in events:
            shards.setdefault(event.get("worker"), []).append(event)
        assert len(shards) > 1, "more than one worker emitted"
        merged_shards = merge_events(*shards.values())
        assert deterministic_view(merged_shards) == \
            deterministic_view(merge_events(events))

    def test_round_seeds_in_events_match_derivation(self):
        _, events = hunt(2, 6)
        for event in events:
            if event["kind"] == "round_completed":
                assert event["round_seed"] == \
                    round_seed(SEED, event["round"])

    def test_tracked_runs_agree_on_plan_union(self, tmp_path):
        # Per-event plan novelty is worker-relative (which round gets
        # credit depends on scheduling), so plan_novel is excluded from
        # the deterministic view; the schedule-free invariant is the
        # *union* of fingerprints, which must match the merged coverage.
        # Passive tracking (a coverage path without guidance) leaves
        # generation untouched, so the union holds across thread counts;
        # feedback guidance is per-worker by design and makes no such
        # cross-schedule claim.
        unions, views = [], []
        for threads, per_thread in [(1, 12), (3, 4)]:
            path = str(tmp_path / f"cov{threads}.json")
            result, events = hunt(threads, per_thread,
                                  plan_coverage=path)
            unions.append(novel_fingerprints(events))
            views.append(deterministic_view(merge_events(events)))
            assert unions[-1] == \
                sorted(result.plan_coverage.fingerprints())
        assert unions[0] == unions[1]
        assert unions[0], "tracking must surface novel plans"
        assert views[0] == views[1], \
            "tracked outcome stream is still schedule-free"
        assert not any(e["kind"] == "plan_novel" for e in views[0])


class TestSpanEventJoin:
    def test_spans_carry_round_correlation_attrs(self):
        # The tracer context wraps run_round, so every span inside a
        # round carries the same worker/round/round_seed keys as the
        # event log and journal — the three artifacts join on them.
        from repro.telemetry import ListSink, MetricsRegistry, Telemetry
        from repro.telemetry.tracer import Tracer

        sink = ListSink()
        telemetry = Telemetry(registry=MetricsRegistry(),
                              tracer=Tracer(sink))
        _, events = hunt(2, 6, telemetry=telemetry)
        in_round = [e for e in sink.events
                    if "round" in e.get("attrs", {})]
        assert in_round, "round phases must emit spans"
        rounds_spanned = set()
        for span in in_round:
            attrs = span["attrs"]
            assert set(attrs) >= {"worker", "round", "round_seed"}
            assert attrs["round_seed"] == \
                round_seed(SEED, attrs["round"])
            rounds_spanned.add(attrs["round"])
        assert rounds_spanned == set(range(TOTAL))
        # Spot-join: each completion event matches spans of its round.
        for event in events:
            if event["kind"] != "round_completed":
                continue
            matching = [s for s in in_round
                        if s["attrs"]["round"] == event["round"]]
            assert matching
            assert all(s["attrs"]["round_seed"] == event["round_seed"]
                       for s in matching)
