"""Campaign-level multiplan wiring: journaling, byte-identity when off,
resume, reduction under forcing hints, and ``pqs report`` grouping."""

from __future__ import annotations

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.campaigns.parallel import ParallelCampaign, ParallelCampaignConfig
from repro.core.reports import Oracle
from repro.errors import PQSError
from repro.multiplan import MultiPlanReplayer, PlannerHints
from repro.observe.report import build_report

BUG = "sqlite-forced-index-fencepost"

#: Seed whose *journaled* round stream (``round_seed`` derivation)
#: trips the fencepost defect; the unjournaled tests use seed 0.
JOURNAL_SEED = 1


def config(**kw):
    kw.setdefault("seed", 0)
    kw.setdefault("databases", 3)
    kw.setdefault("reduce", False)
    return CampaignConfig(**kw)


def normalized(path):
    """Journal records minus the wall-clock ``seconds`` field (and the
    per-line ``crc`` that covers it) — everything that is allowed to
    differ between two otherwise identical runs."""
    import json

    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        record.pop("seconds", None)
        record.pop("crc", None)
        records.append(record)
    return records


class TestDetection:
    def test_campaign_detects_the_planner_defect(self):
        result = Campaign(config(multiplan=True, bug_ids=[BUG])).run()
        assert any(BUG in r.attributed_bugs for r in result.reports)
        report = next(r for r in result.reports
                      if r.oracle is Oracle.MULTIPLAN)
        assert report.plan_results
        assert any(entry["deviant"] for entry in report.plan_results)
        assert result.stats.multiplan_divergences > 0
        assert result.stats.multiplan_queries > 0

    def test_containment_only_campaign_is_blind(self):
        result = Campaign(config(bug_ids=[BUG])).run()
        assert result.reports == []
        assert result.stats.multiplan_queries == 0


class TestOffIsFree:
    def test_journal_identical_with_feature_off(self, tmp_path):
        """A multiplan-off journal must be indistinguishable from one
        cut by a build without the subsystem: no new keys, same
        fingerprint, same statement stream.  Only wall-clock timing
        (``seconds`` and the line crc covering it) may differ between
        runs."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        Campaign(config(journal=str(a))).run()
        Campaign(config(journal=str(b), multiplan=False)).run()
        assert normalized(a) == normalized(b)
        assert "multiplan" not in a.read_text()

    def test_stream_identical_with_feature_on(self, tmp_path):
        """Turning the oracle on adds journal keys but must not change
        the tested statement stream (clean engine: no reports)."""
        off = Campaign(config(bug_ids=[])).run()
        on = Campaign(config(bug_ids=[], multiplan=True)).run()
        assert on.stats.statements == off.stats.statements
        assert on.stats.queries == off.stats.queries

    def test_multiplan_journal_rejects_plain_resume(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, journal=str(journal))).run()
        with pytest.raises(PQSError):
            Campaign(config(journal=str(journal), resume=True)).run()


class TestJournalAndResume:
    def test_round_records_carry_multiplan_outcomes(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, bug_ids=[BUG],
                        journal=str(journal))).run()
        import json

        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        rounds = [r for r in records if r.get("kind") == "round"]
        outcomes = [r["multiplan"] for r in rounds if "multiplan" in r]
        assert outcomes, "no round journaled a multiplan outcome"
        assert all({"queries", "divergences", "forced_failures",
                    "plans"} <= set(o) for o in outcomes)

    def test_resume_reproduces_multiplan_stats(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        full = Campaign(config(seed=JOURNAL_SEED, databases=4,
                               multiplan=True, bug_ids=[BUG],
                               journal=str(journal))).run()
        assert full.stats.multiplan_divergences > 0
        reference = normalized(journal)
        # Simulate an interrupt after round 1: keep header + 2 records.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")
        resumed = Campaign(config(seed=JOURNAL_SEED, databases=4,
                                  multiplan=True, bug_ids=[BUG],
                                  journal=str(journal),
                                  resume=True)).run()
        assert resumed.stats.multiplan_queries == \
            full.stats.multiplan_queries
        assert resumed.stats.multiplan_divergences == \
            full.stats.multiplan_divergences
        # Re-run rounds reproduce the original records bit-for-bit
        # modulo wall-clock timing.
        assert normalized(journal) == reference

    def test_parallel_campaign_counts_multiplan(self):
        result = ParallelCampaign(ParallelCampaignConfig(
            seed=0, threads=2, databases_per_thread=2, reduce=False,
            bug_ids=[BUG], multiplan=True)).run()
        assert result.stats.multiplan_queries > 0


class TestReductionPreservesForcing:
    def test_reduced_case_still_diverges_under_the_same_hints(self):
        result = Campaign(config(multiplan=True, bug_ids=[BUG],
                                 reduce=True)).run()
        report = next(r for r in result.reports
                      if r.oracle is Oracle.MULTIPLAN)
        assert BUG in report.attributed_bugs
        hints_list = [PlannerHints.from_dict(entry.get("hints", {}))
                      for entry in report.plan_results]
        replayer = MultiPlanReplayer(
            "sqlite", Campaign(config(bug_ids=[BUG])).bugs)
        assert replayer.diverges(report.test_case, hints_list)
        # The minimized case kept only what the divergence needs: the
        # indexed table and enough rows for the fencepost to show.
        assert report.test_case.loc < 40


class TestReportGrouping:
    def test_report_groups_by_diverging_plan_pair(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(seed=JOURNAL_SEED, multiplan=True,
                        bug_ids=[BUG], journal=str(journal))).run()
        digest = build_report(str(journal))
        section = digest["multiplan"]
        assert section["findings"] > 0
        assert section["by_plan_pair"]
        for pair, count in section["by_plan_pair"].items():
            assert "<->" in pair and count > 0
        # Plans-per-query distribution: keys are plan counts.
        assert section["plans_per_query"]
        assert all(int(k) >= 0 for k in section["plans_per_query"])

    def test_report_renders_the_section(self, tmp_path):
        from repro.observe.report import render_report

        journal = tmp_path / "hunt.jsonl"
        Campaign(config(seed=JOURNAL_SEED, multiplan=True,
                        bug_ids=[BUG], journal=str(journal))).run()
        text = render_report(build_report(str(journal)))
        assert "multiplan findings:" in text
        assert "plans per query:" in text

    def test_plain_journal_has_no_multiplan_section(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(journal=str(journal))).run()
        assert "multiplan" not in build_report(str(journal))
