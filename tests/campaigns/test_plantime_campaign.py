"""Campaign-level plan-timing wiring: off-is-free byte identity,
journaled outcomes, resume-exact archives, parallel merge, reporting,
and CLI flag validation.

Live MiniDB timings are microsecond-scale and noisy, so these tests
assert only *structural* timing facts (queries timed, shapes archived,
journal keys) — never that a live hunt flagged a regression.  The
regression arithmetic itself is pinned with synthetic timings in
``tests/plantime``.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)
from repro.cli import main
from repro.errors import PQSError
from repro.plantime import TimingArchive

BUG = "sqlite-forced-index-fencepost"


def config(**kw):
    kw.setdefault("seed", 0)
    kw.setdefault("databases", 3)
    kw.setdefault("reduce", False)
    return CampaignConfig(**kw)


def normalized(path):
    """Journal records minus wall-clock-dependent fields: ``seconds``,
    the ``crc`` covering it, every ``elapsed_us``/``slowdown`` buried
    in plantime outcomes, and the ``regressions`` lists — whether a
    microsecond-scale timing crosses the flagging ratio is scheduling
    noise, so even regression *presence* varies between runs."""
    def strip(value):
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items()
                    if k not in ("seconds", "crc", "elapsed_us",
                                 "slowdown", "regressions")}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value

    return [strip(json.loads(line))
            for line in path.read_text().splitlines()]


def run_cli(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestOffIsFree:
    def test_journal_identical_with_timing_off(self, tmp_path):
        """A multiplan journal without ``--plan-timing`` must be
        indistinguishable from one cut by a build without the
        subsystem: no plantime keys, same fingerprint, same stream."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        Campaign(config(multiplan=True, journal=str(a))).run()
        Campaign(config(multiplan=True, journal=str(b),
                        plan_timing=False)).run()
        assert normalized(a) == normalized(b)
        assert "plantime" not in a.read_text()
        assert "plan_timing" not in a.read_text()

    def test_stream_identical_with_timing_on(self, tmp_path):
        """Timing adds re-executions through the non-logged with_plan
        hook only: the synthesized statement stream must not move."""
        off = Campaign(config(multiplan=True, bug_ids=[BUG])).run()
        on = Campaign(config(multiplan=True, bug_ids=[BUG],
                             plan_timing=True)).run()
        assert on.stats.statements == off.stats.statements
        assert on.stats.queries == off.stats.queries
        assert on.stats.multiplan_queries == off.stats.multiplan_queries
        assert on.stats.plantime_queries > 0
        assert off.stats.plantime_queries == 0

    def test_timing_requires_multiplan(self):
        with pytest.raises(PQSError):
            Campaign(config(plan_timing=True)).run()

    def test_no_archive_without_the_flag(self):
        result = Campaign(config(multiplan=True)).run()
        assert result.timing_archive is None


class TestJournalAndResume:
    def test_round_records_carry_plantime_outcomes(self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, plan_timing=True,
                        journal=str(journal))).run()
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        outcomes = [r["plantime"] for r in records
                    if r.get("kind") == "round" and "plantime" in r]
        assert outcomes, "no round journaled a plantime outcome"
        for outcome in outcomes:
            assert outcome["timed"] == len(outcome["queries"])
            for query in outcome["queries"]:
                assert {"shape", "sql", "plans"} <= set(query)

    def test_resume_of_finished_journal_rebuilds_archive_exactly(
            self, tmp_path):
        """Completed rounds are never re-timed: an archive rebuilt from
        the journal is byte-identical to the one the live run wrote."""
        journal = tmp_path / "hunt.jsonl"
        first_archive = tmp_path / "first.jsonl"
        resumed_archive = tmp_path / "resumed.jsonl"
        Campaign(config(multiplan=True, plan_timing=True,
                        journal=str(journal),
                        timing_archive=str(first_archive))).run()
        Campaign(config(multiplan=True, plan_timing=True,
                        journal=str(journal), resume=True,
                        timing_archive=str(resumed_archive))).run()
        assert first_archive.read_bytes() == resumed_archive.read_bytes()
        assert len(TimingArchive.load(first_archive)) > 0

    def test_partial_resume_reuses_journaled_timings(self, tmp_path):
        """Interrupt after round 1: the resumed archive keeps the
        journaled round's timings verbatim and re-times only the rest —
        so the *structure* (shapes, plan keys, samples) matches the
        full run even though re-run wall clocks cannot."""
        journal = tmp_path / "hunt.jsonl"
        full_path = tmp_path / "full.jsonl"
        resumed_path = tmp_path / "resumed.jsonl"
        full = Campaign(config(databases=4, multiplan=True,
                               plan_timing=True, journal=str(journal),
                               timing_archive=str(full_path))).run()
        reference = normalized(journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")
        resumed = Campaign(config(databases=4, multiplan=True,
                                  plan_timing=True, journal=str(journal),
                                  resume=True, timing_archive=str(
                                      resumed_path))).run()
        assert resumed.stats.plantime_queries == \
            full.stats.plantime_queries
        assert normalized(journal) == reference
        a = TimingArchive.load(full_path)
        b = TimingArchive.load(resumed_path)
        assert a.shapes() == b.shapes()
        for shape in a.shapes():
            mine, theirs = a.plans_for(shape), b.plans_for(shape)
            assert sorted(mine) == sorted(theirs)
            assert {k: p["samples"] for k, p in mine.items()} == \
                {k: p["samples"] for k, p in theirs.items()}

    def test_timing_journal_rejects_plain_multiplan_resume(
            self, tmp_path):
        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, plan_timing=True,
                        journal=str(journal))).run()
        with pytest.raises(PQSError):
            Campaign(config(multiplan=True, journal=str(journal),
                            resume=True)).run()


class TestArchiveOutputs:
    def test_result_archive_matches_outcome_rebuild(self):
        result = Campaign(config(multiplan=True, plan_timing=True)).run()
        assert result.timing_archive is not None
        assert len(result.timing_archive) > 0
        rebuilt = TimingArchive.from_outcomes(
            result.stats.plantime_outcomes)
        assert rebuilt.to_lines() == result.timing_archive.to_lines()

    def test_parallel_merge_matches_outcome_rebuild(self, tmp_path):
        dumped = tmp_path / "merged.jsonl"
        result = ParallelCampaign(ParallelCampaignConfig(
            seed=0, threads=2, databases_per_thread=2, reduce=False,
            multiplan=True, plan_timing=True,
            timing_archive=str(dumped))).run()
        assert result.stats.plantime_queries > 0
        assert result.timing_archive is not None
        assert len(result.timing_archive) > 0
        rebuilt = TimingArchive.from_outcomes(
            result.stats.plantime_outcomes)
        assert rebuilt.to_lines() == result.timing_archive.to_lines()
        assert TimingArchive.load(dumped).to_lines() == \
            result.timing_archive.to_lines()


class TestReporting:
    def test_report_carries_the_plantime_section(self, tmp_path):
        from repro.observe.report import build_report, render_report

        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, plan_timing=True,
                        journal=str(journal))).run()
        report = build_report(str(journal))
        section = report["plantime"]
        assert section["queries_timed"] > 0
        assert section["regressed_shapes"] >= 0
        text = render_report(report)
        assert "planner quality:" in text

    def test_untimed_journal_has_no_plantime_section(self, tmp_path):
        from repro.observe.report import build_report

        journal = tmp_path / "hunt.jsonl"
        Campaign(config(multiplan=True, journal=str(journal))).run()
        assert "plantime" not in build_report(str(journal))


class TestCliFlags:
    def test_plan_timing_requires_multiplan(self):
        code, output = run_cli("hunt", "--dialect", "sqlite",
                               "--plan-timing")
        assert code == 2
        assert "--multiplan" in output

    def test_timing_archive_requires_plan_timing(self, tmp_path):
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--multiplan",
            "--timing-archive", str(tmp_path / "a.jsonl"))
        assert code == 2
        assert "--plan-timing" in output

    def test_hunt_writes_the_archive_and_prints_stats(self, tmp_path):
        archive_path = tmp_path / "archive.jsonl"
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "3",
            "--seed", "0", "--no-reduce", "--multiplan",
            "--plan-timing", "--timing-archive", str(archive_path))
        assert code == 0
        assert "plan timing:" in output
        assert "queries timed" in output
        assert len(TimingArchive.load(archive_path)) > 0
