"""Kill-mid-write durability: SIGKILL a journaling campaign, resume it.

The journal's one-durable-line-per-round contract (flush + fsync under
the write lock) means a ``kill -9`` at any moment loses at most the
in-flight round: everything journaled before the kill is recovered by
``--resume``, the torn final line (if the kill landed mid-write) is
skipped and counted, and the continuation produces exactly the
statistics an uninterrupted run would have.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig

DATABASES = 12

CHILD_SCRIPT = """
import sys
from repro.campaigns.campaign import Campaign, CampaignConfig

config = CampaignConfig(dialect="sqlite", seed=31, databases={databases},
                        reduce=False, journal=sys.argv[1],
                        resume=len(sys.argv) > 2)
Campaign(config).run()
print("DONE", flush=True)
"""


def child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def journaled_lines(path):
    try:
        with open(path, encoding="utf-8") as handle:
            return sum(1 for line in handle if line.strip())
    except OSError:
        return 0


@pytest.mark.slow
class TestKillMidWrite:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        uninterrupted = Campaign(CampaignConfig(
            dialect="sqlite", seed=31, databases=DATABASES,
            reduce=False,
            journal=str(tmp_path / "full.jsonl"))).run()

        journal = str(tmp_path / "killed.jsonl")
        script = CHILD_SCRIPT.format(databases=DATABASES)
        child = subprocess.Popen(
            [sys.executable, "-c", script, journal],
            env=child_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE)
        try:
            # Wait until the child has durably journaled a few rounds,
            # then kill it without warning, mid-hunt.
            deadline = time.monotonic() + 120.0
            while journaled_lines(journal) < 4:
                if child.poll() is not None:
                    out, err = child.communicate()
                    pytest.fail("child finished before it could be "
                                f"killed: {out!r} {err!r}")
                if time.monotonic() > deadline:
                    pytest.fail("child never journaled 4 lines")
                time.sleep(0.01)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL

        killed_at = journaled_lines(journal)
        assert killed_at < 1 + DATABASES, \
            "the kill must have landed mid-campaign"

        resumed = Campaign(CampaignConfig(
            dialect="sqlite", seed=31, databases=DATABASES,
            reduce=False, journal=journal, resume=True)).run()
        assert resumed.stats.databases == uninterrupted.stats.databases
        assert resumed.stats.statements == \
            uninterrupted.stats.statements
        assert resumed.stats.queries == uninterrupted.stats.queries
        assert [r.seed for r in resumed.stats.reports] == \
            [r.seed for r in uninterrupted.stats.reports]
        # At most the in-flight round was lost: every line that made it
        # to disk whole was kept (a torn final line is skipped, never
        # fatal).
        assert resumed.recovery.corrupt_lines <= 1
        assert resumed.recovery.duplicate_rounds == 0

        # The recovered journal is now complete and checksummed.
        lines = [json.loads(line) for line
                 in open(journal, encoding="utf-8")
                 if line.strip()]
        indexes = sorted(line["index"] for line in lines
                         if line.get("kind") == "round")
        assert indexes == list(range(DATABASES))
