"""RoundQueue: work-stealing lease lifecycle, quarantine, idempotence."""

import threading

from repro.campaigns.journal import QuarantineRecord, RoundRecord, round_seed
from repro.campaigns.scheduler import RoundQueue


def record(index, seed=0):
    return RoundRecord(index=index, seed=round_seed(seed, index))


class TestLeaseLifecycle:
    def test_leases_every_round_once(self):
        queue = RoundQueue(range(5), campaign_seed=0)
        leased = [queue.lease(0) for _ in range(5)]
        assert leased == [0, 1, 2, 3, 4]

    def test_complete_settles(self):
        queue = RoundQueue(range(2), campaign_seed=0)
        for index in (queue.lease(0), queue.lease(0)):
            assert queue.complete(index, record(index), 0)
        assert queue.settled
        assert queue.lease(0) is None

    def test_complete_is_idempotent(self):
        queue = RoundQueue(range(1), campaign_seed=0)
        index = queue.lease(0)
        assert queue.complete(index, record(index), 0)
        assert not queue.complete(index, record(index), 1), \
            "a late duplicate (stolen lease finished anyway) is dropped"
        assert queue.completed_by[0] == 0, "first completion wins"

    def test_records_in_order(self):
        queue = RoundQueue(range(3), campaign_seed=0)
        for index in (2, 0, 1):
            queue.lease(0)
        for index in (2, 0, 1):
            queue.complete(index, record(index), 0)
        assert [r.index for r in queue.records_in_order()] == [0, 1, 2]


class TestFailureAndQuarantine:
    def test_fail_requeues_below_threshold(self):
        queue = RoundQueue(range(1), campaign_seed=0,
                           quarantine_threshold=3)
        index = queue.lease(0)
        assert queue.fail(index, "boom") is None
        assert queue.attempts(index) == 1
        assert queue.lease(0) == index, "failed round comes back"

    def test_quarantine_at_threshold(self):
        queue = RoundQueue(range(1), campaign_seed=7,
                           quarantine_threshold=2)
        queue.lease(0)
        assert queue.fail(0, "boom 1") is None
        queue.lease(0)
        quarantine = queue.fail(0, "boom 2")
        assert isinstance(quarantine, QuarantineRecord)
        assert quarantine.index == 0
        assert quarantine.seed == round_seed(7, 0)
        assert quarantine.attempts == 2
        assert queue.settled, "quarantine settles the round"
        assert queue.lease(0) is None

    def test_quarantined_in_order(self):
        queue = RoundQueue(range(3), campaign_seed=0,
                           quarantine_threshold=1)
        for _ in range(3):
            index = queue.lease(0)
            queue.fail(index, "x")
        assert [q.index for q in queue.quarantined_in_order()] == \
            [0, 1, 2]


class TestWorkStealing:
    def test_release_requeues_dead_workers_leases(self):
        queue = RoundQueue(range(3), campaign_seed=0)
        a = queue.lease(1)
        b = queue.lease(1)
        queue.lease(2)
        stolen = queue.release(1)
        assert stolen == sorted([a, b])
        # The released rounds are leasable again by someone else.
        assert queue.lease(2) in stolen
        assert queue.lease(2) in stolen

    def test_retired_worker_cannot_lease(self):
        queue = RoundQueue(range(2), campaign_seed=0)
        queue.retire_worker(1)
        assert queue.lease(1) is None, "zombies are barred"
        assert queue.lease(2) == 0, "others keep working"

    def test_lease_blocks_until_requeue(self):
        queue = RoundQueue(range(1), campaign_seed=0)
        index = queue.lease(1)
        got = []

        def waiter():
            got.append(queue.lease(2))

        thread = threading.Thread(target=waiter)
        thread.start()
        # Worker 1 dies; its lease is released and worker 2 gets it.
        queue.release(1)
        thread.join(timeout=5.0)
        assert got == [index]

    def test_abort_wakes_blocked_workers(self):
        queue = RoundQueue(range(1), campaign_seed=0)
        queue.lease(1)
        got = []

        def waiter():
            got.append(queue.lease(2))

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.abort()
        thread.join(timeout=5.0)
        assert got == [None]
        assert queue.aborted


class TestPreload:
    def test_preloaded_rounds_are_settled(self):
        queue = RoundQueue(range(4), campaign_seed=0)
        queue.preload({0: record(0), 2: record(2)},
                      {3: QuarantineRecord(index=3, seed=1, attempts=3)})
        assert queue.lease(0) == 1
        queue.complete(1, record(1), 0)
        assert queue.settled
        assert queue.completed_by[0] is None, \
            "journal-loaded rounds belong to no worker"
        assert queue.outstanding == 0

    def test_outstanding_counts_pending_and_leased(self):
        queue = RoundQueue(range(3), campaign_seed=0)
        assert queue.outstanding == 3
        queue.lease(0)
        assert queue.outstanding == 3
        queue.complete(0, record(0), 0)
        assert queue.outstanding == 2
