"""Campaign durability: journal writes, resume, fingerprint guard."""

import json

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.campaigns.journal import (
    JOURNAL_VERSION,
    CampaignJournal,
    QuarantineRecord,
    RoundRecord,
    line_checksum,
    round_seed,
)
from repro.core.reports import BugReport, Oracle, TestCase
from repro.errors import PQSError
from repro.values import Value


def fingerprint(result):
    return [(r.oracle.value, tuple(r.test_case.statements), r.triage,
             tuple(r.attributed_bugs)) for r in result.reports]


def config(path=None, resume=False, seed=7, databases=14):
    return CampaignConfig(dialect="sqlite", seed=seed,
                          databases=databases,
                          journal=str(path) if path else None,
                          resume=resume)


class TestRoundSeed:
    def test_deterministic(self):
        assert round_seed(7, 3) == round_seed(7, 3)

    def test_varies_by_index_and_seed(self):
        seeds = {round_seed(7, i) for i in range(100)}
        assert len(seeds) == 100
        assert round_seed(7, 0) != round_seed(8, 0)


class TestSerialization:
    def test_report_roundtrip_with_values(self):
        report = BugReport(
            oracle=Oracle.CONTAINMENT, dialect="sqlite",
            test_case=TestCase(
                statements=["CREATE TABLE t(a)", "SELECT * FROM t"],
                expected_row=[Value.integer(1), Value.real(2.5),
                              Value.text("x"), Value.blob(b"\x00\xff"),
                              Value.null()],
                dialect="sqlite"),
            message="pivot row not contained", seed=3)
        clone = BugReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert clone.oracle is Oracle.CONTAINMENT
        assert clone.test_case.statements == report.test_case.statements
        assert clone.test_case.expected_row == report.test_case.expected_row
        assert clone.message == report.message
        assert clone.seed == report.seed

    def test_round_record_roundtrip(self):
        record = RoundRecord(index=4, seed=99, statements=20, queries=10,
                             pivots=2, expected_errors=1, timeouts=3)
        clone = RoundRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert clone == record


class TestJournaledCampaign:
    def test_journal_written_per_round(self, tmp_path):
        path = tmp_path / "hunt.jsonl"
        result = Campaign(config(path, databases=6)).run()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["dialect"] == "sqlite"
        rounds = [json.loads(line) for line in lines[1:]]
        assert [r["index"] for r in rounds] == list(range(6))
        assert sum(r["statements"] for r in rounds) == \
            result.stats.statements

    def test_resume_reproduces_uninterrupted_totals(self, tmp_path):
        full = tmp_path / "full.jsonl"
        uninterrupted = Campaign(config(full)).run()

        # Interrupt: keep the header plus the first 5 rounds, with a
        # torn (half-written) line the kill left behind.
        partial = tmp_path / "partial.jsonl"
        lines = full.read_text().splitlines()
        partial.write_text("\n".join(lines[:6]) +
                           '\n{"kind": "round", "ind')
        resumed = Campaign(config(partial, resume=True)).run()

        assert resumed.stats.databases == uninterrupted.stats.databases
        assert resumed.stats.statements == uninterrupted.stats.statements
        assert resumed.stats.queries == uninterrupted.stats.queries
        assert fingerprint(resumed) == fingerprint(uninterrupted)

    def test_resume_skips_completed_rounds(self, tmp_path):
        path = tmp_path / "hunt.jsonl"
        Campaign(config(path, databases=5)).run()

        executed = []
        from repro.core import runner as runner_mod

        original = runner_mod.PQSRunner.run_database_round

        def spy(self):
            executed.append(1)
            return original(self)

        runner_mod.PQSRunner.run_database_round = spy
        try:
            Campaign(config(path, resume=True, databases=5)).run()
        finally:
            runner_mod.PQSRunner.run_database_round = original
        assert executed == [], "complete journal must re-run nothing"

    def test_mismatched_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "hunt.jsonl"
        Campaign(config(path, databases=4)).run()
        with pytest.raises(PQSError):
            Campaign(config(path, resume=True, seed=8,
                            databases=4)).run()

    def test_without_resume_starts_over(self, tmp_path):
        import json

        def deterministic_lines(text):
            # Everything but the measured per-round wall clock must be
            # reproducible run-to-run.
            out = []
            for line in text.splitlines():
                data = json.loads(line)
                data.pop("seconds", None)
                # The checksum covers "seconds", so it varies with it.
                data.pop("crc", None)
                out.append(data)
            return out

        path = tmp_path / "hunt.jsonl"
        Campaign(config(path, databases=4)).run()
        first = path.read_text()
        Campaign(config(path, databases=4)).run()
        assert deterministic_lines(path.read_text()) \
            == deterministic_lines(first), \
            "a fresh run overwrites rather than appends"

    def test_journaled_matches_rerun_of_itself(self, tmp_path):
        a = Campaign(config(tmp_path / "a.jsonl")).run()
        b = Campaign(config(tmp_path / "b.jsonl")).run()
        assert fingerprint(a) == fingerprint(b)
        assert a.stats.statements == b.stats.statements


class TestJournalFile:
    def test_load_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "nope.jsonl"))
        assert journal.load({"any": "thing"}) == {}

    def test_load_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "round", "index": 0, "seed": 1}\n')
        with pytest.raises(PQSError):
            CampaignJournal(str(path)).load({})


def _write_journal(path, fingerprint, records):
    with CampaignJournal(str(path)) as journal:
        journal.start(fingerprint, fresh=True)
        for record in records:
            if isinstance(record, QuarantineRecord):
                journal.append_quarantine(record)
            else:
                journal.append_round(record)


def _records(n):
    return [RoundRecord(index=i, seed=round_seed(1, i), statements=5)
            for i in range(n)]


class TestJournalV2:
    FP = {"version": JOURNAL_VERSION, "seed": 1}

    def test_every_line_checksummed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, self.FP, _records(3))
        for line in path.read_text().splitlines():
            data = json.loads(line)
            assert data["crc"] == line_checksum(data)

    def test_corrupt_midfile_line_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, self.FP, _records(5))
        lines = path.read_text().splitlines()
        # Flip a byte in round 2's line: checksum mismatch.
        lines[3] = lines[3].replace('"statements":5',
                                    '"statements":9')
        path.write_text("\n".join(lines) + "\n")
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert sorted(state.rounds) == [0, 1, 3, 4], \
            "a corrupt line must not hide the valid lines after it"
        assert state.recovery.corrupt_lines == 1
        assert not state.recovery.clean

    def test_unparseable_midfile_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, self.FP, _records(4))
        lines = path.read_text().splitlines()
        lines[2] = lines[2][: len(lines[2]) // 2]  # torn mid-file line
        path.write_text("\n".join(lines) + "\n")
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert sorted(state.rounds) == [0, 2, 3]
        assert state.recovery.corrupt_lines == 1

    def test_duplicate_rounds_first_occurrence_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = RoundRecord(index=1, seed=round_seed(1, 1), statements=5)
        late = RoundRecord(index=1, seed=round_seed(1, 1), statements=8)
        _write_journal(path, self.FP,
                       [_records(1)[0], first, late])
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert state.rounds[1].statements == 5
        assert state.recovery.duplicate_rounds == 1

    def test_quarantine_records_loaded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        quarantine = QuarantineRecord(index=2, seed=round_seed(1, 2),
                                      attempts=3, error="HarnessError: x")
        _write_journal(path, self.FP, [_records(1)[0], quarantine])
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert state.quarantined[2].attempts == 3
        assert "round 2" in state.quarantined[2].harness_report()

    def test_quarantine_roundtrip(self):
        record = QuarantineRecord(index=7, seed=99, attempts=3,
                                  error="boom")
        clone = QuarantineRecord.from_json(
            json.loads(json.dumps(record.to_json())))
        assert clone == record

    def test_v1_journal_still_loads(self, tmp_path):
        # A pre-checksum journal: version-1 header, no crc anywhere.
        path = tmp_path / "old.jsonl"
        v1_header = {"kind": "header", "version": 1, "seed": 1}
        record = RoundRecord(index=0, seed=round_seed(1, 0),
                             statements=4)
        path.write_text(json.dumps(v1_header) + "\n" +
                        json.dumps(record.to_json()) + "\n")
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert state.rounds[0].statements == 4
        assert state.recovery.clean

    def test_v2_journal_requires_crc(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, self.FP, _records(1))
        record = RoundRecord(index=1, seed=round_seed(1, 1))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_json()) + "\n")
        state = CampaignJournal(str(path)).load_state(self.FP)
        assert 1 not in state.rounds, \
            "a v2 journal line without a checksum is untrusted"
        assert state.recovery.corrupt_lines == 1

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, self.FP, _records(1))
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"seed":1', '"seed":2')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PQSError):
            CampaignJournal(str(path)).load_state(self.FP)


class TestJournalLifecycle:
    def test_context_manager_closes(self, tmp_path):
        with CampaignJournal(str(tmp_path / "j.jsonl")) as journal:
            journal.start({"version": JOURNAL_VERSION}, fresh=True)
            assert not journal.closed
        assert journal.closed

    def test_close_is_idempotent(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal.start({"version": JOURNAL_VERSION}, fresh=True)
        journal.close()
        journal.close()
        assert journal.closed

    def test_campaign_closes_journal_on_failure(self, tmp_path,
                                                monkeypatch):
        """Regression: Campaign.run() must close the journal on *every*
        exit path, including a runner blowing up mid-round."""
        opened = []
        original_init = CampaignJournal.__init__

        def spy_init(self, path):
            original_init(self, path)
            opened.append(self)

        monkeypatch.setattr(CampaignJournal, "__init__", spy_init)

        from repro.core import runner as runner_mod

        def boom(self):
            raise RuntimeError("mid-campaign explosion")

        monkeypatch.setattr(runner_mod.PQSRunner,
                            "run_database_round", boom)
        with pytest.raises(RuntimeError):
            Campaign(config(tmp_path / "j.jsonl", databases=3)).run()
        assert opened and all(j.closed for j in opened)
