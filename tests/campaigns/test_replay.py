"""Differential replay: manifestation and attribution."""

from repro.campaigns.replay import DifferentialReplayer, StatementOutcome
from repro.core.reports import TestCase
from repro.minidb.bugs import BugRegistry

LISTING1 = TestCase(statements=[
    "CREATE TABLE t0(c0)",
    "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
    "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)",
    "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1",
])

CLEAN_CASE = TestCase(statements=[
    "CREATE TABLE t0(c0)",
    "INSERT INTO t0(c0) VALUES (1)",
    "SELECT c0 FROM t0",
])


def replayer(*bugs):
    registry = BugRegistry(set(bugs) if bugs
                           else {"sqlite-partial-index-is-not",
                                 "sqlite-skip-scan-distinct"})
    return DifferentialReplayer("sqlite", registry)


class TestManifests:
    def test_defect_case_manifests(self):
        assert replayer().manifests(LISTING1)

    def test_clean_case_does_not(self):
        assert not replayer().manifests(CLEAN_CASE)

    def test_prefix_errors_tolerated(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0)",
            "CREATE TABLE t0(c0)",           # fails on both engines
            "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
            "INSERT INTO t0(c0) VALUES (0), (1), (NULL)",
            "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1",
        ])
        assert replayer().manifests(case)

    def test_crash_manifests(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0 INT)",
            "CREATE INDEX i0 ON t0((t0.c0 || 1))",
            "CHECK TABLE t0 FOR UPGRADE",
        ])
        rep = DifferentialReplayer(
            "mysql", BugRegistry({"mysql-check-table-crash"}))
        assert rep.manifests(case)

    def test_error_manifests(self):
        case = TestCase(statements=[
            "CREATE TABLE t0(c0 INT) ENGINE = MEMORY",
            "REPAIR TABLE t0",
        ])
        rep = DifferentialReplayer(
            "mysql", BugRegistry({"mysql-repair-memory-error"}))
        assert rep.manifests(case)


class TestAttribution:
    def test_attributes_to_single_defect(self):
        out = replayer().attribute(LISTING1)
        assert out == ["sqlite-partial-index-is-not"]

    def test_attribution_empty_for_clean_case(self):
        assert replayer().attribute(CLEAN_CASE) == []

    def test_candidates_filter(self):
        out = replayer().attribute(
            LISTING1, candidates=["sqlite-skip-scan-distinct"])
        assert out == []


class TestOutcomes:
    def test_row_outcomes_order_insensitive(self):
        a = StatementOutcome("rows", payload=("x", "y"))
        b = StatementOutcome("rows", payload=("x", "y"))
        assert replayer()._equivalent(a, b)

    def test_error_vs_rows_differ(self):
        a = StatementOutcome("rows")
        b = StatementOutcome("error", message="boom")
        assert not replayer()._equivalent(a, b)

    def test_different_errors_differ(self):
        a = StatementOutcome("error", message="x")
        b = StatementOutcome("error", message="y")
        assert not replayer()._equivalent(a, b)
