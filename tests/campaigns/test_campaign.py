"""End-to-end campaign tests: detection, reduction, triage, tables."""

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.core.reports import BugReport, Oracle, TestCase


@pytest.fixture(scope="module")
def sqlite_result():
    # Seeds/sizes chosen to detect several defects quickly (~15s).
    config = CampaignConfig(dialect="sqlite", seed=42, databases=60)
    return Campaign(config).run()


class TestCampaignRun(object):
    def test_detects_injected_defects(self, sqlite_result):
        assert len(sqlite_result.detected_bug_ids) >= 2
        assert all(bug.startswith("sqlite-")
                   for bug in sqlite_result.detected_bug_ids)

    def test_all_reports_attributed_and_reduced(self, sqlite_result):
        for report in sqlite_result.reports:
            assert report.attributed_bugs
            assert report.reduced

    def test_reduced_cases_are_small(self, sqlite_result):
        # Paper §4.3: mean reduced length 3.71, max 8.
        locs = [r.test_case.loc for r in sqlite_result.reports]
        assert locs and sum(locs) / len(locs) <= 10

    def test_reduced_cases_still_manifest(self, sqlite_result):
        campaign = Campaign(CampaignConfig(dialect="sqlite", seed=42))
        for report in sqlite_result.reports:
            assert campaign.replayer.manifests(report.test_case)

    def test_table2_row_counts_match_reports(self, sqlite_result):
        row = sqlite_result.table2_row()
        assert sum(row.values()) == len(sqlite_result.reports)

    def test_table3_counts_true_bugs(self, sqlite_result):
        row = sqlite_result.table3_row()
        assert sum(row.values()) == len(sqlite_result.true_bugs())

    def test_duplicates_marked(self, sqlite_result):
        by_bug = {}
        for report in sqlite_result.reports:
            by_bug.setdefault(report.attributed_bugs[0],
                              []).append(report)
        for reports in by_bug.values():
            if len(reports) > 1:
                assert any(r.triage == "duplicate" for r in reports[1:])

    def test_max_reports_per_bug_respected(self, sqlite_result):
        by_bug = {}
        for report in sqlite_result.reports:
            key = report.attributed_bugs[0]
            by_bug[key] = by_bug.get(key, 0) + 1
        assert all(n <= 2 for n in by_bug.values())


class TestTriage:
    def test_intended_defect_counts_as_intended(self):
        config = CampaignConfig(dialect="postgres", seed=1717,
                                databases=1,
                                bug_ids=["pg-vacuum-int-overflow"])
        campaign = Campaign(config)
        report = BugReport(
            oracle=Oracle.ERROR, dialect="postgres",
            test_case=TestCase(statements=[
                "CREATE TABLE t1(c0 INT)",
                "INSERT INTO t1(c0) VALUES (2147483647)",
                "CREATE INDEX i0 ON t1((1 + t1.c0))",
                "VACUUM FULL"], dialect="postgres"),
            message="integer out of range")
        processed = campaign._process(report)
        assert processed is not None
        assert campaign._triage(processed.attributed_bugs[0], set()) == \
            "intended"

    def test_docs_triage_counts_as_fixed_in_table2(self):
        from repro.campaigns.campaign import CampaignResult
        from repro.core.reports import RunStatistics

        result = CampaignResult(
            config=CampaignConfig(databases=0),
            stats=RunStatistics())
        result.reports.append(BugReport(
            oracle=Oracle.ERROR, dialect="sqlite",
            test_case=TestCase(statements=["VACUUM"]), triage="docs"))
        assert result.table2_row()["fixed"] == 1

    def test_true_bugs_exclude_intended_and_duplicate(self):
        from repro.campaigns.campaign import CampaignResult
        from repro.core.reports import RunStatistics

        result = CampaignResult(config=CampaignConfig(databases=0),
                                stats=RunStatistics())
        for triage in ("fixed", "verified", "docs", "intended",
                       "duplicate"):
            result.reports.append(BugReport(
                oracle=Oracle.CONTAINMENT, dialect="sqlite",
                test_case=TestCase(statements=["SELECT 1"]),
                triage=triage))
        assert len(result.true_bugs()) == 3


class TestPrimaryAttribution:
    def test_oracle_agreement_wins_over_alphabetical(self):
        from repro.campaigns.campaign import primary_attribution

        report = BugReport(
            oracle=Oracle.ERROR, dialect="postgres",
            test_case=TestCase(statements=["SELECT 1"]),
            attributed_bugs=["pg-inherit-groupby",
                             "pg-stats-bitmap-error"])
        # The error-oracle finding is charged to the error defect even
        # though the containment defect sorts first.
        assert primary_attribution(report) == "pg-stats-bitmap-error"

    def test_falls_back_to_first(self):
        from repro.campaigns.campaign import primary_attribution

        report = BugReport(
            oracle=Oracle.CRASH, dialect="postgres",
            test_case=TestCase(statements=["SELECT 1"]),
            attributed_bugs=["pg-stats-bitmap-error"])
        assert primary_attribution(report) == "pg-stats-bitmap-error"

    def test_containment_matches_contains_tag(self):
        from repro.campaigns.campaign import primary_attribution

        report = BugReport(
            oracle=Oracle.CONTAINMENT, dialect="postgres",
            test_case=TestCase(statements=["SELECT 1"]),
            attributed_bugs=["pg-stats-bitmap-error",
                             "pg-inherit-groupby"])
        assert primary_attribution(report) == "pg-inherit-groupby"


class TestConfig:
    def test_runner_inherits_dialect_and_seed(self):
        config = CampaignConfig(dialect="mysql", seed=9)
        assert config.runner.dialect == "mysql"
        assert config.runner.seed == 9

    def test_default_bug_ids_cover_dialect(self):
        campaign = Campaign(CampaignConfig(dialect="mysql"))
        assert all(b.startswith("mysql-") for b in campaign.bugs.enabled)
        assert len(campaign.bugs.enabled) >= 5
