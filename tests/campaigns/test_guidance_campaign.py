"""Campaign-level plan-coverage guidance: journaling, resume, merge."""

from __future__ import annotations

import json

import pytest

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.campaigns.parallel import ParallelCampaign, ParallelCampaignConfig
from repro.errors import PQSError
from repro.guidance import PlanCoverage


def config(**kw):
    kw.setdefault("seed", 21)
    kw.setdefault("databases", 4)
    kw.setdefault("reduce", False)
    return CampaignConfig(**kw)


def test_guided_campaign_reports_coverage(tmp_path):
    path = tmp_path / "coverage.json"
    result = Campaign(config(guidance=True,
                             plan_coverage=str(path))).run()
    assert result.plan_coverage is not None
    assert result.plan_coverage.distinct > 0
    dumped = json.loads(path.read_text())
    assert dumped["distinct"] == result.plan_coverage.distinct


def test_unguided_campaign_has_no_coverage():
    result = Campaign(config()).run()
    assert result.plan_coverage is None


def test_passive_coverage_without_guidance(tmp_path):
    path = tmp_path / "coverage.json"
    result = Campaign(config(plan_coverage=str(path))).run()
    baseline = Campaign(config()).run()
    assert result.plan_coverage.distinct > 0
    # Passive observation must not perturb the hunt itself.
    assert result.stats.queries == baseline.stats.queries
    assert result.stats.statements == baseline.stats.statements


def test_journal_resume_restores_guidance(tmp_path):
    journal = tmp_path / "hunt.jsonl"
    full = Campaign(config(databases=6, guidance=True,
                           journal=str(journal))).run()

    # Simulate an interrupt after round 2: keep header + 3 records.
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:4]) + "\n")
    resumed = Campaign(config(databases=6, guidance=True,
                              journal=str(journal), resume=True)).run()

    assert resumed.stats.queries == full.stats.queries
    assert resumed.plan_coverage.to_json() == \
        full.plan_coverage.to_json()


def test_guided_journal_rejects_unguided_resume(tmp_path):
    journal = tmp_path / "hunt.jsonl"
    Campaign(config(guidance=True, journal=str(journal))).run()
    with pytest.raises(PQSError):
        Campaign(config(journal=str(journal), resume=True)).run()


def test_parallel_campaign_merges_coverage(tmp_path):
    path = tmp_path / "coverage.json"
    result = ParallelCampaign(ParallelCampaignConfig(
        seed=21, threads=2, databases_per_thread=3, reduce=False,
        guidance=True, plan_coverage=str(path))).run()
    assert result.plan_coverage is not None
    assert len(result.per_thread_plans) == 2
    # The union can't be smaller than any worker, nor bigger than the sum.
    assert result.plan_coverage.distinct >= max(result.per_thread_plans)
    assert result.plan_coverage.distinct <= sum(result.per_thread_plans)
    loaded = PlanCoverage.load(str(path))
    assert loaded.distinct == result.plan_coverage.distinct
