"""Parallel campaign tests (paper §3.4: thread per database)."""

import pytest

from repro.campaigns import parallel as parallel_mod
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)


class TestParallelCampaign:
    def test_merges_thread_results(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        assert len(result.per_thread_reports) == 3
        assert result.stats.databases == 75
        assert result.detected_bug_ids, "threads found nothing"
        for report in result.reports:
            assert report.attributed_bugs

    def test_max_reports_per_bug_global(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25,
                                        max_reports_per_bug=1)
        result = ParallelCampaign(config).run()
        primaries = [r.attributed_bugs[0] for r in result.reports]
        assert len(primaries) == len(set(primaries))

    def test_duplicate_triage_across_threads(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        by_bug = {}
        for report in result.reports:
            by_bug.setdefault(report.attributed_bugs[0],
                              []).append(report)
        for reports in by_bug.values():
            assert all(r.triage == "duplicate" for r in reports[1:])

    def test_threads_use_distinct_seeds(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=0,
                                        threads=2,
                                        databases_per_thread=3,
                                        reduce=False)
        result = ParallelCampaign(config).run()
        # Distinct seeds -> distinct statement streams -> the combined
        # statement count differs from 2x a single stream only if the
        # streams diverge; assert on totals being plausible instead.
        assert result.stats.statements > 0
        assert result.stats.queries > 0


class _FlakyCampaign:
    """Stands in for Campaign; workers with chosen seeds die mid-run."""

    real = None
    fail_seeds: set = set()

    def __init__(self, config):
        self.config = config

    def run(self):
        if self.config.seed in self.fail_seeds:
            raise RuntimeError(f"worker with seed {self.config.seed} "
                               "lost its target")
        return _FlakyCampaign.real(self.config).run()


@pytest.fixture
def flaky_campaign(monkeypatch):
    """Patch parallel.Campaign so specific worker seeds raise."""
    _FlakyCampaign.real = parallel_mod.Campaign
    monkeypatch.setattr(parallel_mod, "Campaign", _FlakyCampaign)
    return _FlakyCampaign


class TestGracefulDegradation:
    CONFIG = dict(dialect="sqlite", seed=42, threads=3,
                  databases_per_thread=10, reduce=False)

    @staticmethod
    def worker_seed(config: ParallelCampaignConfig, index: int) -> int:
        return config.seed + 7919 * (index + 1)

    def test_one_dead_worker_keeps_other_results(self, flaky_campaign):
        config = ParallelCampaignConfig(**self.CONFIG)
        flaky_campaign.fail_seeds = {self.worker_seed(config, 1)}
        result = ParallelCampaign(config).run()
        assert result.stats.databases == 20, \
            "the two surviving workers' databases must be kept"
        assert len(result.worker_errors) == 1
        assert "worker 1" in result.worker_errors[0]
        assert "RuntimeError" in result.worker_errors[0]
        assert len(result.per_thread_reports) == 2

    def test_all_workers_dead_raises(self, flaky_campaign):
        config = ParallelCampaignConfig(**self.CONFIG)
        flaky_campaign.fail_seeds = {
            self.worker_seed(config, i) for i in range(config.threads)}
        with pytest.raises(RuntimeError):
            ParallelCampaign(config).run()

    def test_no_failures_reports_none(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=2,
                                        databases_per_thread=5,
                                        reduce=False)
        result = ParallelCampaign(config).run()
        assert result.worker_errors == []


class TestParallelJournal:
    def test_per_worker_journals_written(self, tmp_path):
        stem = str(tmp_path / "hunt.jsonl")
        config = ParallelCampaignConfig(dialect="sqlite", seed=9,
                                        threads=2,
                                        databases_per_thread=4,
                                        reduce=False, journal=stem)
        ParallelCampaign(config).run()
        assert (tmp_path / "hunt.jsonl.worker0").exists()
        assert (tmp_path / "hunt.jsonl.worker1").exists()

    def test_parallel_resume_matches_uninterrupted(self, tmp_path):
        def run(journal, resume=False):
            config = ParallelCampaignConfig(
                dialect="sqlite", seed=9, threads=2,
                databases_per_thread=6, reduce=False,
                journal=str(journal), resume=resume)
            return ParallelCampaign(config).run()

        full = run(tmp_path / "full.jsonl")
        # Interrupt worker 1 after two rounds; worker 0 finished.
        run(tmp_path / "cut.jsonl")
        cut = tmp_path / "cut.jsonl.worker1"
        cut.write_text("\n".join(
            cut.read_text().splitlines()[:3]) + "\n")
        resumed = run(tmp_path / "cut.jsonl", resume=True)
        assert resumed.stats.databases == full.stats.databases
        assert resumed.stats.statements == full.stats.statements
        assert len(resumed.reports) == len(full.reports)
