"""Parallel campaign tests (paper §3.4: thread per database).

The fleet is a supervised work-stealing queue: any worker can run any
round (rounds derive campaign-global seeds), so these tests assert on
scheduling-independent properties — totals, merged triage, and journal
recovery — plus the supervision semantics (worker death keeps the
survivors' results; total fleet death surfaces the real exception).
"""

import pytest

from repro.campaigns.executor import RoundExecutor
from repro.campaigns.journal import round_seed
from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)


class TestParallelCampaign:
    def test_merges_thread_results(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        assert len(result.per_thread_rounds) == 3
        assert sum(result.per_thread_rounds) == 75
        assert result.stats.databases == 75
        assert result.detected_bug_ids, "threads found nothing"
        for report in result.reports:
            assert report.attributed_bugs

    def test_max_reports_per_bug_global(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25,
                                        max_reports_per_bug=1)
        result = ParallelCampaign(config).run()
        primaries = [r.attributed_bugs[0] for r in result.reports]
        assert len(primaries) == len(set(primaries))

    def test_duplicate_triage_across_threads(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        by_bug = {}
        for report in result.reports:
            by_bug.setdefault(report.attributed_bugs[0],
                              []).append(report)
        for reports in by_bug.values():
            assert all(r.triage == "duplicate" for r in reports[1:])

    def test_rounds_use_campaign_global_seeds(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=0,
                                        threads=2,
                                        databases_per_thread=3,
                                        reduce=False)
        result = ParallelCampaign(config).run()
        assert result.stats.statements > 0
        assert result.stats.queries > 0
        # Every report's seed must be one of the campaign's round
        # seeds, never a per-worker derived stream.
        expected = {round_seed(0, i) for i in range(6)}
        for report in result.stats.reports:
            assert report.seed in expected

    def test_thread_count_does_not_change_results(self):
        def run(threads, per_thread):
            config = ParallelCampaignConfig(
                dialect="sqlite", seed=13, threads=threads,
                databases_per_thread=per_thread, reduce=False)
            return ParallelCampaign(config).run()

        a = run(2, 6)
        b = run(3, 4)
        assert a.stats.statements == b.stats.statements
        assert a.stats.queries == b.stats.queries
        assert [r.seed for r in a.reports] == \
            [r.seed for r in b.reports], \
            "round seeds are campaign-global, so the same 12 rounds " \
            "must produce the same findings under any thread count"


class TestGracefulDegradation:
    CONFIG = dict(dialect="sqlite", seed=42, threads=3,
                  databases_per_thread=10, reduce=False,
                  max_worker_restarts=0)

    @staticmethod
    def _kill_worker_rounds(monkeypatch, doomed, every_attempt=False):
        """Make run_round raise for chosen round indexes — the worker
        thread dies (non-HarnessError escapes the executor loop).  By
        default only the *first* attempt of each doomed round kills, so
        the requeued round succeeds under whoever steals it."""
        original = RoundExecutor.run_round
        import threading

        lock = threading.Lock()
        killed = set()

        def flaky(self, index):
            with lock:
                first = index not in killed
                killed.add(index)
            if index in doomed and (first or every_attempt):
                raise RuntimeError(f"worker lost its target on "
                                   f"round {index}")
            return original(self, index)

        monkeypatch.setattr(RoundExecutor, "run_round", flaky)

    def test_one_dead_worker_keeps_other_results(self, monkeypatch):
        # Round 0 kills the worker that first leases it; with restarts
        # off that slot is retired, the lease is stolen, and a survivor
        # completes the round — nothing is lost.
        self._kill_worker_rounds(monkeypatch, {0})
        result = ParallelCampaign(
            ParallelCampaignConfig(**self.CONFIG)).run()
        assert result.stats.databases == 30, \
            "a dead worker's leased round must be requeued, not lost"
        assert len(result.worker_errors) == 1
        assert "RuntimeError" in result.worker_errors[0]
        assert "run_round" in result.worker_errors[0], \
            "worker errors must carry the full traceback"
        assert len(result.supervision.failures) == 1

    def test_all_workers_dead_raises(self, monkeypatch):
        self._kill_worker_rounds(monkeypatch, set(range(30)),
                                 every_attempt=True)
        with pytest.raises(RuntimeError):
            ParallelCampaign(
                ParallelCampaignConfig(**self.CONFIG)).run()

    def test_restart_budget_recovers_worker_deaths(self, monkeypatch):
        # Three lethal first attempts, one restart per slot: the fleet
        # loses incarnations but completes every round.
        self._kill_worker_rounds(monkeypatch, {0, 1, 2})
        config = dict(self.CONFIG)
        config.update(max_worker_restarts=1, restart_backoff=0.0)
        result = ParallelCampaign(
            ParallelCampaignConfig(**config)).run()
        assert result.stats.databases == 30
        assert result.supervision.restarts >= 1
        assert len(result.worker_errors) == 3

    def test_no_failures_reports_none(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=2,
                                        databases_per_thread=5,
                                        reduce=False)
        result = ParallelCampaign(config).run()
        assert result.worker_errors == []
        assert result.supervision.restarts == 0


class TestParallelJournal:
    def test_single_shared_journal_written(self, tmp_path):
        path = tmp_path / "hunt.jsonl"
        config = ParallelCampaignConfig(dialect="sqlite", seed=9,
                                        threads=2,
                                        databases_per_thread=4,
                                        reduce=False,
                                        journal=str(path))
        ParallelCampaign(config).run()
        assert path.exists()
        import json

        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        indexes = sorted(line["index"] for line in lines[1:])
        assert indexes == list(range(8))

    def test_parallel_resume_matches_uninterrupted(self, tmp_path):
        def run(journal, resume=False, threads=2):
            config = ParallelCampaignConfig(
                dialect="sqlite", seed=9, threads=threads,
                databases_per_thread=12 // threads, reduce=False,
                journal=str(journal), resume=resume)
            return ParallelCampaign(config).run()

        full = run(tmp_path / "full.jsonl")
        # Interrupt: keep the header plus the first 5 journaled rounds.
        run(tmp_path / "cut.jsonl")
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(
            cut.read_text().splitlines()[:6]) + "\n")
        # Resume under a different thread count: rounds are
        # campaign-global, so the shard shape must not matter.
        resumed = run(cut, resume=True, threads=3)
        assert resumed.stats.databases == full.stats.databases
        assert resumed.stats.statements == full.stats.statements
        assert len(resumed.reports) == len(full.reports)

    def test_resume_runs_only_missing_rounds(self, tmp_path):
        path = tmp_path / "hunt.jsonl"

        def run(resume=False):
            config = ParallelCampaignConfig(
                dialect="sqlite", seed=9, threads=2,
                databases_per_thread=3, reduce=False,
                journal=str(path), resume=resume)
            return ParallelCampaign(config).run()

        run()
        executed = []
        original = RoundExecutor.run_round

        def spy(self, index):
            executed.append(index)
            return original(self, index)

        RoundExecutor.run_round = spy
        try:
            result = run(resume=True)
        finally:
            RoundExecutor.run_round = original
        assert executed == [], "complete journal must re-run nothing"
        assert result.stats.databases == 6
        assert result.per_thread_rounds == [0, 0], \
            "preloaded rounds belong to no worker slot"
