"""Parallel campaign tests (paper §3.4: thread per database)."""

from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)


class TestParallelCampaign:
    def test_merges_thread_results(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        assert len(result.per_thread_reports) == 3
        assert result.stats.databases == 75
        assert result.detected_bug_ids, "threads found nothing"
        for report in result.reports:
            assert report.attributed_bugs

    def test_max_reports_per_bug_global(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25,
                                        max_reports_per_bug=1)
        result = ParallelCampaign(config).run()
        primaries = [r.attributed_bugs[0] for r in result.reports]
        assert len(primaries) == len(set(primaries))

    def test_duplicate_triage_across_threads(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=42,
                                        threads=3,
                                        databases_per_thread=25)
        result = ParallelCampaign(config).run()
        by_bug = {}
        for report in result.reports:
            by_bug.setdefault(report.attributed_bugs[0],
                              []).append(report)
        for reports in by_bug.values():
            assert all(r.triage == "duplicate" for r in reports[1:])

    def test_threads_use_distinct_seeds(self):
        config = ParallelCampaignConfig(dialect="sqlite", seed=0,
                                        threads=2,
                                        databases_per_thread=3,
                                        reduce=False)
        result = ParallelCampaign(config).run()
        # Distinct seeds -> distinct statement streams -> the combined
        # statement count differs from 2x a single stream only if the
        # streams diverge; assert on totals being plausible instead.
        assert result.stats.statements > 0
        assert result.stats.queries > 0
