"""Property-based tests (hypothesis) over core data structures and
invariants: value model totality, comparison order laws, LIKE vs the real
SQLite implementation, round-trips, rectification soundness, and reducer
minimality.
"""

from __future__ import annotations

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import make_interpreter
from repro.interp.base import EvalError
from repro.interp.patterns import glob_match, like_match
from repro.interp.sqlite_sem import (
    apply_numeric_affinity,
    storage_compare,
    to_text,
)
from repro.minidb.parser import parse_expression
from repro.sqlast.nodes import LiteralNode
from repro.sqlast.render import render_expr, render_literal
from repro.sqlast.transform import fold_negative_literals
from repro.values import (
    INT64_MAX,
    INT64_MIN,
    Value,
    format_real,
    numeric_prefix,
    text_to_integer,
    wrap_int64,
)

SQLITE = sqlite3.connect(":memory:")
INTERP = make_interpreter("sqlite")

#: Finite, NaN-free floats: NaN values are stored as NULL by SQLite and
#: never reach the comparison machinery.
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
int64s = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
sql_texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12)

sql_values = st.one_of(
    st.none().map(lambda _: Value.null()),
    int64s.map(Value.integer),
    finite_floats.map(Value.real),
    sql_texts.map(Value.text),
    st.binary(max_size=8).map(Value.blob),
)


class TestValueProperties:
    @given(st.integers())
    def test_wrap_int64_stays_in_range(self, i):
        assert INT64_MIN <= wrap_int64(i) <= INT64_MAX

    @given(int64s)
    def test_wrap_identity_in_range(self, i):
        assert wrap_int64(i) == i

    @given(st.text(max_size=20))
    def test_numeric_prefix_total(self, text):
        num, is_int = numeric_prefix(text)
        assert isinstance(num, int) if is_int else isinstance(num, float)

    @given(st.text(max_size=20))
    def test_text_to_integer_clamped(self, text):
        assert INT64_MIN <= text_to_integer(text) <= INT64_MAX

    @given(int64s)
    def test_integer_literal_round_trips_through_sql(self, i):
        text = render_literal(Value.integer(i))
        got = SQLITE.execute(f"SELECT {text}").fetchone()[0]
        assert got == i

    @given(finite_floats)
    def test_real_literal_round_trips_through_sql(self, f):
        """REAL literals round-trip through SQLite's parser — exactly in
        the normal range; SQLite's text-to-float (sqlite3AtoF) can be one
        ulp off at extreme exponents, which is why INTERSECT-mode
        containment excludes such values (see core/containment.py)."""
        import math

        text = render_literal(Value.real(f))
        got = SQLITE.execute(f"SELECT {text}").fetchone()[0]
        if f == 0 or 1e-200 <= abs(f) <= 1e200:
            assert got == f or (got == 0 and f == 0)
        else:
            assert got == f or math.isclose(got, f, rel_tol=1e-15)

    @given(sql_texts)
    def test_text_literal_round_trips_through_sql(self, s):
        text = render_literal(Value.text(s))
        assert SQLITE.execute(f"SELECT {text}").fetchone()[0] == s

    @given(finite_floats)
    def test_format_real_matches_sqlite(self, f):
        """format_real matches SQLite's rendering away from the 15th-
        digit rounding cusp.

        SQLite 3.40 extracts decimal digits with 80-bit long-double
        arithmetic, so when the 16th significant digit is ~5 its
        rounding can go either way (~0.4% of random doubles); Python has
        no long double, so exactly emulating that sub-ulp behaviour is
        out of scope (documented in EXPERIMENTS.md).  We assert equality
        off the cusp and 15-digit agreement on it.
        """
        import decimal

        got = SQLITE.execute("SELECT '' || ?", (f,)).fetchone()[0]
        if f != 0:
            digits = decimal.Decimal(abs(f)).scaleb(
                -decimal.Decimal(abs(f)).adjusted()).as_tuple().digits
            sixteenth = digits[15] if len(digits) > 15 else 0
            if sixteenth in (4, 5, 6):
                # On the cusp: require agreement in the first 14 digits.
                assert format_real(f)[:14] == got[:14]
                return
        assert format_real(f) == got

    @given(sql_values)
    def test_apply_numeric_affinity_idempotent(self, value):
        once = apply_numeric_affinity(value)
        assert apply_numeric_affinity(once) == once


class TestComparisonOrderLaws:
    @given(sql_values, sql_values)
    def test_antisymmetry(self, a, b):
        if a.is_null or b.is_null:
            return
        assert storage_compare(a, b) == -storage_compare(b, a)

    @given(sql_values, sql_values, sql_values)
    @settings(max_examples=200)
    def test_transitivity(self, a, b, c):
        if any(v.is_null for v in (a, b, c)):
            return
        if storage_compare(a, b) <= 0 and storage_compare(b, c) <= 0:
            assert storage_compare(a, c) <= 0

    @given(sql_values)
    def test_reflexive_equality(self, a):
        if a.is_null:
            return
        assert storage_compare(a, a) == 0


class TestPatternProperties:
    @given(sql_texts, sql_texts)
    @settings(max_examples=300)
    def test_like_matches_real_sqlite(self, text, pattern):
        got = SQLITE.execute("SELECT ? LIKE ?", (text, pattern)
                             ).fetchone()[0]
        assert like_match(text, pattern) == bool(got)

    @given(sql_texts, sql_texts)
    @settings(max_examples=300)
    def test_glob_matches_real_sqlite(self, text, pattern):
        got = SQLITE.execute("SELECT ? GLOB ?", (text, pattern)
                             ).fetchone()[0]
        assert glob_match(text, pattern) == bool(got)

    @given(sql_texts)
    def test_percent_matches_everything(self, text):
        assert like_match(text, "%")

    @given(sql_texts)
    def test_exact_pattern_matches_itself_modulo_wildcards(self, text):
        if "%" not in text and "_" not in text:
            assert like_match(text, text)


class TestExpressionProperties:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_and_rectification(self, seed):
        """For random expression trees: parse(render(e)) == fold(e), the
        interpreter is total or raises EvalError, and rectified
        conditions evaluate to TRUE."""
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent))
        from support.diffharness import ExprFuzzer

        from repro.core.rectify import rectify_condition

        fuzzer = ExprFuzzer(seed)
        expr = fuzzer.expr(3)
        text = render_expr(expr)
        assert parse_expression(text) == fold_negative_literals(expr)
        try:
            rectified = rectify_condition(expr, INTERP, {})
        except EvalError:
            return
        assert INTERP.evaluate_bool(rectified, {}) is True

    @given(sql_values)
    def test_literal_nodes_evaluate_to_themselves(self, value):
        out = INTERP.evaluate(LiteralNode(value), {})
        assert out == value

    @given(sql_values)
    def test_to_text_total_for_non_null(self, value):
        if value.is_null:
            return
        assert isinstance(to_text(value), str)


class TestReducerProperties:
    @given(st.sets(st.integers(min_value=0, max_value=19)),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80, deadline=None)
    def test_ddmin_reaches_exact_core(self, needed, shuffle_seed):
        """For monotone subset predicates, ddmin finds exactly the
        necessary statements."""
        import random

        from repro.core.reducer import TestCaseReducer
        from repro.core.reports import TestCase

        statements = [f"S{i}" for i in range(20)]
        random.Random(shuffle_seed).shuffle(statements)
        needed_names = {f"S{i}" for i in needed}

        def still_fails(candidate):
            return needed_names <= set(candidate.statements[:-1])

        reduced = TestCaseReducer(still_fails).reduce(
            TestCase(statements=statements + ["FAIL"]))
        assert set(reduced.statements[:-1]) == needed_names
