"""Random state generation: every generated statement must be accepted
(or fail only with expected errors) by the target dialect's engine."""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.error_oracle import ErrorOracle
from repro.core.schema import SchemaModel
from repro.dialects import get_dialect
from repro.errors import DBError
from repro.minidb.bugs import BugRegistry
from repro.rng import RandomSource
from repro.stategen.actions import ActionGenerator, ActionWeights
from repro.stategen.data_gen import DataGenerator
from repro.stategen.schema_gen import SchemaGenerator


def generators(dialect="sqlite", seed=1):
    schema = SchemaModel(dialect=dialect)
    rng = RandomSource(seed)
    return schema, ActionGenerator(get_dialect(dialect), schema, rng)


@pytest.mark.parametrize("dialect", ["sqlite", "mysql", "postgres"])
class TestGeneratedStatementsAreValid:
    """The generator's output must parse and execute; the only tolerated
    failures are ones the error oracle expects."""

    def test_thousand_statements(self, dialect):
        oracle = ErrorOracle(dialect)
        for seed in range(8):
            conn = MiniDBConnection(dialect, bugs=BugRegistry())
            schema, actions = generators(dialect, seed)
            statements = list(actions.initial_statements(2, 8))
            for _ in range(120):
                generated = actions.random_action()
                if generated is not None:
                    statements.append(generated)
            for generated in statements:
                try:
                    conn.execute(generated.sql)
                except DBError as exc:
                    verdict = oracle.classify(generated.sql, exc)
                    assert verdict.expected, (generated.sql, exc.message)
                else:
                    if generated.on_success:
                        generated.on_success()

    def test_every_table_gets_seed_rows(self, dialect):
        conn = MiniDBConnection(dialect)
        schema, actions = generators(dialect, seed=3)
        for generated in actions.initial_statements(2, 6):
            try:
                conn.execute(generated.sql)
            except DBError:
                continue
            if generated.on_success:
                generated.on_success()
        for table in schema.base_tables():
            rows = conn.execute(f"SELECT * FROM {table.name}")
            assert len(rows) >= 1, table.name


class TestSchemaGenerator:
    def test_fresh_names_monotonic(self):
        schema, _ = generators()
        assert schema.fresh_table_name() == "t0"
        assert schema.fresh_table_name() == "t1"
        assert schema.fresh_index_name() == "i0"
        assert schema.fresh_view_name() == "v0"

    def test_model_matches_sql_columns(self):
        schema, actions = generators(seed=7)
        for _ in range(30):
            sql, model = actions.schema_gen.create_table()
            assert f"CREATE TABLE {model.name}(" in sql
            for column in model.columns:
                assert column.name in sql

    def test_mysql_tables_always_typed(self):
        schema, actions = generators("mysql", seed=8)
        for _ in range(30):
            _sql, model = actions.schema_gen.create_table()
            assert all(c.type_name for c in model.columns)

    def test_pg_inherits_merges_parent_columns(self):
        schema, actions = generators("postgres", seed=3)
        found_child = False
        for _ in range(80):
            sql, model = actions.schema_gen.create_table()
            schema.tables.append(model)
            if model.inherits:
                found_child = True
                parent = schema.table(model.inherits)
                parent_names = [c.name for c in parent.columns]
                assert [c.name for c in
                        model.columns[:len(parent_names)]] == parent_names
        assert found_child

    def test_view_model_mirrors_projection(self):
        schema, actions = generators(seed=9)
        _sql, table = actions.schema_gen.create_table()
        schema.tables.append(table)
        sql, view = actions.schema_gen.create_view(table)
        assert sql.startswith(f"CREATE VIEW {view.name} AS SELECT")
        assert view.is_view
        assert all(any(c.name == vc.name for c in table.columns)
                   for vc in view.columns)


class TestDataGenerator:
    def test_insert_respects_not_null(self):
        from repro.core.schema import ColumnModel, TableModel

        schema = SchemaModel(dialect="sqlite")
        rng = RandomSource(5)
        data = DataGenerator(get_dialect("sqlite"), schema, rng)
        table = TableModel(name="t", columns=[
            ColumnModel(name="c0", not_null=True)])
        for _ in range(80):
            sql = data.insert(table)
            assert "NULL" not in sql.split("VALUES")[1].upper()

    def test_statement_kinds(self):
        from repro.core.schema import ColumnModel, TableModel

        schema = SchemaModel(dialect="sqlite")
        data = DataGenerator(get_dialect("sqlite"), schema,
                             RandomSource(6))
        table = TableModel(name="t", columns=[ColumnModel(name="c0")])
        assert data.update(table).startswith("UPDATE")
        assert data.delete(table).startswith("DELETE FROM t")


class TestActionGenerator:
    def test_weights_steer_distribution(self):
        weights = ActionWeights(insert=1.0, update=0.0, delete=0.0,
                                create_index=0.0, create_view=0.0,
                                alter=0.0, maintenance=0.0, option=0.0,
                                transaction=0.0, drop=0.0)
        schema, _ = generators()
        rng = RandomSource(2)
        actions = ActionGenerator(get_dialect("sqlite"), schema, rng,
                                  weights=weights)
        from repro.core.schema import ColumnModel, TableModel

        schema.tables.append(TableModel(
            name="t", columns=[ColumnModel(name="c0")]))
        kinds = {actions.random_action().kind for _ in range(40)}
        assert kinds == {"INSERT"}

    def test_no_action_without_tables(self):
        schema, actions = generators()
        assert actions.random_action() is None

    def test_dialect_specific_maintenance(self):
        from repro.core.schema import ColumnModel, TableModel

        for dialect, expected in (("sqlite", {"VACUUM", "REINDEX",
                                              "ANALYZE"}),
                                  ("mysql", {"ANALYZE", "CHECK TABLE",
                                             "REPAIR TABLE"})):
            schema, actions = generators(dialect, seed=4)
            schema.tables.append(TableModel(
                name="t", columns=[ColumnModel(name="c0",
                                               type_name="INT")]))
            seen = set()
            for _ in range(300):
                generated = actions._maintenance(schema.tables[0])
                if generated is not None:
                    seen.add(generated.kind)
            assert expected <= seen
