"""Transaction and DROP action generation (the Figure 3 long tail)."""

from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import get_dialect
from repro.rng import RandomSource
from repro.stategen.actions import ActionGenerator


def generator_with_table(dialect="sqlite", seed=1):
    schema = SchemaModel(dialect=dialect)
    schema.tables.append(TableModel(
        name="t0", columns=[ColumnModel(name="c0")]))
    return schema, ActionGenerator(get_dialect(dialect), schema,
                                   RandomSource(seed))


class TestTransactions:
    def test_begin_then_close(self):
        _schema, actions = generator_with_table()
        begin = actions._transaction()
        assert begin.sql == "BEGIN"
        begin.on_success()
        assert actions.in_transaction
        closer = actions._transaction()
        assert closer.sql in ("COMMIT", "ROLLBACK")
        closer.on_success()
        assert not actions.in_transaction

    def test_close_transaction_balances(self):
        _schema, actions = generator_with_table()
        assert actions.close_transaction() is None
        actions._transaction().on_success()
        closer = actions.close_transaction()
        assert closer is not None and closer.sql == "COMMIT"
        closer.on_success()
        assert actions.close_transaction() is None

    def test_stream_is_balanced(self):
        _schema, actions = generator_with_table(seed=9)
        depth = 0
        for _ in range(500):
            generated = actions.random_action()
            if generated is None or generated.kind != "TRANSACTION":
                continue
            if generated.sql == "BEGIN":
                assert depth == 0
                depth += 1
            else:
                assert depth == 1
                depth -= 1
            if generated.on_success:
                generated.on_success()
        assert depth in (0, 1)


class TestDrops:
    def test_drop_index_after_create(self):
        schema, actions = generator_with_table(seed=2)
        schema.index_names.append("i0")
        generated = actions._drop()
        assert generated is not None
        assert generated.sql == "DROP INDEX i0"
        generated.on_success()
        assert schema.index_names == []

    def test_drop_view_removes_model(self):
        schema, actions = generator_with_table(seed=3)
        view = TableModel(name="v0", columns=[ColumnModel(name="c0")],
                          is_view=True)
        schema.tables.append(view)
        # Force the view branch by leaving no index names.
        generated = actions._drop()
        assert generated is not None
        assert generated.sql == "DROP VIEW v0"
        generated.on_success()
        assert view not in schema.tables

    def test_nothing_to_drop(self):
        _schema, actions = generator_with_table(seed=4)
        assert actions._drop() is None

    def test_base_tables_never_dropped(self):
        schema, actions = generator_with_table(seed=5)
        schema.index_names.append("i0")
        for _ in range(100):
            generated = actions._drop()
            if generated is None:
                continue
            assert not generated.sql.startswith("DROP TABLE")
