"""CLI smoke tests (argument plumbing, not rendering details)."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestParser:
    def test_no_command_prints_help(self):
        code, output = run_cli()
        assert code == 2
        assert "hunt" in output

    def test_unknown_dialect_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hunt", "--dialect", "oracle"])


class TestBugs:
    def test_lists_all(self):
        code, output = run_cli("bugs")
        assert code == 0
        assert "sqlite-partial-index-is-not" in output
        assert "26 defect(s)" in output

    def test_dialect_filter(self):
        code, output = run_cli("bugs", "--dialect", "mysql")
        assert "mysql-double-negation" in output
        assert "sqlite-" not in output


class TestHunt:
    def test_single_bug_hunt(self):
        # Detection odds are per-seed; scan a few so probability shifts
        # in the generators don't make this test flaky.
        for seed in range(6):
            code, output = run_cli(
                "hunt", "--dialect", "sqlite", "--databases", "60",
                "--seed", str(seed),
                "--bugs", "sqlite-partial-index-is-not")
            assert code == 0
            if "detected 1 distinct defect(s)" in output:
                assert "sqlite-partial-index-is-not" in output
                return
        raise AssertionError("no seed in 0..5 detected the defect")

    def test_no_reduce_flag(self):
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "5",
            "--seed", "2", "--no-reduce")
        assert code == 0

    def test_threads_prints_per_worker_counts(self):
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "5",
            "--seed", "2", "--threads", "2", "--no-reduce")
        assert code == 0
        assert "worker 0:" in output
        assert "worker 1:" in output
        assert "across 2 worker(s)" in output

    def test_journal_and_resume(self, tmp_path):
        journal = str(tmp_path / "hunt.jsonl")
        code, first = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "6",
            "--seed", "2", "--no-reduce", "--journal", journal)
        assert code == 0
        code, second = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "6",
            "--seed", "2", "--no-reduce", "--journal", journal,
            "--resume")
        assert code == 0
        assert first.splitlines()[0] == second.splitlines()[0], \
            "resume of a finished journal must reproduce its totals"

    def test_resume_without_journal_rejected(self):
        code, output = run_cli("hunt", "--resume")
        assert code == 2
        assert "--journal" in output


class TestHuntTelemetry:
    def test_metrics_json_snapshot(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "8",
            "--seed", "3", "--no-reduce", "--metrics", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        snapshot = payload["snapshot"]
        phases = [k for k in snapshot
                  if k.startswith("pqs_phase_seconds{")]
        assert len(phases) == 4
        assert all(snapshot[k]["count"] > 0 for k in phases)
        assert payload["derived"]["queries_per_second"] > 0
        # Stats output grows throughput and phase lines.
        assert "queries/s" in output
        assert "phase " in output

    def test_metrics_prometheus_text(self, tmp_path):
        path = tmp_path / "metrics.prom"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "5",
            "--seed", "2", "--no-reduce", "--metrics", str(path))
        assert code == 0
        text = path.read_text()
        assert "# TYPE pqs_rounds_completed_total counter" in text
        assert 'phase="stategen"' in text
        assert "pqs_phase_seconds_bucket{" in text

    def test_trace_jsonl(self, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "3",
            "--seed", "2", "--no-reduce", "--trace", str(path))
        assert code == 0
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert events
        assert {"stategen", "synthesize"} \
            <= {e["name"] for e in events}

    def test_progress_writes_to_stderr(self, capsys):
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "4",
            "--seed", "2", "--no-reduce", "--progress", "0.01")
        assert code == 0
        err = capsys.readouterr().err
        assert "[pqs] round 4/4 (100%)" in err

    def test_parallel_hunt_merges_metrics(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "4",
            "--seed", "2", "--threads", "2", "--no-reduce",
            "--metrics", str(path))
        assert code == 0
        snapshot = json.loads(path.read_text())["snapshot"]
        assert snapshot["pqs_rounds_completed_total"]["value"] == 8


class TestReplay:
    LISTING1 = (
        "CREATE TABLE t0(c0);\n"
        "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;\n"
        "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);\n"
        "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;\n")

    def test_manifesting_case(self, tmp_path):
        path = tmp_path / "case.sql"
        path.write_text(self.LISTING1)
        code, output = run_cli("replay", str(path))
        assert code == 1
        assert "sqlite-partial-index-is-not" in output

    def test_clean_case(self, tmp_path):
        path = tmp_path / "clean.sql"
        path.write_text("CREATE TABLE t(a);\nSELECT * FROM t;\n")
        code, output = run_cli("replay", str(path))
        assert code == 0
        assert "manifests" in output

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.sql"
        path.write_text("  \n")
        code, _output = run_cli("replay", str(path))
        assert code == 2


class TestSQLiteCommand:
    def test_clean_run_exits_zero(self):
        code, output = run_cli("sqlite", "--databases", "3",
                               "--seed", "5")
        assert code == 0
        assert "no findings" in output


class TestHuntObservability:
    def test_events_flag_writes_unified_log(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "4",
            "--seed", "2", "--no-reduce", "--journal",
            str(tmp_path / "j.jsonl"), "--events", str(path))
        assert code == 0
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("round_completed") == 4
        assert all(e["campaign"] == "sqlite-s2" for e in events)

    def test_serve_announces_on_stderr_and_runs_clean(self, capsys,
                                                      tmp_path):
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "3",
            "--seed", "2", "--no-reduce", "--serve", "0")
        assert code == 0
        err = capsys.readouterr().err
        assert "status server listening on http://127.0.0.1:" in err

    def test_serve_bad_address_fails_fast(self):
        from repro.errors import PQSError

        with pytest.raises(PQSError):
            run_cli("hunt", "--dialect", "sqlite", "--databases", "2",
                    "--seed", "2", "--no-reduce", "--serve", "nope")

    def test_events_without_round_path_notes_on_stderr(self, capsys,
                                                       tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "3",
            "--seed", "2", "--no-reduce", "--events", str(path))
        assert code == 0
        assert "campaign lifecycle only" in capsys.readouterr().err
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["campaign_start", "campaign_end"]


class TestReport:
    def hunt_with_journal(self, tmp_path, **_):
        journal = tmp_path / "j.jsonl"
        code, _ = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "6",
            "--seed", "3", "--no-reduce", "--journal", str(journal),
            "--events", str(tmp_path / "events.jsonl"),
            "--metrics", str(tmp_path / "metrics.json"))
        assert code == 0
        return journal

    def test_report_renders_digest_and_appends_history(self, tmp_path):
        import json

        journal = self.hunt_with_journal(tmp_path)
        history = tmp_path / "history.jsonl"
        code, output = run_cli(
            "report", str(journal),
            "--events", str(tmp_path / "events.jsonl"),
            "--metrics", str(tmp_path / "metrics.json"),
            "--history", str(history))
        assert code == 0
        assert "campaign sqlite-s3" in output
        assert "rounds: 6/6 completed" in output
        assert "distinct bugs:" in output
        assert "phase" in output, "metrics fold into the phase table"
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["campaign"] == "sqlite-s3"

    def test_report_prints_trend_over_prior_campaigns(self, tmp_path):
        import json

        journal = self.hunt_with_journal(tmp_path)
        history = tmp_path / "history.jsonl"
        first_code, first_output = run_cli("report", str(journal),
                                           "--history", str(history))
        assert first_code == 0
        assert "history trend" not in first_output, \
            "no prior campaigns, nothing to compare to"
        second_code, second_output = run_cli("report", str(journal),
                                             "--history", str(history))
        assert second_code == 0
        assert "history trend (1 of 1 campaign(s)):" in second_output
        assert "queries/s:" in second_output
        lines = [json.loads(line)
                 for line in history.read_text().splitlines()]
        assert len(lines) == 2
        assert all("queries_per_second" in line for line in lines)

    def test_report_json_mode(self, tmp_path):
        import json

        journal = self.hunt_with_journal(tmp_path)
        code, output = run_cli("report", str(journal), "--json",
                               "--no-history")
        assert code == 0
        report = json.loads(output)
        assert report["campaign"] == "sqlite-s3"
        assert report["rounds"]["completed"] == 6

    def test_report_missing_journal_errors(self, tmp_path):
        code, output = run_cli("report", str(tmp_path / "nope.jsonl"),
                               "--no-history")
        assert code == 2
        assert "error:" in output
