"""CLI smoke tests (argument plumbing, not rendering details)."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestParser:
    def test_no_command_prints_help(self):
        code, output = run_cli()
        assert code == 2
        assert "hunt" in output

    def test_unknown_dialect_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hunt", "--dialect", "oracle"])


class TestBugs:
    def test_lists_all(self):
        code, output = run_cli("bugs")
        assert code == 0
        assert "sqlite-partial-index-is-not" in output
        assert "23 defect(s)" in output

    def test_dialect_filter(self):
        code, output = run_cli("bugs", "--dialect", "mysql")
        assert "mysql-double-negation" in output
        assert "sqlite-" not in output


class TestHunt:
    def test_single_bug_hunt(self):
        # Detection odds are per-seed; scan a few so probability shifts
        # in the generators don't make this test flaky.
        for seed in range(6):
            code, output = run_cli(
                "hunt", "--dialect", "sqlite", "--databases", "60",
                "--seed", str(seed),
                "--bugs", "sqlite-partial-index-is-not")
            assert code == 0
            if "detected 1 distinct defect(s)" in output:
                assert "sqlite-partial-index-is-not" in output
                return
        raise AssertionError("no seed in 0..5 detected the defect")

    def test_no_reduce_flag(self):
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "5",
            "--seed", "2", "--no-reduce")
        assert code == 0

    def test_threads_prints_per_worker_counts(self):
        code, output = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "5",
            "--seed", "2", "--threads", "2", "--no-reduce")
        assert code == 0
        assert "worker 0:" in output
        assert "worker 1:" in output
        assert "across 2 worker(s)" in output

    def test_journal_and_resume(self, tmp_path):
        journal = str(tmp_path / "hunt.jsonl")
        code, first = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "6",
            "--seed", "2", "--no-reduce", "--journal", journal)
        assert code == 0
        code, second = run_cli(
            "hunt", "--dialect", "sqlite", "--databases", "6",
            "--seed", "2", "--no-reduce", "--journal", journal,
            "--resume")
        assert code == 0
        assert first.splitlines()[0] == second.splitlines()[0], \
            "resume of a finished journal must reproduce its totals"

    def test_resume_without_journal_rejected(self):
        code, output = run_cli("hunt", "--resume")
        assert code == 2
        assert "--journal" in output


class TestReplay:
    LISTING1 = (
        "CREATE TABLE t0(c0);\n"
        "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;\n"
        "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);\n"
        "SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;\n")

    def test_manifesting_case(self, tmp_path):
        path = tmp_path / "case.sql"
        path.write_text(self.LISTING1)
        code, output = run_cli("replay", str(path))
        assert code == 1
        assert "sqlite-partial-index-is-not" in output

    def test_clean_case(self, tmp_path):
        path = tmp_path / "clean.sql"
        path.write_text("CREATE TABLE t(a);\nSELECT * FROM t;\n")
        code, output = run_cli("replay", str(path))
        assert code == 0
        assert "manifests" in output

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.sql"
        path.write_text("  \n")
        code, _output = run_cli("replay", str(path))
        assert code == 2


class TestSQLiteCommand:
    def test_clean_run_exits_zero(self):
        code, output = run_cli("sqlite", "--databases", "3",
                               "--seed", "5")
        assert code == 0
        assert "no findings" in output
