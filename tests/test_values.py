"""Unit tests for the value model and its dialect-independent helpers."""

import math

import pytest

from repro.values import (
    INT64_MAX,
    INT64_MIN,
    NULL,
    SQLType,
    Value,
    collate_binary,
    collate_nocase,
    collate_rtrim,
    compare_blobs,
    compare_numbers,
    fits_int64,
    format_real,
    get_collation,
    int_or_real,
    numeric_prefix,
    real_to_integer,
    text_to_integer,
    text_to_real,
    wrap_int64,
)


class TestConstructors:
    def test_null_is_singleton_tag(self):
        assert Value.null().is_null
        assert Value.null().t is SQLType.NULL

    def test_integer(self):
        v = Value.integer(42)
        assert v.t is SQLType.INTEGER and v.v == 42

    def test_real(self):
        v = Value.real(1.5)
        assert v.t is SQLType.REAL and v.v == 1.5

    def test_text(self):
        assert Value.text("a").v == "a"

    def test_blob(self):
        assert Value.blob(b"ab").v == b"ab"

    def test_boolean_interning(self):
        assert Value.boolean(True).v is True
        assert Value.boolean(False).v is False

    def test_from_python_roundtrip(self):
        for obj in [None, True, 3, 1.25, "x", b"y"]:
            value = Value.from_python(obj)
            assert value.v == obj or (obj is None and value.is_null)

    def test_from_python_bool_is_boolean_not_integer(self):
        assert Value.from_python(True).t is SQLType.BOOLEAN

    def test_from_python_rejects_unknown(self):
        with pytest.raises(TypeError):
            Value.from_python(object())

    def test_is_numeric(self):
        assert Value.integer(1).is_numeric
        assert Value.real(0.5).is_numeric
        assert Value.boolean(True).is_numeric
        assert not Value.text("1").is_numeric
        assert not NULL.is_numeric

    def test_values_are_hashable_and_frozen(self):
        v = Value.integer(1)
        assert hash(v) == hash(Value.integer(1))
        with pytest.raises(AttributeError):
            v.v = 2  # type: ignore[misc]


class TestInt64Helpers:
    def test_wrap_positive_overflow(self):
        assert wrap_int64(INT64_MAX + 1) == INT64_MIN

    def test_wrap_negative_overflow(self):
        assert wrap_int64(INT64_MIN - 1) == INT64_MAX

    def test_wrap_identity_in_range(self):
        for i in (0, 1, -1, INT64_MAX, INT64_MIN):
            assert wrap_int64(i) == i

    def test_fits(self):
        assert fits_int64(INT64_MAX) and fits_int64(INT64_MIN)
        assert not fits_int64(INT64_MAX + 1)

    def test_int_or_real_overflow_becomes_real(self):
        out = int_or_real(INT64_MAX + 1)
        assert out.t is SQLType.REAL

    def test_int_or_real_in_range(self):
        assert int_or_real(7).t is SQLType.INTEGER


class TestNumericPrefix:
    @pytest.mark.parametrize("text,expected,is_int", [
        ("12", 12, True),
        ("-12.5abc", -12.5, False),
        ("abc", 0, True),
        ("", 0, True),
        ("  42  ", 42, True),
        ("+7", 7, True),
        (".5", 0.5, False),
        ("1e2", 100.0, False),
        ("1e", 1, True),          # dangling exponent is not consumed
        ("0x1A", 0, True),        # hex is not SQL numeric text
        ("-", 0, True),
    ])
    def test_prefix(self, text, expected, is_int):
        num, got_int = numeric_prefix(text)
        assert num == expected
        assert got_int == is_int

    def test_text_to_integer_ignores_exponent(self):
        # CAST('9e99' AS INTEGER) is 9 in SQLite: digit prefix only.
        assert text_to_integer("9e99") == 9

    def test_text_to_integer_ignores_fraction(self):
        assert text_to_integer("12.9") == 12

    def test_text_to_integer_clamps(self):
        assert text_to_integer("99999999999999999999999") == INT64_MAX
        assert text_to_integer("-99999999999999999999999") == INT64_MIN

    def test_text_to_real(self):
        assert text_to_real(" -2.5x") == -2.5

    def test_real_to_integer_truncates_toward_zero(self):
        assert real_to_integer(1.9) == 1
        assert real_to_integer(-1.9) == -1

    def test_real_to_integer_clamps_infinities(self):
        assert real_to_integer(float("inf")) == INT64_MAX
        assert real_to_integer(float("-inf")) == INT64_MIN

    def test_real_to_integer_nan(self):
        assert real_to_integer(float("nan")) == 0


class TestFormatReal:
    """format_real matches SQLite's %!.15g (validated against 3.40)."""

    @pytest.mark.parametrize("value,expected", [
        (0.0, "0.0"),
        (-0.0, "0.0"),
        (100.0, "100.0"),
        (0.1, "0.1"),
        (1e14, "100000000000000.0"),
        (1e15, "1.0e+15"),
        (9e99, "9.0e+99"),
        (1e-5, "1.0e-05"),
        (2.5e-10, "2.5e-10"),
        (123456789012345.0, "123456789012345.0"),
        (1234567890123456.0, "1.23456789012346e+15"),
        (3.141592653589793, "3.14159265358979"),
        (float("inf"), "Inf"),
        (float("-inf"), "-Inf"),
    ])
    def test_format(self, value, expected):
        assert format_real(value) == expected


class TestCollations:
    def test_binary_is_bytewise(self):
        assert collate_binary("a", "b") < 0
        assert collate_binary("a", "A") > 0  # 'a' > 'A' in bytes

    def test_nocase_folds_ascii_only(self):
        assert collate_nocase("ABC", "abc") == 0
        assert collate_nocase("A", "b") < 0

    def test_rtrim_ignores_trailing_spaces_only(self):
        assert collate_rtrim("a  ", "a") == 0
        assert collate_rtrim("  a", "a") != 0

    def test_get_collation_case_insensitive_name(self):
        assert get_collation("nocase")("X", "x") == 0

    def test_get_collation_unknown(self):
        with pytest.raises(KeyError):
            get_collation("nosuch")

    def test_compare_blobs(self):
        assert compare_blobs(b"a", b"ab") < 0
        assert compare_blobs(b"b", b"a") > 0
        assert compare_blobs(b"", b"") == 0


class TestCompareNumbers:
    def test_exact_large_ints(self):
        # Would be equal after float rounding; must stay distinct.
        a = 2**62 + 1
        b = 2**62
        assert compare_numbers(a, b) > 0

    def test_int_float_cross(self):
        assert compare_numbers(1, 1.0) == 0
        assert compare_numbers(1, 1.5) < 0

    def test_bools_coerce(self):
        assert compare_numbers(True, 1) == 0
        assert compare_numbers(False, 1) < 0

    def test_nan_orders_lowest(self):
        assert compare_numbers(float("nan"), -math.inf) < 0
        assert compare_numbers(float("nan"), float("nan")) == 0
