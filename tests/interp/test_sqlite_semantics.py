"""Exact SQLite semantics, including the paper's expression-level bugs.

Every expectation in this file was validated against a real SQLite 3.40
build (see also test_sqlite_differential.py for the randomized check).
"""

import pytest

from repro.values import SQLType

from .helpers import ev, ev_value


class TestBooleanContext:
    @pytest.mark.parametrize("sql,expected", [
        ("NOT 1", 0), ("NOT 0", 1), ("NOT NULL", None),
        ("NOT 0.5", 0), ("NOT 'abc'", 1), ("NOT '1abc'", 0),
        ("NOT X'61'", 1),
        ("5 AND 3", 1), ("5 AND 0", 0), ("NULL AND 0", 0),
        ("NULL AND 1", None), ("NULL OR 1", 1), ("NULL OR 0", None),
    ])
    def test_values(self, sql, expected):
        assert ev(sql) == expected


class TestListing2Subtraction:
    def test_empty_string_minus_big_int_is_exact(self):
        # Paper Listing 2: '' - 2851427734582196970 must stay exact.
        assert ev("'' - 2851427734582196970") == -2851427734582196970

    def test_type_is_integer(self):
        assert ev_value("'' - 2851427734582196970").t is SQLType.INTEGER


class TestListing1IsNot:
    def test_null_is_not_one(self):
        assert ev("NULL IS NOT 1") == 1

    def test_null_is_null(self):
        assert ev("NULL IS NULL") == 1

    def test_is_two_valued(self):
        assert ev("NULL IS 1") == 0
        assert ev("1 IS 1") == 1


class TestArithmetic:
    @pytest.mark.parametrize("sql,expected", [
        ("'5abc' + 1", 6),
        ("1 / 0", None),
        ("1.0 / 0", None),
        ("5 / 2", 2),
        ("5.5 / 2", 2.75),
        ("-7 % 2", -1),
        ("7 % -2", 1),
        ("5.5 % 2", 1.0),
        ("'9e99' % 10", 9.0),
        ("5 % 0", None),
        ("9223372036854775807 + 1", 9.223372036854776e+18),
        ("- -9223372036854775808", 9.223372036854776e+18),
        ("X'6162' + 0", 0),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected

    def test_int_overflow_redone_in_doubles(self):
        # SQLite rounds operands and redoes the multiply in doubles.
        assert ev("87 * 2851427734582196970") == 87.0 * 2851427734582196970.0

    def test_nan_result_is_null(self):
        assert ev("('' + '9e999') * 0") is None


class TestBitwise:
    @pytest.mark.parametrize("sql,expected", [
        ("1 << 65", 0), ("-1 >> 100", -1), ("1 << -1", 0),
        ("5 & 3", 1), ("5 | 3", 7), ("~0", -1),
        ("'12' & 13", 12), ("NULL | 1", None),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestComparisons:
    @pytest.mark.parametrize("sql,expected", [
        ("1 < 'a'", 1),           # numbers sort before text
        ("'a' < X''", 1),         # text before blobs
        ("1 = 1.0", 1),
        ("'a' = 'A'", 0),
        ("'a' = 'A' COLLATE NOCASE", 1),
        ("('a  ' COLLATE RTRIM) = 'a'", 1),
        ("NULL = NULL", None),
        ("NULL != 1", None),
        ("'1.0' = 1", 0),         # no affinity: text vs number
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected

    def test_numeric_affinity_from_column(self):
        from repro.values import Value

        row = {"t0.c0": Value.integer(123)}
        from repro.minidb.parser import parse_expression
        from repro.interp import make_interpreter
        from repro.sqlast.nodes import BinaryNode, BinaryOp, ColumnNode, LiteralNode

        expr = BinaryNode(BinaryOp.EQ,
                          ColumnNode("t0", "c0", affinity="INTEGER"),
                          LiteralNode(Value.text("123")))
        out = make_interpreter("sqlite").evaluate(expr, row)
        assert out.v == 1

    def test_unary_plus_strips_affinity(self):
        from repro.interp import make_interpreter
        from repro.sqlast.nodes import (
            BinaryNode, BinaryOp, ColumnNode, LiteralNode, UnaryNode,
            UnaryOp)
        from repro.values import Value

        row = {"t0.c0": Value.integer(123)}
        expr = BinaryNode(
            BinaryOp.EQ,
            UnaryNode(UnaryOp.PLUS,
                      ColumnNode("t0", "c0", affinity="INTEGER")),
            LiteralNode(Value.text("123")))
        assert make_interpreter("sqlite").evaluate(expr, row).v == 0


class TestLikeGlob:
    @pytest.mark.parametrize("sql,expected", [
        ("'ABC' LIKE 'a%'", 1),
        ("12 LIKE '12'", 1),
        ("NULL LIKE 'a'", None),
        ("NULL LIKE X'41'", 0),    # BLOB operand forces 0, even vs NULL
        ("X'61' LIKE 'a'", 0),
        ("'abc' GLOB 'A*'", 0),    # GLOB is case-sensitive
        ("'abc' GLOB 'a*'", 1),
        ("'abc' NOT LIKE 'a%'", 0),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestCasts:
    @pytest.mark.parametrize("sql,expected", [
        ("CAST('12.9' AS INTEGER)", 12),
        ("CAST('9e99' AS INTEGER)", 9),
        ("CAST('  42' AS INTEGER)", 42),
        ("CAST(2.9 AS INTEGER)", 2),
        ("CAST(-2.9 AS INTEGER)", -2),
        ("CAST('abc' AS NUMERIC)", 0),
        ("CAST('5.0' AS NUMERIC)", 5),
        ("CAST(X'6162' AS NUMERIC)", 0),
        ("CAST(10000000000.0 AS NUMERIC)", 10000000000.0),
        ("CAST(12 AS TEXT)", "12"),
        ("CAST(1.5 AS TEXT)", "1.5"),
        ("CAST('ab' AS BLOB)", b"ab"),
        ("CAST(9e999 AS INTEGER)", 9223372036854775807),
    ])
    def test_cases(self, sql, expected):
        got = ev(sql)
        assert got == expected and type(got) is type(expected)

    def test_numeric_cast_noop_on_real(self):
        assert ev_value("CAST(10000000000.0 AS NUMERIC)").t is SQLType.REAL


class TestBetweenAndIn:
    @pytest.mark.parametrize("sql,expected", [
        ("5 BETWEEN 1 AND 10", 1),
        ("5 NOT BETWEEN 1 AND 10", 0),
        ("NULL BETWEEN 1 AND 2", None),
        ("5 BETWEEN NULL AND 4", 0),   # FALSE short-circuits the NULL
        ("1 IN (1, 2)", 1),
        ("1 IN (2, 3)", 0),
        ("1 IN (NULL, 2)", None),
        ("1 NOT IN (NULL, 2)", None),
        ("NULL IN (1)", None),
        ("1 IN (1.0)", 1),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected

    def test_in_ignores_item_affinity(self):
        # SQLite applies only the LHS affinity in IN comparisons.
        assert ev("0 IN (CAST(0 AS TEXT))") == 0


class TestCase_:
    @pytest.mark.parametrize("sql,expected", [
        ("CASE WHEN 1 THEN 'a' ELSE 'b' END", "a"),
        ("CASE WHEN 0 THEN 'a' ELSE 'b' END", "b"),
        ("CASE WHEN NULL THEN 'a' ELSE 'b' END", "b"),
        ("CASE WHEN 0 THEN 'a' END", None),
        ("CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END", "b"),
        ("CASE NULL WHEN NULL THEN 'a' ELSE 'b' END", "b"),  # = not IS
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestIsTrueFamily:
    @pytest.mark.parametrize("sql,expected", [
        ("NULL IS TRUE", 0), ("NULL IS NOT TRUE", 1),
        ("0.5 IS TRUE", 1), ("0 IS FALSE", 1), ("NULL IS FALSE", 0),
        ("'abc' IS TRUE", 0),
        ("1 ISNULL", 0), ("NULL ISNULL", 1), ("NULL NOTNULL", 0),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestConcat:
    def test_basic(self):
        assert ev("'a' || 'b'") == "ab"

    def test_numbers_become_text(self):
        assert ev("1 || 2.5") == "12.5"

    def test_null_propagates(self):
        assert ev("NULL || 'a'") is None

    def test_real_formatting_matches_sqlite(self):
        assert ev("'' || 9e99") == "9.0e+99"
        assert ev("'' || 1e14") == "100000000000000.0"
        assert ev("'' || -0.0") == "0.0"
