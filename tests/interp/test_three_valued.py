"""Exhaustive truth tables for the ternary logic layer.

SQL's three-valued logic is the foundation of rectification (Algorithm 3):
getting NULL propagation wrong would make the containment oracle unsound.
"""

import pytest

from repro.interp.base import t_and, t_not, t_or

T, F, N = True, False, None


class TestNot:
    @pytest.mark.parametrize("value,expected", [(T, F), (F, T), (N, N)])
    def test_table(self, value, expected):
        assert t_not(value) == expected


class TestAnd:
    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, F, F), (T, N, N),
        (F, T, F), (F, F, F), (F, N, F),
        (N, T, N), (N, F, F), (N, N, N),
    ])
    def test_table(self, a, b, expected):
        assert t_and(a, b) == expected

    def test_commutative(self):
        for a in (T, F, N):
            for b in (T, F, N):
                assert t_and(a, b) == t_and(b, a)


class TestOr:
    @pytest.mark.parametrize("a,b,expected", [
        (T, T, T), (T, F, T), (T, N, T),
        (F, T, T), (F, F, F), (F, N, N),
        (N, T, T), (N, F, N), (N, N, N),
    ])
    def test_table(self, a, b, expected):
        assert t_or(a, b) == expected

    def test_de_morgan(self):
        for a in (T, F, N):
            for b in (T, F, N):
                assert t_not(t_and(a, b)) == t_or(t_not(a), t_not(b))
                assert t_not(t_or(a, b)) == t_and(t_not(a), t_not(b))
