"""Tests for LIKE/GLOB pattern matching."""

import pytest

from repro.interp.patterns import glob_match, like_match


class TestLike:
    @pytest.mark.parametrize("text,pattern,expected", [
        ("abc", "abc", True),
        ("abc", "ABC", True),            # case-insensitive by default
        ("abc", "a%", True),
        ("abc", "%c", True),
        ("abc", "%b%", True),
        ("abc", "a_c", True),
        ("abc", "a_", False),
        ("", "%", True),
        ("", "_", False),
        ("abc", "", False),
        ("a%c", "a\\%c", False),         # no escape by default: \ literal
        ("abc", "%%%", True),
        ("ab", "a%b", True),             # % matches empty
        ("aXXb", "a%b", True),
        ("abc", "abc%", True),
    ])
    def test_default(self, text, pattern, expected):
        assert like_match(text, pattern) is expected

    def test_case_sensitive_mode(self):
        assert not like_match("abc", "ABC", case_sensitive=True)
        assert like_match("abc", "abc", case_sensitive=True)

    def test_escape_character(self):
        assert like_match("a%c", "a\\%c", escape="\\")
        assert not like_match("abc", "a\\%c", escape="\\")
        assert like_match("a_c", "a\\_c", escape="\\")

    def test_escape_of_escape(self):
        assert like_match("a\\c", "a\\\\c", escape="\\")

    def test_dangling_escape_matches_nothing(self):
        assert not like_match("a", "a\\", escape="\\")

    def test_unicode_not_folded(self):
        # SQLite folds ASCII only; non-ASCII is case-sensitive.
        assert not like_match("É", "é")


class TestGlob:
    @pytest.mark.parametrize("text,pattern,expected", [
        ("abc", "abc", True),
        ("abc", "ABC", False),           # GLOB is case-sensitive
        ("abc", "a*", True),
        ("abc", "*c", True),
        ("abc", "a?c", True),
        ("abc", "a?", False),
        ("abc", "[a-c]bc", True),
        ("abc", "[^a]bc", False),
        ("xbc", "[^a]bc", True),
        ("abc", "[abz]bc", True),
        ("-bc", "[a-]bc", True),         # trailing - is a literal
        ("]bc", "[]]bc", True),          # ] first in class is a literal
        ("abc", "[", False),             # unterminated class
        ("", "*", True),
        ("a*b", "a[*]b", True),
    ])
    def test_glob(self, text, pattern, expected):
        assert glob_match(text, pattern) is expected

    def test_star_backtracking(self):
        assert glob_match("aXbXc", "a*X*c")
        assert not glob_match("ab", "a*c")
