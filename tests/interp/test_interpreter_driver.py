"""Interpreter driver dispatch: environments, errors, and node wiring."""

import pytest

from repro.interp import make_interpreter
from repro.interp.base import EvalError
from repro.sqlast.nodes import (
    BinaryNode,
    BinaryOp,
    CaseNode,
    ColumnNode,
    Expr,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.values import NULL, Value

INTERP = make_interpreter("sqlite")


class TestEnvironment:
    def test_column_binding(self):
        expr = ColumnNode("t", "c")
        out = INTERP.evaluate(expr, {"t.c": Value.integer(9)})
        assert out.v == 9

    def test_unbound_column_raises(self):
        with pytest.raises(EvalError, match="unbound column"):
            INTERP.evaluate(ColumnNode("t", "nope"), {})

    def test_environment_not_mutated(self):
        env = {"t.c": Value.integer(1)}
        INTERP.evaluate(
            BinaryNode(BinaryOp.ADD, ColumnNode("t", "c"),
                       LiteralNode(Value.integer(1))), env)
        assert env == {"t.c": Value.integer(1)}


class TestDispatchErrors:
    def test_unknown_node_kind(self):
        with pytest.raises(EvalError, match="cannot evaluate"):
            INTERP.evaluate(Expr(), {})

    def test_evaluate_bool_matches_to_bool(self):
        assert INTERP.evaluate_bool(LiteralNode(Value.integer(5)),
                                    {}) is True
        assert INTERP.evaluate_bool(LiteralNode(Value.integer(0)),
                                    {}) is False
        assert INTERP.evaluate_bool(LiteralNode(NULL), {}) is None


class TestLogicalEvaluation:
    def test_and_evaluates_both_sides(self):
        # FALSE AND <unbound> raises: no short circuit over errors —
        # matching how the engine would also touch every row value.
        expr = BinaryNode(BinaryOp.AND,
                          LiteralNode(Value.integer(0)),
                          ColumnNode("t", "missing"))
        with pytest.raises(EvalError):
            INTERP.evaluate(expr, {})

    def test_nested_ternary_combination(self):
        # (NULL AND 0) OR 1 == TRUE
        inner = BinaryNode(BinaryOp.AND, LiteralNode(NULL),
                           LiteralNode(Value.integer(0)))
        expr = BinaryNode(BinaryOp.OR, inner,
                          LiteralNode(Value.integer(1)))
        assert INTERP.evaluate(expr, {}).v == 1


class TestCaseDispatch:
    def test_searched_case_skips_null_conditions(self):
        expr = CaseNode(None,
                        ((LiteralNode(NULL), LiteralNode(
                            Value.text("bad"))),
                         (LiteralNode(Value.integer(1)), LiteralNode(
                             Value.text("good")))),
                        None)
        assert INTERP.evaluate(expr, {}).v == "good"

    def test_case_operand_uses_equality_not_truthiness(self):
        expr = CaseNode(LiteralNode(Value.integer(0)),
                        ((LiteralNode(Value.integer(0)),
                          LiteralNode(Value.text("zero"))),),
                        LiteralNode(Value.text("other")))
        assert INTERP.evaluate(expr, {}).v == "zero"


class TestPostfixDispatch:
    @pytest.mark.parametrize("op,value,expected", [
        (PostfixOp.ISNULL, NULL, 1),
        (PostfixOp.ISNULL, Value.integer(0), 0),
        (PostfixOp.NOTNULL, NULL, 0),
        (PostfixOp.IS_TRUE, Value.integer(2), 1),
        (PostfixOp.IS_TRUE, NULL, 0),
        (PostfixOp.IS_NOT_FALSE, NULL, 1),
        (PostfixOp.IS_FALSE, Value.real(0.0), 1),
    ])
    def test_two_valued_results(self, op, value, expected):
        out = INTERP.evaluate(PostfixNode(op, LiteralNode(value)), {})
        assert out.v == expected


class TestFunctionCollationPlumbing:
    def test_min_uses_first_argument_collation(self):
        from repro.sqlast.nodes import CollateNode, FunctionNode

        expr = FunctionNode("MIN", (
            CollateNode(LiteralNode(Value.text("a")), "NOCASE"),
            LiteralNode(Value.text("A"))))
        # NOCASE tie -> last argument wins for MIN.
        assert INTERP.evaluate(expr, {}).v == "A"

    def test_min_binary_default(self):
        from repro.sqlast.nodes import FunctionNode

        expr = FunctionNode("MIN", (LiteralNode(Value.text("a")),
                                    LiteralNode(Value.text("A"))))
        assert INTERP.evaluate(expr, {}).v == "A"  # 'A' < 'a' in bytes
