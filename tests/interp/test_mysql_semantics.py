"""MySQL-style dialect semantics (see repro.interp.mysql_sem docstring
for the modeled fragment and documented simplifications)."""

import pytest

from repro.values import SQLType

from .helpers import ev, ev_value


class TestNullSafeEquals:
    """The <=> operator never returns NULL (paper Listing 12 context)."""

    @pytest.mark.parametrize("sql,expected", [
        ("NULL <=> NULL", 1),
        ("NULL <=> 1", 0),
        ("1 <=> 1", 1),
        ("1 <=> 2", 0),
        ("NOT (NULL <=> 2035382037)", 1),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "mysql") == expected


class TestImplicitConversion:
    @pytest.mark.parametrize("sql,expected", [
        ("'abc' = 0", 1),          # strings convert to numbers
        ("'1abc' = 1", 1),
        ("'a' = 'A'", 1),          # case-insensitive collation
        ("'0.5' = 0.5", 1),
        ("'abc' + 1", 1),
        ("NOT '0.5'", 0),          # 0.5 is truthy (the engine bug flips it)
        ("NOT 123", 0),
        ("NOT (NOT 123)", 1),      # correct double negation (Listing 13)
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "mysql") == expected


class TestArithmetic:
    @pytest.mark.parametrize("sql,expected", [
        ("5 / 2", 2.5),            # / is always approximate
        ("1 / 0", None),
        ("5 % 0", None),
        ("-7 % 2", -1),
        ("5.5 % 2", 1.5),          # fmod, unlike SQLite's integer %
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "mysql") == expected

    def test_bigint_overflow_is_error(self):
        # Integer results may extend into the unsigned 64-bit range
        # (MySQL's unsigned arithmetic), but not beyond it.
        assert ev("9223372036854775807 * 2", "mysql") == 2**64 - 2
        from repro.interp.base import EvalError

        with pytest.raises(EvalError, match="out of range"):
            ev("9223372036854775807 * 4", "mysql")


class TestUnsignedCast:
    def test_negative_reinterprets(self):
        assert ev("CAST(-1 AS UNSIGNED)", "mysql") == 2**64 - 1

    def test_rounds_not_truncates(self):
        assert ev("CAST(1.5 AS SIGNED)", "mysql") == 2
        assert ev("CAST(-1.5 AS SIGNED)", "mysql") == -2

    def test_unsigned_comparison(self):
        assert ev("CAST(-1 AS UNSIGNED) > 9223372036854775807",
                  "mysql") == 1

    def test_infinity_saturates(self):
        assert ev("CAST(9e999 AS UNSIGNED)", "mysql") == 2**64 - 1
        assert ev("CAST(-9e999 AS SIGNED)", "mysql") == -(2**63)


class TestFunctions:
    @pytest.mark.parametrize("sql,expected", [
        ("LEAST(3, 1, 2)", 1),
        ("GREATEST(3, 1, 2)", 3),
        ("LEAST(1, NULL)", None),      # MySQL: NULL poisons LEAST
        ("IFNULL(NULL, 5)", 5),
        ("NULLIF(1, 1)", None),
        ("NULLIF('a', 'A')", None),    # case-insensitive equality
        ("ABS(-3)", 3),
        ("LOWER('AbC')", "abc"),
        ("INSTR('abc', 'B')", 2),      # case-insensitive search
        ("COALESCE(NULL, NULL, 7)", 7),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "mysql") == expected


class TestStrings:
    def test_concat_via_pipes(self):
        # Modeled as PIPES_AS_CONCAT mode (documented simplification).
        assert ev("'a' || 'b'", "mysql") == "ab"

    def test_like_case_insensitive_with_backslash_escape(self):
        assert ev("'ABC' LIKE 'a%'", "mysql") == 1
        assert ev("'a%' LIKE 'a\\%'", "mysql") == 1
        assert ev("'ab' LIKE 'a\\%'", "mysql") == 0

    def test_glob_unsupported(self):
        from repro.interp.base import EvalError

        with pytest.raises(EvalError):
            ev("'a' GLOB 'a'", "mysql")


class TestNaNPolicy:
    def test_nan_collapses_to_null(self):
        assert ev("(1 / 0.0)", "mysql") is None  # div-by-zero first
        assert ev("('' + '9e999') * 0", "mysql") is None

    def test_fmod_of_infinity_is_null(self):
        assert ev("('' + '9e999') % 3", "mysql") is None


class TestTypes:
    def test_division_result_is_real(self):
        assert ev_value("4 / 2", "mysql").t is SQLType.REAL

    def test_comparison_result_is_integer(self):
        assert ev_value("1 < 2", "mysql").t is SQLType.INTEGER
