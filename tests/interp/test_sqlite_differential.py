"""Differential validation of the oracle against a real SQLite build.

This is the test behind the exactness claim DESIGN.md §4.4 makes: the
oracle interpreter matches the stdlib ``sqlite3`` engine on thousands of
random expressions from the modeled fragment.  A failure here means the
*oracle* is wrong — the one class of bug PQS cannot tolerate.
"""

import pytest

from support.diffharness import (
    ExprFuzzer,
    minimize_mismatch,
    oracle_result,
    run_differential,
    sqlite_result,
    values_match,
)


class TestDifferential:
    @pytest.mark.parametrize("seed", [11, 99, 777, 31337])
    def test_no_mismatches(self, seed):
        checked, mismatches = run_differential(4000, seed=seed, depth=3)
        assert checked > 3000, "too many discarded expressions"
        formatted = "\n".join(
            f"{kind}: {sql} oracle={exp!r} sqlite={got!r}"
            for kind, sql, exp, got in mismatches[:5])
        assert not mismatches, formatted

    def test_deeper_trees(self):
        checked, mismatches = run_differential(1500, seed=4242, depth=5)
        assert checked > 800
        assert not mismatches

    def test_fuzzer_is_deterministic(self):
        a = ExprFuzzer(3)
        b = ExprFuzzer(3)
        assert [a.expr(3) for _ in range(10)] == \
            [b.expr(3) for _ in range(10)]


class TestHarnessInternals:
    def test_values_match_type_strict(self):
        assert values_match(1, 1)
        assert not values_match(1, 1.0)
        assert values_match(float("nan"), float("nan"))

    def test_minimizer_returns_subtree(self):
        import sqlite3

        from repro.interp import make_interpreter
        from repro.sqlast.nodes import BinaryNode, BinaryOp, LiteralNode
        from repro.values import Value

        conn = sqlite3.connect(":memory:")
        interp = make_interpreter("sqlite")
        expr = BinaryNode(BinaryOp.ADD, LiteralNode(Value.integer(1)),
                          LiteralNode(Value.integer(2)))
        # No mismatch anywhere: minimizer returns the root unchanged.
        assert minimize_mismatch(conn, interp, expr) is expr

    def test_result_helpers(self):
        import sqlite3

        from repro.interp import make_interpreter
        from repro.sqlast.nodes import LiteralNode
        from repro.values import Value

        conn = sqlite3.connect(":memory:")
        interp = make_interpreter("sqlite")
        node = LiteralNode(Value.integer(7))
        assert oracle_result(interp, node) == (True, 7)
        assert sqlite_result(conn, node) == (True, 7)
