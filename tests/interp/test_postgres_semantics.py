"""PostgreSQL-style strict semantics.

The paper attributes the low PQS bug yield on PostgreSQL to its strict
typing (§5); these tests pin down exactly that strictness.
"""

import pytest

from repro.interp.base import EvalError
from repro.values import SQLType

from .helpers import ev, ev_value


class TestStrictBoolean:
    def test_integers_rejected_in_boolean_context(self):
        with pytest.raises(EvalError, match="must be type boolean"):
            ev("NOT 1", "postgres")

    def test_booleans_accepted(self):
        assert ev("NOT TRUE", "postgres") is False
        assert ev("NOT NULL", "postgres") is None

    def test_boolean_values_are_first_class(self):
        assert ev_value("TRUE AND FALSE", "postgres").t is SQLType.BOOLEAN


class TestStrictComparisons:
    def test_text_number_comparison_rejected(self):
        with pytest.raises(EvalError, match="operator does not exist"):
            ev("'1' = 1", "postgres")

    def test_boolean_number_comparison_rejected(self):
        with pytest.raises(EvalError, match="operator does not exist"):
            ev("TRUE = 1", "postgres")

    def test_same_type_ok(self):
        assert ev("'a' < 'b'", "postgres") is True
        assert ev("1 < 2.5", "postgres") is True
        assert ev("TRUE > FALSE", "postgres") is True

    def test_text_comparison_case_sensitive(self):
        assert ev("'a' = 'A'", "postgres") is False

    def test_null_safe_is(self):
        assert ev("NULL IS NOT 1", "postgres") is True

    def test_mysql_operator_rejected(self):
        with pytest.raises(EvalError):
            ev("1 <=> 1", "postgres")


class TestStrictArithmetic:
    def test_division_by_zero_is_error_not_null(self):
        with pytest.raises(EvalError, match="division by zero"):
            ev("1 / 0", "postgres")

    def test_integer_division_truncates(self):
        assert ev("5 / 2", "postgres") == 2
        assert ev("-5 / 2", "postgres") == -2

    def test_float_modulo_rejected(self):
        with pytest.raises(EvalError):
            ev("5.5 % 2", "postgres")

    def test_bigint_overflow(self):
        with pytest.raises(EvalError, match="out of range"):
            ev("9223372036854775807 + 1", "postgres")

    def test_text_arithmetic_rejected(self):
        with pytest.raises(EvalError):
            ev("'5' + 1", "postgres")


class TestCasts:
    def test_float_to_int_rounds_half_even(self):
        assert ev("CAST(0.5 AS INT)", "postgres") == 0
        assert ev("CAST(1.5 AS INT)", "postgres") == 2
        assert ev("CAST(2.5 AS INT)", "postgres") == 2

    def test_text_to_int_strict(self):
        assert ev("CAST('42' AS INT)", "postgres") == 42
        with pytest.raises(EvalError, match="invalid input syntax"):
            ev("CAST('4a' AS INT)", "postgres")

    def test_bool_casts(self):
        assert ev("CAST(TRUE AS INT)", "postgres") == 1
        assert ev("CAST(0 AS BOOLEAN)", "postgres") is False
        assert ev("CAST(TRUE AS TEXT)", "postgres") == "true"

    def test_blob_to_int_rejected(self):
        with pytest.raises(EvalError):
            ev("CAST(X'61' AS INT)", "postgres")


class TestFunctions:
    def test_least_greatest_ignore_nulls(self):
        # Opposite of MySQL: PostgreSQL skips NULL arguments.
        assert ev("LEAST(NULL, 5, 3)", "postgres") == 3
        assert ev("GREATEST(NULL, 5)", "postgres") == 5
        assert ev("LEAST(NULL, NULL)", "postgres") is None

    def test_lower_requires_text(self):
        with pytest.raises(EvalError):
            ev("LOWER(5)", "postgres")

    def test_length(self):
        assert ev("LENGTH('abc')", "postgres") == 3

    def test_abs_requires_number(self):
        with pytest.raises(EvalError):
            ev("ABS('x')", "postgres")


class TestStrings:
    def test_concat_requires_text(self):
        assert ev("'a' || 'b'", "postgres") == "ab"
        with pytest.raises(EvalError):
            ev("'a' || 1", "postgres")

    def test_like_case_sensitive(self):
        assert ev("'ABC' LIKE 'a%'", "postgres") is False
        assert ev("'abc' LIKE 'a%'", "postgres") is True

    def test_like_requires_text(self):
        with pytest.raises(EvalError):
            ev("1 LIKE '1'", "postgres")


class TestBetweenIn:
    def test_between_well_typed(self):
        assert ev("5 BETWEEN 1 AND 10", "postgres") is True

    def test_in_list(self):
        assert ev("1 IN (1, 2)", "postgres") is True
        assert ev("1 IN (NULL, 2)", "postgres") is None

    def test_is_true_family(self):
        assert ev("NULL IS TRUE", "postgres") is False
        assert ev("TRUE IS NOT FALSE", "postgres") is True
