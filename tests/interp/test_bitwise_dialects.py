"""Bitwise operator semantics per dialect (SQLite exact; MySQL unsigned;
PostgreSQL strict int8)."""

import pytest

from repro.interp.base import EvalError

from .helpers import ev


class TestSQLiteBitwise:
    @pytest.mark.parametrize("sql,expected", [
        ("6 & 3", 2), ("6 | 3", 7), ("~5", -6),
        ("'6abc' & 7", 6),               # text casts via digit prefix
        ("2.9 & 3", 2),                  # real truncates toward zero
        ("1 << 62", 2**62),
        ("1 << 63", -(2**63)),           # wraps into the sign bit
        ("-1 >> 1", -1),                 # arithmetic shift
        ("NULL & 1", None),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "sqlite") == expected


class TestMySQLBitwise:
    @pytest.mark.parametrize("sql,expected", [
        ("6 & 3", 2),
        ("~0", 2**64 - 1),               # unsigned 64-bit complement
        ("-1 >> 1", 2**63 - 1),          # logical shift on unsigned
        ("1 << 64", 0),
        ("NULL | 1", None),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql, "mysql") == expected


class TestPostgresBitwise:
    def test_int_only(self):
        assert ev("6 & 3", "postgres") == 2
        assert ev("~5", "postgres") == -6
        with pytest.raises(EvalError):
            ev("1.5 & 1", "postgres")
        with pytest.raises(EvalError):
            ev("'6' | 1", "postgres")

    def test_shift_count_wraps_mod_64(self):
        assert ev("1 << 64", "postgres") == 1
        assert ev("1 << 65", "postgres") == 2

    def test_null_propagates(self):
        assert ev("NULL & 1", "postgres") is None
