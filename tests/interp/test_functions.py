"""SQLite scalar functions (validated against SQLite 3.40)."""

import pytest

from repro.interp.base import EvalError
from repro.values import SQLType

from .helpers import ev, ev_value


class TestTypeof:
    @pytest.mark.parametrize("sql,expected", [
        ("TYPEOF(NULL)", "null"), ("TYPEOF(1)", "integer"),
        ("TYPEOF(1.0)", "real"), ("TYPEOF('a')", "text"),
        ("TYPEOF(X'61')", "blob"),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestNullHandling:
    @pytest.mark.parametrize("sql,expected", [
        ("COALESCE(NULL, 1)", 1),
        ("COALESCE(NULL, NULL, 'x')", "x"),
        ("IFNULL(NULL, 2)", 2),
        ("IFNULL(3, 2)", 3),
        ("NULLIF(1, 1)", None),
        ("NULLIF(1, 2)", 1),
        ("NULLIF(NULL, 1)", None),
        ("NULLIF(1, NULL)", 1),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestScalarMinMax:
    def test_basic(self):
        assert ev("MIN(3, 1, 2)") == 1
        assert ev("MAX(3, 1, 2)") == 3

    def test_null_poisons(self):
        assert ev("MIN(1, NULL)") is None

    def test_cross_type_ordering(self):
        assert ev("MIN(X'', 'z')") == "z"   # text sorts before blob

    def test_min_tie_keeps_last_max_keeps_first(self):
        # SQLite's (cmp ^ mask) >= 0 update rule.
        assert ev_value("MIN(0, 0.0)").t is SQLType.REAL
        assert ev_value("MAX(0, 0.0)").t is SQLType.INTEGER

    def test_collation_of_first_argument(self):
        assert ev("MIN('a' COLLATE NOCASE, 'A')") == "A"
        assert ev("MAX('a', 'A' COLLATE NOCASE)") == "a"


class TestAbsLength:
    def test_abs_integer(self):
        assert ev("ABS(-5)") == 5

    def test_abs_text_is_real(self):
        got = ev_value("ABS('380')")
        assert got.t is SQLType.REAL and got.v == 380.0

    def test_abs_blob_is_zero_real(self):
        assert ev("ABS(X'6162')") == 0.0

    def test_abs_int64_min_overflows(self):
        with pytest.raises(EvalError, match="integer overflow"):
            ev("ABS(-9223372036854775808)")

    def test_length(self):
        assert ev("LENGTH('abc')") == 3
        assert ev("LENGTH(X'414243')") == 3
        assert ev("LENGTH(12.5)") == 4
        assert ev("LENGTH(NULL)") is None


class TestCase_Functions:
    def test_upper_lower_ascii_only(self):
        assert ev("UPPER('abÿ')") == "ABÿ"
        assert ev("LOWER('ABÿ')") == "abÿ"


class TestTrim:
    def test_default_space(self):
        assert ev("TRIM('  a  ')") == "a"
        assert ev("LTRIM('  a  ')") == "a  "
        assert ev("RTRIM('  a  ')") == "  a"

    def test_char_set(self):
        assert ev("TRIM('xxaxx', 'x')") == "a"
        assert ev("LTRIM('xya', 'yx')") == "a"

    def test_null_charset(self):
        assert ev("TRIM('a', NULL)") is None


class TestSubstr:
    @pytest.mark.parametrize("sql,expected", [
        ("SUBSTR('hello', 2)", "ello"),
        ("SUBSTR('hello', 2, 2)", "el"),
        ("SUBSTR('hello', -2)", "lo"),
        ("SUBSTR('hello', 0)", "hello"),
        ("SUBSTR('hello', 0, 3)", "he"),
        ("SUBSTR('hello', 3, -2)", "he"),
        ("SUBSTR('hello', -2, -2)", "el"),
        ("SUBSTR('abc', -5, 3)", "a"),    # overshoot reduces length
        ("SUBSTR('hello', 3, 0)", ""),
        ("SUBSTR('', 1, 1)", ""),
        ("SUBSTR(X'', 1, 1)", None),       # empty blob -> NULL
        ("SUBSTR(X'616263', -2, -2)", b"a"),
        ("SUBSTR(X'0001', 1, 1)", b"\x00"),
        ("SUBSTR('hello', NULL)", None),
        ("SUBSTR(-1.5, 1, 2)", "-1"),
    ])
    def test_cases(self, sql, expected):
        assert ev(sql) == expected


class TestInstrHexRound:
    def test_instr(self):
        assert ev("INSTR('abc', 'b')") == 2
        assert ev("INSTR('abc', 'z')") == 0
        assert ev("INSTR(NULL, 'a')") is None

    def test_hex(self):
        assert ev("HEX(X'00FF')") == "00FF"
        assert ev("HEX('ab')") == "6162"
        assert ev("HEX(12)") == "3132"
        assert ev("HEX(NULL)") == ""

    def test_round_zero_digits(self):
        assert ev("ROUND(2.5)") == 3.0
        assert ev("ROUND(-2.5)") == -3.0
        assert ev("ROUND(2)") == 2.0

    def test_round_decimal_correction(self):
        # 0.15 in binary is just below 0.15; SQLite still rounds up
        # because its printf works on the 15-digit decimal rendering.
        assert ev("ROUND(0.15, 1)") == 0.2
        assert ev("ROUND(1.005, 2)") == 1.01

    def test_round_null(self):
        assert ev("ROUND(NULL)") is None

    def test_round_huge_value_unchanged(self):
        assert ev("ROUND(9e99, 2)") == 9e99


class TestArity:
    def test_unknown_function(self):
        with pytest.raises(EvalError, match="no such function"):
            ev("NOSUCHFN(1)")

    def test_wrong_arity(self):
        with pytest.raises(EvalError, match="wrong number of arguments"):
            ev("ABS(1, 2)")
