"""Static affinity/collation analysis (SQLite comparison rules)."""

import pytest

from repro.interp.base import (
    affinity_of_type_name,
    comparison_collation,
    expr_affinity,
    expr_collation,
)
from repro.sqlast.nodes import (
    CastNode,
    CollateNode,
    ColumnNode,
    LiteralNode,
    UnaryNode,
    UnaryOp,
)
from repro.values import Value

LIT = LiteralNode(Value.integer(1))
INT_COL = ColumnNode("t", "a", affinity="INTEGER")
TEXT_COL = ColumnNode("t", "b", affinity="TEXT", collation="NOCASE")


class TestAffinityOfTypeName:
    @pytest.mark.parametrize("type_name,expected", [
        ("INT", "INTEGER"), ("INTEGER", "INTEGER"), ("BIGINT", "INTEGER"),
        ("TINYINT UNSIGNED", "INTEGER"),
        ("CHARACTER(20)", "TEXT"), ("VARCHAR", "TEXT"), ("CLOB", "TEXT"),
        ("TEXT", "TEXT"),
        ("BLOB", "BLOB"), ("", "BLOB"),
        ("REAL", "REAL"), ("DOUBLE PRECISION", "REAL"), ("FLOAT", "REAL"),
        ("NUMERIC", "NUMERIC"), ("DECIMAL(10,5)", "NUMERIC"),
        ("BOOLEAN", "NUMERIC"), ("DATE", "NUMERIC"),
        # SQLite's documented gotcha: FLOATING POINT has INT affinity.
        ("FLOATING POINT", "INTEGER"),
    ])
    def test_mapping(self, type_name, expected):
        assert affinity_of_type_name(type_name) == expected


class TestExprAffinity:
    def test_column_carries_its_affinity(self):
        assert expr_affinity(INT_COL) == "INTEGER"

    def test_literal_has_none(self):
        assert expr_affinity(LIT) is None

    def test_cast_imposes_target_affinity(self):
        assert expr_affinity(CastNode(LIT, "TEXT")) == "TEXT"

    def test_collate_is_transparent(self):
        assert expr_affinity(CollateNode(INT_COL, "BINARY")) == "INTEGER"

    def test_unary_plus_strips_affinity(self):
        assert expr_affinity(UnaryNode(UnaryOp.PLUS, INT_COL)) is None

    def test_other_operators_have_none(self):
        assert expr_affinity(UnaryNode(UnaryOp.MINUS, INT_COL)) is None


class TestExprCollation:
    def test_explicit_collate_wins(self):
        name, explicit = expr_collation(CollateNode(TEXT_COL, "RTRIM"))
        assert name == "RTRIM" and explicit

    def test_column_collation_is_implicit(self):
        name, explicit = expr_collation(TEXT_COL)
        assert name == "NOCASE" and not explicit

    def test_literal_has_none(self):
        assert expr_collation(LIT) == (None, False)

    def test_comparison_collation_prefers_explicit(self):
        assert comparison_collation(TEXT_COL,
                                    CollateNode(LIT, "RTRIM")) == "RTRIM"

    def test_comparison_collation_left_implicit_first(self):
        other = ColumnNode("t", "c", collation="RTRIM")
        assert comparison_collation(TEXT_COL, other) == "NOCASE"

    def test_comparison_collation_default_binary(self):
        assert comparison_collation(LIT, LIT) == "BINARY"
