"""Helpers to evaluate SQL expression text through the oracle interpreter."""

from __future__ import annotations

from repro.interp import make_interpreter
from repro.minidb.parser import parse_expression
from repro.values import Value

_INTERPRETERS = {name: make_interpreter(name)
                 for name in ("sqlite", "mysql", "postgres")}


def ev(sql: str, dialect: str = "sqlite", row: dict | None = None):
    """Parse and evaluate an expression; returns the plain Python value."""
    expr = parse_expression(sql)
    env = {}
    for key, value in (row or {}).items():
        env[key] = value if isinstance(value, Value) else \
            Value.from_python(value)
    out = _INTERPRETERS[dialect].evaluate(expr, env)
    return None if out.is_null else out.v


def ev_value(sql: str, dialect: str = "sqlite"):
    """Like :func:`ev` but returns the full Value (type inspection)."""
    expr = parse_expression(sql)
    return _INTERPRETERS[dialect].evaluate(expr, {})
