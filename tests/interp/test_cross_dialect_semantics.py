"""Cross-dialect semantic deltas, pinned pairwise.

The paper's Table 1 targets differ in exactly these behaviours; each test
documents one delta the dialect-specific oracles must preserve.
"""

import pytest

from repro.interp.base import EvalError

from .helpers import ev


class TestDivision:
    def test_sqlite_truncates(self):
        assert ev("7 / 2", "sqlite") == 3

    def test_mysql_decimal(self):
        assert ev("7 / 2", "mysql") == 3.5

    def test_postgres_truncates(self):
        assert ev("7 / 2", "postgres") == 3

    def test_division_by_zero_triptych(self):
        assert ev("7 / 0", "sqlite") is None
        assert ev("7 / 0", "mysql") is None
        with pytest.raises(EvalError):
            ev("7 / 0", "postgres")


class TestStringEquality:
    def test_sqlite_binary_default(self):
        assert ev("'a' = 'A'", "sqlite") == 0

    def test_mysql_case_insensitive(self):
        assert ev("'a' = 'A'", "mysql") == 1

    def test_postgres_binary(self):
        assert ev("'a' = 'A'", "postgres") is False


class TestImplicitConversion:
    def test_text_number_comparison(self):
        assert ev("'1' = 1", "sqlite") == 0     # no affinity on literals
        assert ev("'1' = 1", "mysql") == 1      # numeric coercion
        with pytest.raises(EvalError):
            ev("'1' = 1", "postgres")           # operator does not exist

    def test_boolean_context(self):
        assert ev("NOT 'abc'", "sqlite") == 1
        assert ev("NOT 'abc'", "mysql") == 1
        with pytest.raises(EvalError):
            ev("NOT 'abc'", "postgres")


class TestLeastGreatestNulls:
    def test_mysql_null_poisons(self):
        assert ev("LEAST(1, NULL)", "mysql") is None

    def test_postgres_ignores_nulls(self):
        assert ev("LEAST(1, NULL)", "postgres") == 1

    def test_sqlite_min_null_poisons(self):
        assert ev("MIN(1, NULL)", "sqlite") is None


class TestLikeCaseSensitivity:
    def test_triptych(self):
        assert ev("'ABC' LIKE 'abc'", "sqlite") == 1
        assert ev("'ABC' LIKE 'abc'", "mysql") == 1
        assert ev("'ABC' LIKE 'abc'", "postgres") is False


class TestBooleanRepresentation:
    def test_comparison_result_types(self):
        from repro.values import SQLType

        from .helpers import ev_value

        assert ev_value("1 < 2", "sqlite").t is SQLType.INTEGER
        assert ev_value("1 < 2", "mysql").t is SQLType.INTEGER
        assert ev_value("1 < 2", "postgres").t is SQLType.BOOLEAN


class TestNullSafeOperators:
    def test_spaceship_mysql_only(self):
        assert ev("NULL <=> NULL", "mysql") == 1
        with pytest.raises(EvalError):
            ev("NULL <=> NULL", "postgres")

    def test_is_across_dialects(self):
        assert ev("NULL IS NOT 1", "sqlite") == 1
        assert ev("NULL IS NOT 1", "mysql") == 1
        assert ev("NULL IS NOT 1", "postgres") is True
