"""The metrics registry: thread safety, percentiles, export fidelity."""

import json
import threading

import pytest

from repro.telemetry import names
from repro.telemetry.registry import (
    RESERVOIR_CAP,
    MetricsRegistry,
    NullRegistry,
)


class TestCounterAndGauge:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_same_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", kind="a") \
            is registry.counter("c", kind="a")
        assert registry.counter("c", kind="a") \
            is not registry.counter("c", kind="b")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(-3.0)
        assert gauge.value == 7.0

    def test_family_value_sums_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("e", kind="a").inc(2)
        registry.counter("e", kind="b").inc(3)
        assert registry.value("e") == 5

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hot")
        histogram = registry.histogram("lat")

        def worker():
            for i in range(2000):
                counter.inc()
                histogram.observe(i / 1000.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 16000
        assert histogram.count == 16000

    def test_concurrent_instrument_resolution(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            for _ in range(200):
                seen.append(registry.counter("same"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(id(c) for c in seen)) == 1


class TestHistogramMath:
    def test_moments_exact(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.0)
        assert histogram.mean == pytest.approx(5.0 / 3.0)

    def test_percentiles_exact_before_decimation(self):
        histogram = MetricsRegistry().histogram("h")
        for i in range(1, 101):  # 1..100 ms
            histogram.observe(i / 1000.0)
        assert histogram.percentile(0) == pytest.approx(0.001)
        assert histogram.percentile(100) == pytest.approx(0.100)
        assert histogram.percentile(50) == pytest.approx(0.0505)
        # Linear interpolation between ranks 94 and 95 (0-based).
        assert histogram.percentile(95) == pytest.approx(0.09505)

    def test_empty_percentile_is_zero(self):
        assert MetricsRegistry().histogram("h").percentile(99) == 0.0

    def test_reservoir_decimation_bounds_memory(self):
        histogram = MetricsRegistry().histogram("h")
        n = RESERVOIR_CAP * 4
        for i in range(n):
            histogram.observe(i / n)
        state = histogram.to_json()
        assert state["count"] == n
        assert len(state["samples"]) < RESERVOIR_CAP
        assert state["stride"] > 1
        # Percentiles stay sane on the decimated reservoir.
        assert 0.4 < histogram.percentile(50) < 0.6

    def test_bucket_counts_cumulate_correctly(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="10"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text


class TestExport:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter(names.QUERIES).inc(7)
        registry.counter(names.EXPECTED_ERRORS, kind="INSERT").inc(2)
        registry.gauge("depth").set(3.5)
        histogram = registry.histogram(names.PHASE_SECONDS,
                                       phase="containment")
        for value in (0.001, 0.002, 0.04):
            histogram.observe(value)
        return registry

    def test_json_snapshot_round_trip(self):
        registry = self.build()
        snapshot = registry.snapshot()
        # Snapshot is pure JSON.
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snapshot)))
        assert restored.snapshot() == snapshot
        assert restored.to_prometheus() == registry.to_prometheus()

    def test_merge_snapshot_sums(self):
        a, b = self.build(), self.build()
        a.merge_snapshot(b.snapshot())
        assert a.value(names.QUERIES) == 14
        merged = a.histogram(names.PHASE_SECONDS, phase="containment")
        assert merged.count == 6
        assert merged.sum == pytest.approx(2 * (0.001 + 0.002 + 0.04))

    def test_prometheus_format_shape(self):
        text = self.build().to_prometheus()
        assert "# TYPE pqs_queries_total counter" in text
        assert "pqs_queries_total 7" in text
        assert 'pqs_expected_errors_total{kind="INSERT"} 2' in text
        assert "# TYPE pqs_phase_seconds histogram" in text
        assert 'pqs_phase_seconds_count{phase="containment"} 3' in text
        assert text.endswith("\n")

    def test_labels_render_sorted_and_quoted(self):
        registry = MetricsRegistry()
        registry.counter("c", b="2", a="1").inc()
        assert 'c{a="1",b="2"} 1' in registry.to_prometheus()


class TestNullRegistry:
    def test_shared_noop_instruments(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        registry.counter("a").inc()
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.counter("a").value == 0
        assert registry.snapshot() == {}
        assert registry.to_prometheus() == ""
        assert not registry.enabled
