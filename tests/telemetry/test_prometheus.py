"""Prometheus text exposition conformance for ``to_prometheus()``.

Audited against the exposition-format spec (version 0.0.4): HELP
before TYPE per family, escaped label values and help text, cumulative
histogram buckets ending in ``+Inf``, ``_sum``/``_count`` series,
non-finite renderings, and the trailing newline scrapers require.
"""

from repro.telemetry import MetricsRegistry, names


def lines_of(registry):
    text = registry.to_prometheus()
    assert text == "" or text.endswith("\n")
    return text.splitlines()


class TestFamilies:
    def test_help_precedes_type(self):
        registry = MetricsRegistry()
        registry.counter(names.ROUNDS).inc()
        lines = lines_of(registry)
        assert lines[0] == f"# HELP {names.ROUNDS} {names.HELP[names.ROUNDS]}"
        assert lines[1] == f"# TYPE {names.ROUNDS} counter"
        assert lines[2] == f"{names.ROUNDS} 1"

    def test_unknown_metric_gets_type_but_no_help(self):
        registry = MetricsRegistry()
        registry.gauge("pqs_custom_thing").set(3)
        lines = lines_of(registry)
        assert lines[0] == "# TYPE pqs_custom_thing gauge"
        assert not any(line.startswith("# HELP") for line in lines)

    def test_one_type_line_per_family(self):
        registry = MetricsRegistry()
        registry.counter(names.REPORTS, oracle="error").inc()
        registry.counter(names.REPORTS, oracle="contains").inc(2)
        lines = lines_of(registry)
        type_lines = [l for l in lines if l.startswith("# TYPE")]
        assert type_lines == [f"# TYPE {names.REPORTS} counter"]
        assert f'{names.REPORTS}{{oracle="contains"}} 2' in lines
        assert f'{names.REPORTS}{{oracle="error"}} 1' in lines

    def test_families_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("pqs_zzz").inc()
        registry.counter("pqs_aaa").inc()
        lines = lines_of(registry)
        assert lines.index("# TYPE pqs_aaa counter") < \
            lines.index("# TYPE pqs_zzz counter")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestEscaping:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("pqs_esc", detail='say "hi"\nback\\slash').inc()
        body = registry.to_prometheus()
        assert ('pqs_esc{detail="say \\"hi\\"\\nback\\\\slash"} 1'
                in body)

    def test_label_order_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("pqs_lbl", b="2", a="1").inc()
        assert 'pqs_lbl{a="1",b="2"} 1' in registry.to_prometheus()


class TestHistograms:
    def test_buckets_cumulative_with_inf_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("pqs_h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        lines = lines_of(registry)
        assert 'pqs_h_bucket{le="0.1"} 1' in lines
        assert 'pqs_h_bucket{le="1"} 3' in lines
        assert 'pqs_h_bucket{le="+Inf"} 4' in lines
        assert "pqs_h_sum 6.05" in lines
        assert "pqs_h_count 4" in lines
        # +Inf bucket must equal the count series — scrapers divide.
        inf = [l for l in lines if 'le="+Inf"' in l][0]
        assert inf.rsplit(" ", 1)[1] == "4"

    def test_histogram_labels_merge_with_le(self):
        registry = MetricsRegistry()
        registry.histogram(names.PHASE_SECONDS,
                           phase="pivot_select").observe(0.002)
        body = registry.to_prometheus()
        assert f'{names.PHASE_SECONDS}_bucket{{le="+Inf",' \
            f'phase="pivot_select"}} 1' in body
        assert f'{names.PHASE_SECONDS}_count{{phase="pivot_select"}} 1' \
            in body


class TestValueRendering:
    def test_non_finite_values(self):
        registry = MetricsRegistry()
        registry.gauge("pqs_inf").set(float("inf"))
        registry.gauge("pqs_ninf").set(float("-inf"))
        registry.gauge("pqs_nan").set(float("nan"))
        lines = lines_of(registry)
        assert "pqs_inf +Inf" in lines
        assert "pqs_ninf -Inf" in lines
        assert "pqs_nan NaN" in lines

    def test_integral_floats_render_without_dot(self):
        registry = MetricsRegistry()
        registry.gauge("pqs_g").set(4.0)
        assert "pqs_g 4" in lines_of(registry)

    def test_fractional_floats_keep_precision(self):
        registry = MetricsRegistry()
        registry.gauge("pqs_g").set(0.1)
        assert "pqs_g 0.1" in lines_of(registry)
