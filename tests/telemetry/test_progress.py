"""The live progress line."""

import io
import time

from repro.telemetry import MetricsRegistry, ProgressReporter, names
from repro.telemetry.progress import _fmt_duration


def registry_with(rounds=0, reports=0, statements=0, queries=0):
    registry = MetricsRegistry()
    registry.counter(names.ROUNDS).inc(rounds)
    registry.counter(names.REPORTS, oracle="error").inc(reports)
    registry.counter(names.STATEMENTS).inc(statements)
    registry.counter(names.QUERIES).inc(queries)
    return registry


class TestRenderLine:
    def test_line_contents(self):
        reporter = ProgressReporter(
            registry_with(rounds=3, reports=2, statements=40, queries=25),
            total_rounds=10, stream=io.StringIO())
        line = reporter.render_line()
        assert line.startswith("[pqs] round 3/10 (30%)")
        assert "reports 2" in line
        assert "40 stmts, 25 queries" in line
        assert "q/s" in line
        assert "ETA" in line

    def test_no_eta_before_first_round(self):
        reporter = ProgressReporter(registry_with(), total_rounds=10,
                                    stream=io.StringIO())
        assert "ETA" not in reporter.render_line()

    def test_unknown_total_omits_fraction(self):
        reporter = ProgressReporter(registry_with(rounds=4),
                                    total_rounds=0, stream=io.StringIO())
        line = reporter.render_line()
        assert "round 4 " in line and "/" not in line.split("|")[0]

    def test_reports_sum_across_oracle_labels(self):
        registry = registry_with(reports=1)
        registry.counter(names.REPORTS, oracle="contains").inc(2)
        reporter = ProgressReporter(registry, total_rounds=5,
                                    stream=io.StringIO())
        assert "reports 3" in reporter.render_line()


class TestSettledRounds:
    def test_quarantined_rounds_count_toward_done(self):
        # A poison round never completes; without counting quarantine
        # the line would stall at 80% with ETA forever.
        registry = registry_with(rounds=8)
        registry.counter(names.SUPERVISOR_QUARANTINED).inc(2)
        reporter = ProgressReporter(registry, total_rounds=10,
                                    stream=io.StringIO())
        line = reporter.render_line()
        assert "round 10/10 (100%)" in line
        assert "quarantined 2" in line
        assert "ETA 0s" in line

    def test_duplicate_reruns_never_exceed_total(self):
        # Work stealing can run a round twice; the counter sees both.
        registry = registry_with(rounds=12)
        reporter = ProgressReporter(registry, total_rounds=10,
                                    stream=io.StringIO())
        line = reporter.render_line()
        assert "round 10/10 (100%)" in line
        assert "103%" not in line and "120%" not in line

    def test_counts_callable_overrides_registry(self):
        # Parallel hunts: workers count in private registries, so the
        # shared one reads zero — the observatory's queue counts win.
        registry = registry_with(rounds=0, queries=30)
        reporter = ProgressReporter(registry, total_rounds=10,
                                    stream=io.StringIO(),
                                    counts=lambda: (4, 1))
        line = reporter.render_line()
        assert "round 5/10 (50%)" in line
        assert "quarantined 1" in line

    def test_counts_callable_also_clamped(self):
        reporter = ProgressReporter(registry_with(), total_rounds=10,
                                    stream=io.StringIO(),
                                    counts=lambda: (11, 2))
        assert "round 10/10 (100%)" in reporter.render_line()


class TestReporterThread:
    def test_periodic_lines_then_final(self):
        stream = io.StringIO()
        registry = registry_with(rounds=1, statements=10, queries=5)
        reporter = ProgressReporter(registry, total_rounds=2,
                                    interval=0.05, stream=stream)
        reporter.start()
        time.sleep(0.2)
        registry.counter(names.ROUNDS).inc()
        reporter.stop()
        lines = stream.getvalue().splitlines()
        assert len(lines) >= 2, "periodic ticks plus the final line"
        assert "round 2/2 (100%)" in lines[-1]

    def test_context_manager(self):
        stream = io.StringIO()
        with ProgressReporter(registry_with(rounds=1), total_rounds=1,
                              interval=5.0, stream=stream):
            pass
        assert stream.getvalue().count("\n") == 1  # just the final line

    def test_closed_stream_does_not_raise(self):
        stream = io.StringIO()
        reporter = ProgressReporter(registry_with(), total_rounds=1,
                                    interval=0.02, stream=stream)
        reporter.start()
        stream.close()
        time.sleep(0.1)
        reporter._stop.wait(0.5)
        assert reporter._stop.is_set(), \
            "reporter must shut itself down when the stream goes away"
        reporter.stop(final_line=False)


class TestDurationFormat:
    def test_ranges(self):
        assert _fmt_duration(12.4) == "12s"
        assert _fmt_duration(75) == "1m15s"
        assert _fmt_duration(3720) == "1h02m"
        assert _fmt_duration(-3) == "0s"
