"""The span tracer and the JSONL sink."""

import json
import threading

from repro.telemetry import (
    JsonlSink,
    ListSink,
    NullTracer,
    Telemetry,
    Tracer,
)
from repro.telemetry.registry import MetricsRegistry, NullRegistry


class TestSpans:
    def test_span_records_name_duration_attrs(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("stategen", dialect="sqlite"):
            pass
        (event,) = sink.events
        assert event["name"] == "stategen"
        assert event["kind"] == "span"
        assert event["dur"] >= 0
        assert event["attrs"] == {"dialect": "sqlite"}

    def test_spans_emit_in_close_order(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("round"):
            with tracer.span("stategen"):
                pass
            with tracer.span("containment"):
                pass
        names = [e["name"] for e in sink.events]
        assert names == ["stategen", "containment", "round"]
        assert [e["seq"] for e in sink.events] == [0, 1, 2]

    def test_nested_span_times_nest(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.events
        assert outer["t"] <= inner["t"]
        assert outer["dur"] >= inner["dur"]

    def test_exception_is_recorded_and_propagates(self):
        sink = ListSink()
        tracer = Tracer(sink)
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (event,) = sink.events
        assert event["attrs"]["error"] == "ValueError"

    def test_mid_span_attributes(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("q") as span:
            span.set("oracle", "contains")
        assert sink.events[0]["attrs"]["oracle"] == "contains"

    def test_instant_events(self):
        sink = ListSink()
        tracer = Tracer(sink)
        tracer.event("report", oracle="error")
        (event,) = sink.events
        assert event["kind"] == "event" and event["dur"] == 0.0


class TestJsonlSink:
    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        tracer.event("b")
        sink.close()
        lines = open(path).read().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_write_after_close_is_ignored(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.write({"name": "late"})  # must not raise
        sink.close()  # idempotent


class TestDisabledMode:
    def test_null_tracer_emits_nothing(self):
        tracer = NullTracer()
        with tracer.span("a", x=1) as span:
            span.set("y", 2)
        tracer.event("b")
        assert tracer.span("a") is tracer.span("b"), \
            "disabled spans are one shared no-op object"

    def test_null_telemetry_phase_is_shared_noop(self):
        telemetry = Telemetry(registry=NullRegistry(),
                              tracer=NullTracer())
        assert telemetry.phase("a") is telemetry.phase("b")
        with telemetry.phase("a"):
            pass
        assert not telemetry.enabled

    def test_phase_timer_feeds_histogram_and_tracer(self):
        sink = ListSink()
        telemetry = Telemetry(registry=MetricsRegistry(),
                              tracer=Tracer(sink))
        with telemetry.phase("stategen"):
            pass
        histogram = telemetry.histogram("pqs_phase_seconds",
                                        phase="stategen")
        assert histogram.count == 1
        assert sink.events[0]["name"] == "stategen"
        # One clock pair serves both: the span duration is the sample.
        assert sink.events[0]["dur"] >= 0

    def test_metrics_only_phase_needs_no_tracer(self):
        telemetry = Telemetry()  # registry on, tracing off
        with telemetry.phase("pivot_select"):
            pass
        assert telemetry.histogram("pqs_phase_seconds",
                                   phase="pivot_select").count == 1


class TestTraceContext:
    def test_context_attrs_land_on_spans(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.context(worker=2, round=7, round_seed=99):
            with tracer.span("stategen"):
                pass
        with tracer.span("outside"):
            pass
        inside, outside = sink.events
        assert inside["attrs"] == {"worker": 2, "round": 7,
                                   "round_seed": 99}
        assert "attrs" not in outside, "context ends with the block"

    def test_explicit_attrs_shadow_context(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.context(round=1, worker=0):
            tracer.event("mark", round=5)
        assert sink.events[0]["attrs"] == {"round": 5, "worker": 0}

    def test_contexts_nest_and_restore(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.context(worker=0):
            with tracer.context(round=3, worker=1):
                assert tracer.current_context() == {"worker": 1,
                                                    "round": 3}
            assert tracer.current_context() == {"worker": 0}
        assert tracer.current_context() == {}

    def test_context_is_thread_local(self):
        sink = ListSink()
        tracer = Tracer(sink)
        seen = {}

        def other_thread():
            seen["context"] = tracer.current_context()
            tracer.event("other")

        with tracer.context(worker=7):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["context"] == {}
        other = [e for e in sink.events if e["name"] == "other"][0]
        assert "attrs" not in other, \
            "another thread's events must not inherit this context"

    def test_null_tracer_context_is_noop(self):
        tracer = NullTracer()
        with tracer.context(worker=1):
            with tracer.span("a"):
                pass
        assert tracer.current_context() == {}
