"""The paper-artifact index must reference only paths that exist, and
cover every injected defect and every benchmark."""

from pathlib import Path

from repro.minidb.bugs import BUG_CATALOG
from repro.paper import ARTIFACTS, format_index

REPO = Path(__file__).parent.parent


class TestArtifactIndex:
    def test_all_paths_exist(self):
        for artifact in ARTIFACTS:
            for rel in artifact.reproduced_by:
                assert (REPO / rel).exists(), (artifact.ref, rel)

    def test_every_defect_is_indexed(self):
        notes = " ".join(a.notes for a in ARTIFACTS)
        for bug_id in BUG_CATALOG:
            assert bug_id in notes, bug_id

    def test_every_benchmark_is_indexed(self):
        referenced = {path for a in ARTIFACTS
                      for path in a.reproduced_by
                      if path.startswith("benchmarks/")}
        on_disk = {f"benchmarks/{p.name}"
                   for p in (REPO / "benchmarks").glob("bench_*.py")}
        missing = on_disk - referenced - {
            "benchmarks/bench_ablation_rectify.py",
            "benchmarks/bench_ablation_depth.py",
        }
        assert not missing, missing

    def test_listings_covered(self):
        refs = {a.ref for a in ARTIFACTS}
        for listing in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                        15, 16, 17, 18):
            assert f"Listing {listing}" in refs

    def test_format_renders(self):
        text = format_index()
        assert "Table 2" in text and "Listing 14" in text
