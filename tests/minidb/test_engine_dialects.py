"""Dialect-specific engine behaviour: typing rules at INSERT time,
storage engines, inheritance, SERIAL, maintenance statement gating."""

import pytest

from repro.errors import DBError, UnsupportedError

from ..conftest import rows, run


class TestSQLiteAffinity:
    def test_numeric_text_converts_in_int_column(self, engine):
        run(engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES ('123')")
        out = engine.execute("SELECT a FROM t").rows[0][0]
        assert out.v == 123 and out.t.value == "integer"

    def test_non_numeric_text_stays_text_in_int_column(self, engine):
        run(engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES ('./')")
        assert engine.execute("SELECT a FROM t").rows[0][0].v == "./"

    def test_real_column_widens_integers(self, engine):
        run(engine, "CREATE TABLE t(a REAL)",
            "INSERT INTO t(a) VALUES (2)")
        out = engine.execute("SELECT a FROM t").rows[0][0]
        assert out.t.value == "real" and out.v == 2.0

    def test_text_column_stringifies_numbers(self, engine):
        run(engine, "CREATE TABLE t(a TEXT)",
            "INSERT INTO t(a) VALUES (12)")
        assert engine.execute("SELECT a FROM t").rows[0][0].v == "12"

    def test_untyped_column_stores_anything(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), ('x'), (X'00'), (1.5)")
        kinds = {v[0].t.value for v in engine.execute(
            "SELECT a FROM t").rows}
        assert kinds == {"integer", "text", "blob", "real"}


class TestMySQLTyping:
    def test_tinyint_clips(self, mysql_engine):
        run(mysql_engine, "CREATE TABLE t(a TINYINT)",
            "INSERT INTO t(a) VALUES (999), (-999)")
        assert rows(mysql_engine.execute("SELECT a FROM t")) == \
            [(127,), (-128,)]

    def test_unsigned_clips_at_zero(self, mysql_engine):
        run(mysql_engine, "CREATE TABLE t(a INT UNSIGNED)",
            "INSERT INTO t(a) VALUES (-5)")
        assert rows(mysql_engine.execute("SELECT a FROM t")) == [(0,)]

    def test_string_coerces_numerically(self, mysql_engine):
        run(mysql_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES ('42abc')")
        assert rows(mysql_engine.execute("SELECT a FROM t")) == [(42,)]

    def test_double_rounds_into_int(self, mysql_engine):
        run(mysql_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (1.5), (-1.5)")
        assert rows(mysql_engine.execute("SELECT a FROM t")) == \
            [(2,), (-2,)]

    def test_columns_require_types(self, mysql_engine):
        with pytest.raises(DBError, match="lacks a type"):
            mysql_engine.execute("CREATE TABLE t(a)")

    def test_memory_engine_recorded(self, mysql_engine):
        mysql_engine.execute("CREATE TABLE t(a INT) ENGINE = MEMORY")
        assert mysql_engine.catalog.table("t").engine == "MEMORY"

    def test_default_engine_innodb(self, mysql_engine):
        mysql_engine.execute("CREATE TABLE t(a INT)")
        assert mysql_engine.catalog.table("t").engine == "INNODB"

    def test_check_and_repair_table(self, mysql_engine):
        mysql_engine.execute("CREATE TABLE t(a INT)")
        out = mysql_engine.execute("CHECK TABLE t")
        assert out.rows[0][3].v == "OK"
        out = mysql_engine.execute("REPAIR TABLE t")
        assert out.rows[0][3].v == "OK"

    def test_no_vacuum(self, mysql_engine):
        with pytest.raises(UnsupportedError):
            mysql_engine.execute("VACUUM")


class TestPostgresTyping:
    def test_strict_text_into_int_rejected(self, pg_engine):
        pg_engine.execute("CREATE TABLE t(a INT)")
        with pytest.raises(DBError, match="is of type"):
            pg_engine.execute("INSERT INTO t(a) VALUES ('1')")

    def test_int4_range_enforced(self, pg_engine):
        pg_engine.execute("CREATE TABLE t(a INT)")
        with pytest.raises(DBError, match="out of range"):
            pg_engine.execute("INSERT INTO t(a) VALUES (2147483648)")

    def test_real_accepts_int(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a FLOAT8)",
            "INSERT INTO t(a) VALUES (1)")
        assert rows(pg_engine.execute("SELECT a FROM t")) == [(1.0,)]

    def test_boolean_column(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a BOOLEAN)",
            "INSERT INTO t(a) VALUES (TRUE), (FALSE)")
        assert rows(pg_engine.execute("SELECT a FROM t WHERE a")) == \
            [(True,)]

    def test_serial_autoassigns(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(id SERIAL, v INT)",
            "INSERT INTO t(v) VALUES (9), (8)")
        assert rows(pg_engine.execute("SELECT id FROM t")) == \
            [(1,), (2,)]

    def test_strict_where_requires_boolean(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(DBError, match="must be type boolean"):
            pg_engine.execute("SELECT a FROM t WHERE a")

    def test_division_by_zero_is_statement_error(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(DBError, match="division by zero"):
            pg_engine.execute("SELECT a FROM t WHERE a / 0 = 1")

    def test_nulls_last_in_order_by(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (NULL), (1)")
        out = rows(pg_engine.execute("SELECT a FROM t ORDER BY a"))
        assert out == [(1,), (None,)]


class TestInheritance:
    def test_parent_scan_includes_children(self, pg_engine):
        run(pg_engine, "CREATE TABLE p(a INT PRIMARY KEY, b INT)",
            "CREATE TABLE c(a INT) INHERITS (p)",
            "INSERT INTO p(a, b) VALUES (1, 10)",
            "INSERT INTO c(a, b) VALUES (2, 20)")
        assert len(pg_engine.execute("SELECT * FROM p")) == 2
        assert len(pg_engine.execute("SELECT * FROM c")) == 1

    def test_child_does_not_respect_parent_pk(self, pg_engine):
        # The documented caveat behind paper Listing 15.
        run(pg_engine, "CREATE TABLE p(a INT PRIMARY KEY)",
            "CREATE TABLE c(a INT) INHERITS (p)",
            "INSERT INTO p(a) VALUES (1)",
            "INSERT INTO c(a) VALUES (1)")
        assert len(pg_engine.execute("SELECT * FROM p")) == 2

    def test_type_mismatch_rejected(self, pg_engine):
        pg_engine.execute("CREATE TABLE p(a INT)")
        with pytest.raises(DBError, match="different type"):
            pg_engine.execute("CREATE TABLE c(a TEXT) INHERITS (p)")

    def test_merged_columns(self, pg_engine):
        run(pg_engine, "CREATE TABLE p(a INT)",
            "CREATE TABLE c(a INT, extra TEXT) INHERITS (p)")
        assert pg_engine.catalog.table("c").column_names() == \
            ["a", "extra"]

    def test_drop_parent_with_children_rejected(self, pg_engine):
        run(pg_engine, "CREATE TABLE p(a INT)",
            "CREATE TABLE c(a INT) INHERITS (p)")
        with pytest.raises(DBError, match="inherit"):
            pg_engine.execute("DROP TABLE p")

    def test_group_by_correct_without_defect(self, pg_engine):
        run(pg_engine, "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT)",
            "CREATE TABLE t1(c0 INT) INHERITS (t0)",
            "INSERT INTO t0(c0, c1) VALUES(0, 0)",
            "INSERT INTO t1(c0, c1) VALUES(0, 1)")
        out = rows(pg_engine.execute(
            "SELECT c0, c1 FROM t0 GROUP BY c0, c1"))
        assert sorted(out) == [(0, 0), (0, 1)]


class TestDialectGating:
    def test_without_rowid_sqlite_only(self, mysql_engine):
        with pytest.raises(UnsupportedError):
            mysql_engine.execute(
                "CREATE TABLE t(a INT PRIMARY KEY) WITHOUT ROWID")

    def test_engines_mysql_only(self, engine):
        with pytest.raises(UnsupportedError):
            engine.execute("CREATE TABLE t(a) ENGINE = MEMORY")

    def test_inherits_postgres_only(self, engine):
        engine.execute("CREATE TABLE p(a)")
        with pytest.raises(UnsupportedError):
            engine.execute("CREATE TABLE c(a) INHERITS (p)")

    def test_statistics_postgres_only(self, engine):
        engine.execute("CREATE TABLE t(a)")
        with pytest.raises(UnsupportedError):
            engine.execute("CREATE STATISTICS s ON a FROM t")

    def test_check_table_mysql_only(self, engine):
        engine.execute("CREATE TABLE t(a)")
        with pytest.raises(UnsupportedError):
            engine.execute("CHECK TABLE t")

    def test_discard_postgres_only(self, engine):
        with pytest.raises(UnsupportedError):
            engine.execute("DISCARD ALL")


class TestOptions:
    def test_pragma_case_sensitive_like(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES ('ABC')")
        assert len(engine.execute(
            "SELECT a FROM t WHERE a LIKE 'abc'")) == 1
        engine.execute("PRAGMA case_sensitive_like = 1")
        assert len(engine.execute(
            "SELECT a FROM t WHERE a LIKE 'abc'")) == 0

    def test_set_stores_option(self, mysql_engine):
        mysql_engine.execute("SET GLOBAL max_heap_table_size = 16384")
        assert mysql_engine.options["max_heap_table_size"].v == 16384

    def test_discard_resets_options(self, pg_engine):
        pg_engine.execute("SET enable_seqscan = 'off'")
        pg_engine.execute("DISCARD ALL")
        assert "enable_seqscan" not in pg_engine.options
