"""Tokenizer tests."""

import pytest

from repro.errors import ParseError
from repro.minidb.tokens import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_and_idents(self):
        out = kinds("SELECT c0 FROM t0")
        assert out[0] == (TokenType.KEYWORD, "SELECT")
        assert out[1] == (TokenType.IDENT, "c0")
        assert out[2] == (TokenType.KEYWORD, "FROM")

    def test_keyword_case_insensitive(self):
        assert tokenize("select")[0].type is TokenType.KEYWORD

    def test_eof_sentinel(self):
        assert tokenize("")[-1].type is TokenType.EOF

    def test_numbers(self):
        assert kinds("1 1.5 .5 1e3 2E-4 1.") == [
            (TokenType.INTEGER, "1"), (TokenType.FLOAT, "1.5"),
            (TokenType.FLOAT, ".5"), (TokenType.FLOAT, "1e3"),
            (TokenType.FLOAT, "2E-4"), (TokenType.FLOAT, "1.")]

    def test_dangling_exponent_is_ident_suffix(self):
        out = kinds("1e")
        assert out[0] == (TokenType.INTEGER, "1")
        assert out[1] == (TokenType.IDENT, "e")

    def test_strings_with_escapes(self):
        out = kinds("'a''b'")
        assert out == [(TokenType.STRING, "a'b")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'abc")

    def test_blob_literal(self):
        out = kinds("X'6162' x'00'")
        assert out == [(TokenType.BLOB, "6162"), (TokenType.BLOB, "00")]

    def test_malformed_blob(self):
        with pytest.raises(ParseError, match="malformed blob"):
            tokenize("X'6'")
        with pytest.raises(ParseError, match="malformed blob"):
            tokenize("X'6g'")

    def test_quoted_identifiers(self):
        out = kinds('"a b" `c` [d]')
        assert [t for _, t in out] == ["a b", "c", "d"]

    def test_operators_greedy(self):
        out = [t for _, t in kinds("a<=>b <= >= << >> || != <>")]
        assert out == ["a", "<=>", "b", "<=", ">=", "<<", ">>", "||",
                       "!=", "<>"]

    def test_comments_stripped(self):
        assert kinds("1 -- comment\n2") == [(TokenType.INTEGER, "1"),
                                            (TokenType.INTEGER, "2")]
        assert kinds("1 /* block */ 2") == [(TokenType.INTEGER, "1"),
                                            (TokenType.INTEGER, "2")]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("1 /* nope")

    def test_unknown_character(self):
        with pytest.raises(ParseError, match="unrecognized"):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tok = tokenize("  SELECT")[0]
        assert tok.pos == 2
