"""MiniDB ``EXPLAIN [QUERY PLAN] SELECT`` — plan introspection."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine
from repro.minidb.parser import parse_statement
from repro.minidb import statements as st


def explain(engine, sql):
    result = engine.execute_statement(parse_statement(sql))
    return result.python_rows()


def setup_table(engine):
    for sql in ("CREATE TABLE t0 (c0 INT, c1 TEXT)",
                "CREATE INDEX i0 ON t0(c0)",
                "INSERT INTO t0 VALUES (1, 'a'), (2, 'b')"):
        engine.execute_statement(parse_statement(sql))


def test_parse_explain_forms():
    plain = parse_statement("EXPLAIN SELECT 1")
    assert isinstance(plain, st.Explain) and not plain.query_plan
    eqp = parse_statement("EXPLAIN QUERY PLAN SELECT 1")
    assert isinstance(eqp, st.Explain) and eqp.query_plan


def test_explain_rejects_non_select():
    with pytest.raises(ParseError):
        parse_statement("EXPLAIN INSERT INTO t0 VALUES (1)")
    with pytest.raises(ParseError):
        parse_statement("EXPLAIN QUERY PLAN UPDATE t0 SET c0 = 1")


def test_explain_returns_plan_rows(engine):
    setup_table(engine)
    rows = explain(engine, "EXPLAIN QUERY PLAN "
                           "SELECT * FROM t0 WHERE c0 = 1")
    assert len(rows) == 1
    table, kind, index, detail = rows[0]
    assert (table, kind, index) == ("t0", "index-scan", "i0")
    assert "leading indexed expression" in detail


def test_explain_full_scan_without_index(engine):
    engine.execute_statement(parse_statement("CREATE TABLE t1 (c0 INT)"))
    rows = explain(engine, "EXPLAIN SELECT * FROM t1 WHERE c0 = 1")
    assert rows[0][1] == "full-scan"
    assert rows[0][2] is None


def test_explain_does_not_execute_or_mutate(engine):
    setup_table(engine)
    explain(engine, "EXPLAIN QUERY PLAN SELECT * FROM t0")
    rows = engine.execute_statement(
        parse_statement("SELECT * FROM t0")).python_rows()
    assert len(rows) == 2


def test_explain_skip_scan_under_defect():
    engine = Engine("sqlite",
                    bugs=BugRegistry({"sqlite-skip-scan-distinct"}))
    setup_table(engine)
    engine.execute_statement(parse_statement("ANALYZE"))
    rows = explain(engine, "EXPLAIN QUERY PLAN "
                           "SELECT DISTINCT c0 FROM t0")
    assert rows[0][1] == "skip-scan"


def test_explain_partial_index_path(engine):
    setup_table(engine)
    engine.execute_statement(parse_statement(
        "CREATE INDEX ip ON t0(c1) WHERE c1 NOT NULL"))
    rows = explain(engine, "EXPLAIN QUERY PLAN "
                           "SELECT * FROM t0 WHERE c1 NOT NULL")
    assert rows[0][1] == "index-scan"
    assert rows[0][2] == "ip"
    assert "partial" in rows[0][3]


def test_explain_like_rewrite_tag():
    engine = Engine("sqlite",
                    bugs=BugRegistry({"sqlite-like-affinity-opt"}))
    setup_table(engine)
    rows = explain(engine, "EXPLAIN QUERY PLAN "
                           "SELECT * FROM t0 WHERE c0 LIKE '1'")
    tags = [r[3] for r in rows if r[1] == "rewrite"]
    assert "like-opt" in tags


def test_explain_never_trips_planning_defects():
    """EXPLAIN introspects; only real execution may trigger modeled
    bugs, so an EXPLAIN-heavy guidance loop cannot corrupt oracle
    state."""
    engine = Engine("sqlite",
                    bugs=BugRegistry({"sqlite-skip-scan-distinct"}))
    setup_table(engine)
    engine.execute_statement(parse_statement("ANALYZE"))
    before = engine.execute_statement(
        parse_statement("SELECT DISTINCT c0 FROM t0")).python_rows()
    explain(engine, "EXPLAIN QUERY PLAN SELECT DISTINCT c0 FROM t0")
    after = engine.execute_statement(
        parse_statement("SELECT DISTINCT c0 FROM t0")).python_rows()
    assert before == after


def test_explain_join_and_compound(engine):
    setup_table(engine)
    engine.execute_statement(parse_statement("CREATE TABLE t1 (c0 INT)"))
    rows = explain(engine, "EXPLAIN SELECT * FROM t0, t1")
    assert [r[0] for r in rows] == ["t0", "t1"]
    rows = explain(engine, "EXPLAIN SELECT c0 FROM t0 "
                           "UNION SELECT c0 FROM t1")
    kinds = [r[1] for r in rows]
    assert "compound" in kinds
