"""Transaction semantics under DDL and maintenance (beyond the basics)."""

import pytest

from repro.errors import DBError

from ..conftest import rows, run


class TestTransactionalDDL:
    def test_rollback_reverts_create_table(self, engine):
        run(engine, "BEGIN", "CREATE TABLE t(a)", "ROLLBACK")
        with pytest.raises(DBError):
            engine.execute("SELECT * FROM t")

    def test_rollback_reverts_create_index(self, engine):
        run(engine, "CREATE TABLE t(a)", "BEGIN",
            "CREATE INDEX i ON t(a)", "ROLLBACK")
        assert engine.catalog.indexes_on("t") == []

    def test_rollback_reverts_alter(self, engine):
        run(engine, "CREATE TABLE t(a)", "BEGIN",
            "ALTER TABLE t RENAME COLUMN a TO z", "ROLLBACK")
        assert rows(engine.execute("SELECT a FROM t")) == []

    def test_rollback_reverts_drop(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "BEGIN", "DROP TABLE t", "ROLLBACK")
        assert rows(engine.execute("SELECT a FROM t")) == [(1,)]

    def test_commit_keeps_ddl(self, engine):
        run(engine, "BEGIN", "CREATE TABLE t(a)", "COMMIT",
            "INSERT INTO t(a) VALUES (1)")
        assert len(engine.execute("SELECT * FROM t")) == 1

    def test_rollback_reverts_options(self, engine):
        run(engine, "BEGIN", "PRAGMA case_sensitive_like = 1",
            "ROLLBACK")
        assert engine._option_int("case_sensitive_like") == 0


class TestTransactionalDML:
    def test_mixed_work_reverts_atomically(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (2)", "BEGIN",
            "DELETE FROM t WHERE a = 1",
            "UPDATE t SET a = 99 WHERE a = 2",
            "INSERT INTO t(a) VALUES (3)", "ROLLBACK")
        assert rows(engine.execute("SELECT a FROM t ORDER BY a")) == \
            [(1,), (2,)]

    def test_indexes_follow_rollback(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1)", "BEGIN",
            "INSERT INTO t(a) VALUES (2)", "ROLLBACK")
        assert len(engine.catalog.index("i").entries) == 1

    def test_reindex_allowed_inside_transaction(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "BEGIN", "REINDEX", "COMMIT")

    def test_postgres_transactions(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)", "BEGIN",
            "INSERT INTO t(a) VALUES (1)", "ROLLBACK")
        assert rows(pg_engine.execute("SELECT a FROM t")) == []
