"""Planner tests: binding, optimizer rewrites, and defect rewrites."""

import pytest

from repro.errors import CatalogError
from repro.minidb.bugs import BugRegistry
from repro.minidb.catalog import Column, Table
from repro.minidb.parser import parse_expression
from repro.minidb.planner import Scope, bind, rewrite
from repro.sqlast.nodes import (
    BinaryNode,
    BinaryOp,
    CastNode,
    ColumnNode,
    LiteralNode,
    UnaryNode,
    walk,
)
from repro.values import Value


def make_scope(dialect="sqlite", columns=(("c0", "INT"),
                                          ("c1", None))):
    table = Table(name="t0", columns=[
        Column(name=n, type_name=t) for n, t in columns])
    return Scope([("t0", table)], dialect)


class TestBinding:
    def test_unqualified_resolution(self):
        expr = bind(parse_expression("c0 = 1"), make_scope())
        column = expr.left
        assert column == ColumnNode("t0", "c0", affinity="INTEGER")

    def test_qualified_resolution(self):
        expr = bind(parse_expression("t0.c1 = 1"), make_scope())
        assert expr.left.table == "t0"

    def test_affinity_only_for_sqlite(self):
        expr = bind(parse_expression("c0 = 1"),
                    make_scope(dialect="mysql"))
        assert expr.left.affinity is None

    def test_unknown_column(self):
        with pytest.raises(CatalogError, match="no such column"):
            bind(parse_expression("zz = 1"), make_scope())

    def test_wrong_qualifier(self):
        with pytest.raises(CatalogError, match="no such column"):
            bind(parse_expression("other.c0 = 1"), make_scope())

    def test_ambiguity(self):
        table_a = Table(name="a", columns=[Column(name="x",
                                                  type_name=None)])
        table_b = Table(name="b", columns=[Column(name="x",
                                                  type_name=None)])
        scope = Scope([("a", table_a), ("b", table_b)], "sqlite")
        with pytest.raises(CatalogError, match="ambiguous"):
            bind(parse_expression("x = 1"), scope)

    def test_collation_annotation(self):
        table = Table(name="t0", columns=[
            Column(name="c0", type_name="TEXT", collation="NOCASE")])
        scope = Scope([("t0", table)], "sqlite")
        expr = bind(parse_expression("c0 = 'a'"), scope)
        assert expr.left.collation == "NOCASE"


class TestRewrites:
    def test_clean_rewrite_is_identity(self):
        expr = bind(parse_expression("NOT (NOT c0)"),
                    make_scope("mysql"))
        out = rewrite(expr, "mysql", BugRegistry(), make_scope("mysql"))
        assert out == expr

    def test_double_negation_defect(self):
        scope = make_scope("mysql")
        expr = bind(parse_expression("NOT (NOT c0)"), scope)
        out = rewrite(expr, "mysql",
                      BugRegistry({"mysql-double-negation"}), scope)
        assert isinstance(out, ColumnNode)

    def test_nullsafe_range_defect_folds_to_null(self):
        table = Table(name="t0", columns=[
            Column(name="c0", type_name="TINYINT")])
        scope = Scope([("t0", table)], "mysql")
        expr = bind(parse_expression("c0 <=> 2035382037"), scope)
        out = rewrite(expr, "mysql",
                      BugRegistry({"mysql-nullsafe-range"}), scope)
        assert isinstance(out, LiteralNode) and out.value.is_null

    def test_nullsafe_range_in_range_untouched(self):
        table = Table(name="t0", columns=[
            Column(name="c0", type_name="TINYINT")])
        scope = Scope([("t0", table)], "mysql")
        expr = bind(parse_expression("c0 <=> 100"), scope)
        out = rewrite(expr, "mysql",
                      BugRegistry({"mysql-nullsafe-range"}), scope)
        assert out == expr

    def test_like_affinity_defect_rewrites_to_cast_equality(self):
        scope = make_scope("sqlite")
        expr = bind(parse_expression("c0 LIKE './'"), scope)
        out = rewrite(expr, "sqlite",
                      BugRegistry({"sqlite-like-affinity-opt"}), scope)
        assert isinstance(out, BinaryNode) and out.op is BinaryOp.EQ
        assert isinstance(out.right, CastNode)

    def test_like_with_wildcards_not_rewritten(self):
        scope = make_scope("sqlite")
        expr = bind(parse_expression("c0 LIKE '.%'"), scope)
        out = rewrite(expr, "sqlite",
                      BugRegistry({"sqlite-like-affinity-opt"}), scope)
        assert out == expr

    def test_like_on_text_column_not_rewritten(self):
        table = Table(name="t0", columns=[
            Column(name="c0", type_name="TEXT")])
        scope = Scope([("t0", table)], "sqlite")
        expr = bind(parse_expression("c0 LIKE './'"), scope)
        out = rewrite(expr, "sqlite",
                      BugRegistry({"sqlite-like-affinity-opt"}), scope)
        assert out == expr
