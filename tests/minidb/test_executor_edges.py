"""Executor corner cases: joins with defective evaluation contexts,
compound operators over collated data, inheritance scans, aggregate
groups with NULLs, LIMIT arithmetic, and ORDER BY tie handling."""

import pytest

from repro.errors import DBError, UnsupportedError

from ..conftest import make_engine, rows, run


class TestJoinEdges:
    def test_three_way_cross_join_count(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1), (2)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (1), (2), (3)",
            "CREATE TABLE c(z)", "INSERT INTO c(z) VALUES (1)")
        assert len(engine.execute("SELECT * FROM a, b, c")) == 6

    def test_join_on_null_never_matches(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (NULL)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (NULL)")
        out = engine.execute(
            "SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert len(out) == 0

    def test_left_join_on_false_pads_all(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1), (2)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (9)")
        out = rows(engine.execute(
            "SELECT x, y FROM a LEFT JOIN b ON 0"))
        assert sorted(out) == [(1, None), (2, None)]

    def test_join_of_empty_table_is_empty(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1)",
            "CREATE TABLE b(y)")
        assert len(engine.execute("SELECT * FROM a, b")) == 0

    def test_memory_clamp_only_in_where(self):
        # The MEMORY-engine defect clamps during predicate evaluation
        # but must not rewrite the *output* values.
        engine = make_engine("mysql", "mysql-memory-engine-join")
        run(engine, "CREATE TABLE t(a INT) ENGINE = MEMORY",
            "INSERT INTO t(a) VALUES (-5)")
        out = rows(engine.execute("SELECT a FROM t WHERE a = 0"))
        assert out == [(-5,)]  # matched via the clamped WHERE view


class TestCompoundEdges:
    def test_intersect_respects_numeric_equality(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        assert len(engine.execute(
            "SELECT 1.0 INTERSECT SELECT a FROM t")) == 1

    def test_except_with_nulls(self, engine):
        out = rows(engine.execute(
            "SELECT NULL EXCEPT SELECT NULL"))
        assert out == []

    def test_union_mixed_types(self, engine):
        out = engine.execute("SELECT 1 UNION SELECT 'a' UNION SELECT 1")
        assert len(out) == 2


class TestAggregateEdges:
    def test_group_with_all_null_values(self, engine):
        run(engine, "CREATE TABLE t(k, v)",
            "INSERT INTO t(k, v) VALUES (1, NULL), (1, NULL)")
        out = rows(engine.execute(
            "SELECT k, COUNT(v), SUM(v), MIN(v) FROM t GROUP BY k"))
        assert out == [(1, 0, None, None)]

    def test_avg_is_real_even_for_ints(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (2)")
        value = engine.execute("SELECT AVG(a) FROM t").rows[0][0]
        assert value.t.value == "real" and value.v == 1.5

    def test_sum_overflow_becomes_real(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (9223372036854775807), (1)")
        value = engine.execute("SELECT SUM(a) FROM t").rows[0][0]
        assert value.t.value == "real"

    def test_having_with_aggregate_expression(self, engine):
        run(engine, "CREATE TABLE t(k, v)",
            "INSERT INTO t(k, v) VALUES (1, 10), (1, 20), (2, 1)")
        out = rows(engine.execute(
            "SELECT k FROM t GROUP BY k HAVING SUM(v) > 5"))
        assert out == [(1,)]

    def test_star_with_aggregate_rejected(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(UnsupportedError):
            engine.execute("SELECT *, COUNT(a) FROM t")

    def test_count_star_alone_no_from(self, engine):
        # Aggregate over the single implicit row.
        assert rows(engine.execute("SELECT COUNT(0)")) == [(1,)]


class TestOrderLimitEdges:
    def test_order_by_mixed_types_storage_order(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES ('x'), (2), (X'00'), (NULL), (1.5)")
        out = [v[0] for v in rows(engine.execute(
            "SELECT a FROM t ORDER BY a"))]
        assert out == [None, 1.5, 2, "x", b"\x00"]

    def test_limit_zero(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        assert len(engine.execute("SELECT a FROM t LIMIT 0")) == 0

    def test_offset_beyond_end(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        assert len(engine.execute(
            "SELECT a FROM t LIMIT 5 OFFSET 9")) == 0

    def test_limit_requires_integer(self, engine):
        run(engine, "CREATE TABLE t(a)")
        with pytest.raises(DBError, match="LIMIT"):
            engine.execute("SELECT a FROM t LIMIT 'x'")

    def test_order_by_desc_with_nulls(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (NULL), (1), (2)")
        out = [v[0] for v in rows(pg_engine.execute(
            "SELECT a FROM t ORDER BY a DESC"))]
        # PostgreSQL: NULLs first when descending.
        assert out == [None, 2, 1]


class TestInheritanceScans:
    def test_child_rows_projected_onto_parent_columns(self, pg_engine):
        run(pg_engine,
            "CREATE TABLE p(a INT, b INT)",
            "CREATE TABLE c(a INT, extra TEXT) INHERITS (p)",
            "INSERT INTO p(a, b) VALUES (1, 2)",
            "INSERT INTO c(a, b, extra) VALUES (3, 4, 'x')")
        out = rows(pg_engine.execute("SELECT a, b FROM p ORDER BY a"))
        assert out == [(1, 2), (3, 4)]

    def test_parent_index_not_used_for_inheritance_scan(self, pg_engine):
        run(pg_engine,
            "CREATE TABLE p(a INT PRIMARY KEY)",
            "CREATE TABLE c(a INT) INHERITS (p)",
            "INSERT INTO p(a) VALUES (1)",
            "INSERT INTO c(a) VALUES (1)")
        out = rows(pg_engine.execute("SELECT a FROM p WHERE a = 1"))
        assert len(out) == 2  # child row must not be lost to the index

    def test_distinct_over_inheritance(self, pg_engine):
        run(pg_engine,
            "CREATE TABLE p(a INT PRIMARY KEY)",
            "CREATE TABLE c(a INT) INHERITS (p)",
            "INSERT INTO p(a) VALUES (1)",
            "INSERT INTO c(a) VALUES (1), (2)")
        out = rows(pg_engine.execute("SELECT DISTINCT a FROM p"))
        assert sorted(out) == [(1,), (2,)]
