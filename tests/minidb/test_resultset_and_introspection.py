"""ResultSet helpers and schema-introspection virtual tables."""

import pytest

from repro.errors import CatalogError
from repro.minidb.engine import Engine, ResultSet
from repro.values import Value

from ..conftest import rows, run


class TestResultSet:
    def test_python_rows(self):
        rs = ResultSet(columns=["a"], rows=[(Value.integer(1),),
                                            (Value.null(),)])
        assert rs.python_rows() == [(1,), (None,)]

    def test_len(self):
        assert len(ResultSet()) == 0
        assert len(ResultSet(columns=["a"],
                             rows=[(Value.integer(1),)])) == 1


class TestSqliteMaster:
    def test_views_listed(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE VIEW v AS SELECT t.a FROM t")
        out = rows(engine.execute(
            "SELECT type, name, tbl_name FROM sqlite_master"))
        assert ("view", "v", "v") in out

    def test_filterable_with_where(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)")
        out = rows(engine.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"))
        assert out == [("i",)]

    def test_not_available_in_other_dialects(self, pg_engine):
        with pytest.raises(CatalogError):
            pg_engine.execute("SELECT * FROM sqlite_master")


class TestInformationSchema:
    def test_postgres_sees_it(self, pg_engine):
        pg_engine.execute("CREATE TABLE t(a INT)")
        out = rows(pg_engine.execute(
            "SELECT table_name, table_type FROM "
            "information_schema.tables"))
        assert ("t", "BASE TABLE") in out

    def test_views_marked(self, mysql_engine):
        run(mysql_engine, "CREATE TABLE t(a INT)",
            "CREATE VIEW v AS SELECT t.a FROM t")
        out = rows(mysql_engine.execute(
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_type = 'VIEW'"))
        assert out == [("v",)]

    def test_not_available_in_sqlite(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM information_schema.tables")


class TestResolveRelation:
    def test_unknown_relation(self, engine):
        with pytest.raises(CatalogError, match="no such table"):
            engine.resolve_relation("ghost")

    def test_view_materialization_is_fresh(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE VIEW v AS SELECT t.a FROM t",
            "INSERT INTO t(a) VALUES (1)")
        first = engine.resolve_relation("v")
        engine.execute("INSERT INTO t(a) VALUES (2)")
        second = engine.resolve_relation("v")
        assert len(first.rows) == 1 and len(second.rows) == 2
