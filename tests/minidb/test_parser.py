"""Parser tests: statements, expression precedence, and the
parse(render(e)) round-trip property."""

import pytest

from repro.errors import ParseError
from repro.minidb import statements as st
from repro.minidb.parser import parse_expression, parse_statement
from repro.sqlast.nodes import (
    BinaryNode,
    BinaryOp,
    CaseNode,
    CollateNode,
    ColumnNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.sqlast.render import render_expr
from repro.values import Value


class TestCreateTable:
    def test_minimal_untyped(self):
        stmt = parse_statement("CREATE TABLE t0(c0)")
        assert isinstance(stmt, st.CreateTable)
        assert stmt.columns[0].type_name is None

    def test_full_column_options(self):
        stmt = parse_statement(
            "CREATE TABLE t(c0 INT PRIMARY KEY, c1 TEXT UNIQUE NOT NULL "
            "COLLATE NOCASE DEFAULT 'x')")
        c0, c1 = stmt.columns
        assert c0.primary_key and c0.type_name == "INT"
        assert c1.unique and c1.not_null and c1.collation == "NOCASE"
        assert c1.default == LiteralNode(Value.text("x"))

    def test_table_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t(a, b, PRIMARY KEY (a, b), UNIQUE (b))")
        assert stmt.constraints[0].kind == "PRIMARY KEY"
        assert stmt.constraints[0].columns == ["a", "b"]
        assert stmt.constraints[1].columns == ["b"]

    def test_without_rowid(self):
        stmt = parse_statement(
            "CREATE TABLE t(a PRIMARY KEY) WITHOUT ROWID")
        assert stmt.without_rowid

    def test_engine(self):
        stmt = parse_statement("CREATE TABLE t(a INT) ENGINE = MEMORY")
        assert stmt.engine == "MEMORY"

    def test_inherits(self):
        stmt = parse_statement("CREATE TABLE t(a INT) INHERITS (p)")
        assert stmt.inherits == "p"

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t(a)")
        assert stmt.if_not_exists

    def test_sized_types(self):
        stmt = parse_statement("CREATE TABLE t(a VARCHAR(10))")
        assert stmt.columns[0].type_name == "VARCHAR"

    def test_multiword_types(self):
        stmt = parse_statement("CREATE TABLE t(a DOUBLE PRECISION, "
                               "b INT UNSIGNED)")
        assert stmt.columns[0].type_name == "DOUBLE PRECISION"
        assert stmt.columns[1].type_name == "INT UNSIGNED"


class TestCreateIndexViewStats:
    def test_index_basics(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i ON t(a DESC, b)")
        assert stmt.unique
        assert stmt.exprs[0].descending
        assert isinstance(stmt.exprs[1].expr, ColumnNode)

    def test_partial_index(self):
        stmt = parse_statement("CREATE INDEX i ON t(a) WHERE a NOT NULL")
        assert isinstance(stmt.where, PostfixNode)

    def test_collated_index_expr(self):
        stmt = parse_statement("CREATE INDEX i ON t(a COLLATE NOCASE)")
        assert stmt.exprs[0].collation == "NOCASE"
        assert isinstance(stmt.exprs[0].expr, ColumnNode)

    def test_expression_index(self):
        stmt = parse_statement("CREATE INDEX i ON t((a || 1))")
        assert isinstance(stmt.exprs[0].expr, BinaryNode)

    def test_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(stmt, st.CreateView)
        assert stmt.select.tables == ["t"]

    def test_statistics(self):
        stmt = parse_statement("CREATE STATISTICS s ON a, b FROM t")
        assert stmt.columns == ["a", "b"] and stmt.table == "t"


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse_statement(
            "INSERT INTO t(a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_or_ignore(self):
        stmt = parse_statement("INSERT OR IGNORE INTO t VALUES (1)")
        assert stmt.on_conflict == "IGNORE"

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE a > 0")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_or_replace(self):
        stmt = parse_statement("UPDATE OR REPLACE t SET a = 1")
        assert stmt.on_conflict == "REPLACE"

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a ISNULL")
        assert stmt.table == "t"

    def test_alter_variants(self):
        rename = parse_statement("ALTER TABLE t RENAME COLUMN a TO b")
        assert rename.action == "RENAME COLUMN"
        add = parse_statement("ALTER TABLE t ADD COLUMN x INT")
        assert add.action == "ADD COLUMN"
        to = parse_statement("ALTER TABLE t RENAME TO u")
        assert to.new_name == "u"

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.kind == "TABLE" and stmt.if_exists


class TestSelect:
    def test_star_and_where(self):
        stmt = parse_statement("SELECT * FROM t WHERE a = 1")
        assert stmt.items[0].expr is None
        assert isinstance(stmt.where, BinaryNode)

    def test_table_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "t"

    def test_distinct_join_group_order_limit(self):
        stmt = parse_statement(
            "SELECT DISTINCT a FROM t INNER JOIN u ON t.a = u.b "
            "WHERE 1 GROUP BY a HAVING a > 0 "
            "ORDER BY a DESC LIMIT 3 OFFSET 1")
        assert stmt.distinct
        assert stmt.joins[0].kind == "INNER"
        assert stmt.group_by and stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit is not None and stmt.offset is not None

    def test_cross_join_comma(self):
        stmt = parse_statement("SELECT * FROM a, b, c")
        assert stmt.tables == ["a", "b", "c"]

    def test_left_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON 1")
        assert stmt.joins[0].kind == "LEFT"

    def test_compound_intersect(self):
        stmt = parse_statement("SELECT 1 INTERSECT SELECT 2")
        kind, rhs = stmt.compound
        assert kind == "INTERSECT" and isinstance(rhs, st.Select)

    def test_alias(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_no_from(self):
        stmt = parse_statement("SELECT 1 + 1")
        assert stmt.tables == []


class TestMaintenanceAndOptions:
    def test_vacuum_full(self):
        stmt = parse_statement("VACUUM FULL")
        assert stmt.command == "VACUUM" and stmt.full

    def test_reindex_target(self):
        assert parse_statement("REINDEX t0").target == "t0"

    def test_check_table_for_upgrade(self):
        stmt = parse_statement("CHECK TABLE t FOR UPGRADE")
        assert stmt.command == "CHECK TABLE" and stmt.for_upgrade

    def test_repair(self):
        assert parse_statement("REPAIR TABLE t").command == "REPAIR TABLE"

    def test_pragma(self):
        stmt = parse_statement("PRAGMA case_sensitive_like = 1")
        assert stmt.name == "case_sensitive_like"

    def test_set_global(self):
        stmt = parse_statement("SET GLOBAL key_cache_division_limit = 100")
        assert stmt.scope == "GLOBAL"

    def test_transactions(self):
        assert parse_statement("BEGIN TRANSACTION").action == "BEGIN"
        assert parse_statement("COMMIT").action == "COMMIT"
        assert parse_statement("ROLLBACK").action == "ROLLBACK"

    def test_discard(self):
        assert parse_statement("DISCARD ALL").command == "DISCARD"


class TestExpressionPrecedence:
    def test_or_binds_loosest(self):
        expr = parse_expression("1 AND 2 OR 3")
        assert isinstance(expr, BinaryNode) and expr.op is BinaryOp.OR

    def test_not_above_and(self):
        expr = parse_expression("NOT 1 AND 2")
        assert expr.op is BinaryOp.AND
        assert isinstance(expr.left, UnaryNode)

    def test_concat_tight(self):
        expr = parse_expression("1 + 2 || 3")
        assert expr.op is BinaryOp.ADD
        assert expr.right.op is BinaryOp.CONCAT

    def test_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op is BinaryOp.ADD

    def test_comparison_chain(self):
        expr = parse_expression("1 < 2 = 3 < 4")
        assert expr.op is BinaryOp.EQ

    def test_is_not_vs_is_not_null(self):
        assert parse_expression("a IS NOT 1").op is BinaryOp.IS_NOT
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, PostfixNode)
        assert expr.op is PostfixOp.NOTNULL

    def test_is_true_forms(self):
        assert parse_expression("a IS TRUE").op is PostfixOp.IS_TRUE
        assert parse_expression("a IS NOT TRUE").op is \
            PostfixOp.IS_NOT_TRUE

    def test_not_in_not_like_not_between(self):
        assert isinstance(parse_expression("a NOT IN (1)"), InListNode)
        assert parse_expression("a NOT LIKE 'x'").op is BinaryOp.NOT_LIKE
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_case_forms(self):
        simple = parse_expression("CASE WHEN 1 THEN 2 ELSE 3 END")
        assert isinstance(simple, CaseNode) and simple.operand is None
        matched = parse_expression("CASE x WHEN 1 THEN 2 END")
        assert isinstance(matched.operand, ColumnNode)

    def test_collate_postfix(self):
        expr = parse_expression("a COLLATE NOCASE = 'b'")
        assert expr.op is BinaryOp.EQ
        assert isinstance(expr.left, CollateNode)

    def test_unary_chain_folds_transitively(self):
        assert parse_expression("- - 1") == LiteralNode(Value.integer(1))
        assert parse_expression("- - -1") == \
            LiteralNode(Value.integer(-1))

    def test_unary_minus_not_folded_over_nonliteral(self):
        expr = parse_expression("- a")
        assert isinstance(expr, UnaryNode)

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 2 3 FROM")
        with pytest.raises(ParseError):
            parse_statement("FROBNICATE t0")
        with pytest.raises(ParseError):
            parse_expression("CASE END")


class TestRoundTrip:
    """parse(render(e)) == e for generated trees — the property that ties
    the generator, renderer, parser and both evaluators together."""

    def test_random_expressions(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).parent.parent))
        from support.diffharness import ExprFuzzer

        from repro.sqlast.transform import fold_negative_literals

        fuzzer = ExprFuzzer(99)
        for _ in range(400):
            expr = fuzzer.expr(4)
            text = render_expr(expr)
            assert parse_expression(text) == \
                fold_negative_literals(expr), text

    def test_negative_literal_folding(self):
        expr = parse_expression("-9223372036854775808")
        assert expr == LiteralNode(Value.integer(-(2**63)))

    def test_huge_positive_integer_becomes_real(self):
        expr = parse_expression("9223372036854775808")
        assert expr == LiteralNode(Value.real(9.223372036854776e+18))
