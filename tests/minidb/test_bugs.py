"""Every injected defect, reproduced via its paper listing (or closest
scenario): the clean engine answers correctly, the defect-injected engine
misbehaves exactly as the modeled bug did.

These are the ground-truth fixtures behind the campaign benchmarks: if a
scenario here stops reproducing, Table 2/3 regeneration silently loses a
bug class, so each one is pinned as a unit test.
"""

import pytest

from repro.errors import DBCrash, DBError, IntegrityError
from repro.minidb.bugs import BUG_CATALOG, BugRegistry, bugs_for_dialect

from ..conftest import make_engine, rows, run


class TestCatalogIntegrity:
    def test_all_dialects_covered(self):
        assert {b.dialect for b in BUG_CATALOG.values()} == \
            {"sqlite", "mysql", "postgres"}

    def test_all_oracles_covered_per_dialect(self):
        # The multiplan oracle's defects are sqlite-only (they model
        # SQLite planner bug classes), so it is required there and
        # absent elsewhere.
        expected = {
            "sqlite": {"contains", "error", "crash", "multiplan"},
            "mysql": {"contains", "error", "crash"},
            "postgres": {"contains", "error", "crash"},
        }
        for dialect, oracles_wanted in expected.items():
            oracles = {b.oracle for b in bugs_for_dialect(dialect)}
            assert oracles == oracles_wanted, dialect

    def test_sqlite_has_most_defects(self):
        # The paper found most bugs in SQLite; the catalog mirrors that.
        counts = {d: len(bugs_for_dialect(d))
                  for d in ("sqlite", "mysql", "postgres")}
        assert counts["sqlite"] > counts["mysql"] > counts["postgres"]

    def test_registry_validates_ids(self):
        with pytest.raises(KeyError):
            BugRegistry({"no-such-bug"})

    def test_registry_enable_disable(self):
        registry = BugRegistry()
        registry.enable("mysql-double-negation")
        assert registry.on("mysql-double-negation")
        registry.disable("mysql-double-negation")
        assert not registry.on("mysql-double-negation")
        assert len(BugRegistry.all_for("sqlite")) == \
            len(bugs_for_dialect("sqlite"))

    def test_paper_refs_present(self):
        assert all(b.paper_ref for b in BUG_CATALOG.values())


def _listing1(engine):
    run(engine, "CREATE TABLE t0(c0)",
        "CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
        "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)")
    return rows(engine.execute("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1"))


class TestSQLiteDefects:
    def test_partial_index_is_not(self):
        # Paper Listing 1: the critical partial-index implication bug.
        clean = _listing1(make_engine("sqlite"))
        assert None in [r[0] for r in clean]
        buggy = _listing1(make_engine("sqlite",
                                      "sqlite-partial-index-is-not"))
        assert None not in [r[0] for r in buggy]

    def test_nocase_unique_without_rowid(self):
        # Paper Listing 4: case-variant key unreachable via index lookup.
        def scenario(engine):
            run(engine,
                "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID",
                "CREATE INDEX i0 ON t0(c0 COLLATE NOCASE)",
                "INSERT INTO t0(c0) VALUES ('A')",
                "INSERT INTO t0(c0) VALUES ('a')")
            return rows(engine.execute("SELECT * FROM t0 WHERE c0 = 'a'"))

        assert scenario(make_engine("sqlite")) == [("a",)]
        assert scenario(make_engine(
            "sqlite", "sqlite-nocase-unique-without-rowid")) == []

    def test_rtrim_compare(self):
        # Paper Listing 5 analogue: leading spaces wrongly ignored.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 COLLATE RTRIM)",
                "INSERT INTO t0(c0) VALUES (' x'), ('x')")
            return rows(engine.execute(
                "SELECT c0 FROM t0 WHERE c0 = 'x'"))

        assert scenario(make_engine("sqlite")) == [("x",)]
        assert len(scenario(make_engine("sqlite",
                                        "sqlite-rtrim-compare"))) == 2

    def test_skip_scan_distinct(self):
        # Paper Listing 6: skip-scan DISTINCT after ANALYZE drops rows.
        def scenario(engine):
            run(engine,
                "CREATE TABLE t1 (c1, c2, c3, c4, PRIMARY KEY (c4, c3))",
                "INSERT INTO t1(c3) VALUES (0), (0), (0), (0), (0), (0), "
                "(0), (0), (0), (0), (NULL), (1), (0)",
                "UPDATE t1 SET c2 = 0",
                "INSERT INTO t1(c1) VALUES (0), (0), (NULL), (0), (0)",
                "ANALYZE t1",
                "UPDATE t1 SET c3 = 1")
            return rows(engine.execute(
                "SELECT DISTINCT * FROM t1 WHERE t1.c3 = 1"))

        assert len(scenario(make_engine("sqlite"))) == 3
        assert len(scenario(make_engine(
            "sqlite", "sqlite-skip-scan-distinct"))) < 3

    def test_like_affinity_opt(self):
        # Paper Listing 7: LIKE optimization vs INT affinity.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE)",
                "INSERT INTO t0(c0) VALUES ('./')")
            return rows(engine.execute(
                "SELECT * FROM t0 WHERE t0.c0 LIKE './'"))

        assert scenario(make_engine("sqlite")) == [("./",)]
        assert scenario(make_engine("sqlite",
                                    "sqlite-like-affinity-opt")) == []

    def test_rename_expr_index(self):
        # Paper Listing 8 analogue: stale expression index after RENAME.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c1, c2)",
                "INSERT INTO t0(c1, c2) VALUES ('a', 1)",
                "CREATE INDEX i0 ON t0((c1 || c2))",
                "ALTER TABLE t0 RENAME COLUMN c1 TO c3")
            return rows(engine.execute("SELECT DISTINCT * FROM t0"))

        assert scenario(make_engine("sqlite")) == [("a", 1)]
        with pytest.raises(IntegrityError, match="malformed database "
                                                 "schema"):
            scenario(make_engine("sqlite", "sqlite-rename-expr-index"))

    def test_case_sensitive_like_index(self):
        # Paper Listing 9: PRAGMA case_sensitive_like vs LIKE index.
        def scenario(engine):
            run(engine, "CREATE TABLE test (c0)",
                "CREATE INDEX index_0 ON test(c0 LIKE '')",
                "PRAGMA case_sensitive_like = 1",
                "VACUUM")

        scenario(make_engine("sqlite"))  # clean: no error
        with pytest.raises(IntegrityError,
                           match="non-deterministic functions"):
            scenario(make_engine("sqlite",
                                 "sqlite-case-sensitive-like-index"))

    def test_real_pk_corrupt(self):
        # Paper Listing 10: UPDATE OR REPLACE corrupts a REAL PK index.
        def scenario(engine):
            run(engine, "CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY)",
                "INSERT INTO t1(c0, c1) VALUES (TRUE, "
                "9223372036854775807), (TRUE, 0)",
                "UPDATE t1 SET c0 = NULL",
                "UPDATE OR REPLACE t1 SET c1 = 1")
            return rows(engine.execute(
                "SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL)"))

        assert scenario(make_engine("sqlite")) == [(None, 1.0)]
        with pytest.raises(IntegrityError, match="malformed"):
            scenario(make_engine("sqlite", "sqlite-real-pk-corrupt"))

    def test_reindex_unique(self):
        # §4.4: REINDEX detects constraint violations (6 bugs found).
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 TEXT)",
                "CREATE UNIQUE INDEX u0 ON t0(c0 COLLATE NOCASE)",
                "INSERT INTO t0(c0) VALUES ('a')")
            engine.execute("INSERT INTO t0(c0) VALUES ('A')")
            engine.execute("REINDEX")

        with pytest.raises(DBError, match="UNIQUE constraint failed"):
            scenario(make_engine("sqlite"))  # rejected at INSERT: correct
        with pytest.raises(DBError, match="UNIQUE constraint failed"):
            scenario(make_engine("sqlite", "sqlite-reindex-unique"))
        # The buggy engine accepts the INSERT and fails only at REINDEX.
        buggy = make_engine("sqlite", "sqlite-reindex-unique")
        run(buggy, "CREATE TABLE t0(c0 TEXT)",
            "CREATE UNIQUE INDEX u0 ON t0(c0 COLLATE NOCASE)",
            "INSERT INTO t0(c0) VALUES ('a')",
            "INSERT INTO t0(c0) VALUES ('A')")
        with pytest.raises(DBError, match="UNIQUE constraint failed"):
            buggy.execute("REINDEX")

    def test_alter_add_crash(self):
        # §4.2 crash class: ALTER ADD on WITHOUT ROWID + expr index.
        def scenario(engine):
            run(engine,
                "CREATE TABLE t(a TEXT PRIMARY KEY) WITHOUT ROWID",
                "CREATE INDEX i ON t((a || 'x'))",
                "ALTER TABLE t ADD COLUMN b")

        scenario(make_engine("sqlite"))  # clean: fine
        with pytest.raises(DBCrash):
            scenario(make_engine("sqlite", "sqlite-alter-add-crash"))


class TestMySQLDefects:
    def test_memory_engine_join(self):
        # Paper Listing 11.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT)",
                "CREATE TABLE t1(c0 INT) ENGINE = MEMORY",
                "INSERT INTO t0(c0) VALUES (0)",
                "INSERT INTO t1(c0) VALUES (-1)")
            return rows(engine.execute(
                "SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > "
                "(IFNULL('u', t0.c0))"))

        assert scenario(make_engine("mysql")) == [(0, -1)]
        assert scenario(make_engine("mysql",
                                    "mysql-memory-engine-join")) == []

    def test_unsigned_cast_compare(self):
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT)",
                "INSERT INTO t0(c0) VALUES (5)")
            return rows(engine.execute(
                "SELECT * FROM t0 WHERE CAST(-1 AS UNSIGNED) > t0.c0"))

        assert scenario(make_engine("mysql")) == [(5,)]
        assert scenario(make_engine(
            "mysql", "mysql-unsigned-cast-compare")) == []

    def test_nullsafe_range(self):
        # Paper Listing 12.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 TINYINT)",
                "INSERT INTO t0(c0) VALUES(NULL)")
            return rows(engine.execute(
                "SELECT * FROM t0 WHERE NOT(t0.c0 <=> 2035382037)"))

        assert scenario(make_engine("mysql")) == [(None,)]
        assert scenario(make_engine("mysql", "mysql-nullsafe-range")) == []

    def test_double_negation(self):
        # Paper Listing 13.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT)",
                "INSERT INTO t0(c0) VALUES (1)")
            return rows(engine.execute(
                "SELECT * FROM t0 WHERE 123 != (NOT (NOT 123))"))

        assert scenario(make_engine("mysql")) == [(1,)]
        assert scenario(make_engine("mysql",
                                    "mysql-double-negation")) == []

    def test_text_double_bool(self):
        # §4.5: '0.5' in TEXT wrongly FALSE in boolean context.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 TEXT)",
                "INSERT INTO t0(c0) VALUES ('0.5')")
            return rows(engine.execute("SELECT * FROM t0 WHERE t0.c0"))

        assert scenario(make_engine("mysql")) == [("0.5",)]
        assert scenario(make_engine("mysql",
                                    "mysql-text-double-bool")) == []

    def test_check_table_crash(self):
        # Paper Listing 14 (CVE-2019-2879 analogue).
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT)",
                "CREATE INDEX i0 ON t0((t0.c0 || 1))",
                "INSERT INTO t0(c0) VALUES (1)")
            return engine.execute("CHECK TABLE t0 FOR UPGRADE")

        assert scenario(make_engine("mysql")).rows[0][3].v == "OK"
        with pytest.raises(DBCrash):
            scenario(make_engine("mysql", "mysql-check-table-crash"))

    def test_repair_memory_error(self):
        def scenario(engine):
            engine.execute("CREATE TABLE t0(c0 INT) ENGINE = MEMORY")
            return engine.execute("REPAIR TABLE t0")

        assert scenario(make_engine("mysql")).rows[0][3].v == "OK"
        with pytest.raises(DBError, match="Incorrect key file"):
            scenario(make_engine("mysql", "mysql-repair-memory-error"))

    def test_set_option_error(self):
        # Paper Listing 3: a one-statement bug.
        make_engine("mysql").execute(
            "SET GLOBAL key_cache_division_limit = 100")
        with pytest.raises(DBError, match="Incorrect arguments to SET"):
            make_engine("mysql", "mysql-set-option-error").execute(
                "SET GLOBAL key_cache_division_limit = 100")


class TestPostgresDefects:
    def test_inherit_groupby(self):
        # Paper Listing 15: the one fixed PostgreSQL containment bug.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT)",
                "CREATE TABLE t1(c0 INT) INHERITS (t0)",
                "INSERT INTO t0(c0, c1) VALUES(0, 0)",
                "INSERT INTO t1(c0, c1) VALUES(0, 1)")
            return rows(engine.execute(
                "SELECT c0, c1 FROM t0 GROUP BY c0, c1"))

        assert sorted(scenario(make_engine("postgres"))) == \
            [(0, 0), (0, 1)]
        assert scenario(make_engine("postgres",
                                    "pg-inherit-groupby")) == [(0, 0)]

    def test_stats_bitmap_error(self):
        # Paper Listing 16.
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN)",
                "CREATE STATISTICS s1 ON c0, c1 FROM t0",
                "INSERT INTO t0(c1) VALUES(TRUE)",
                "ANALYZE",
                "CREATE INDEX i0 ON t0((t0.c1 AND t0.c1))")
            return rows(engine.execute(
                "SELECT t0.c0 FROM t0 WHERE (((t0.c1) AND (t0.c1)) OR "
                "FALSE) IS TRUE"))

        assert scenario(make_engine("postgres")) == [(1,)]
        with pytest.raises(DBError, match="negative bitmapset member"):
            scenario(make_engine("postgres", "pg-stats-bitmap-error"))

    def test_index_null_error(self):
        # Paper Listing 17 (multithreaded class, deterministic surrogate).
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 TEXT)",
                "INSERT INTO t0(c0) VALUES('b'), ('a')",
                "ANALYZE",
                "INSERT INTO t0(c0) VALUES (NULL)",
                "UPDATE t0 SET c0 = 'a'",
                "CREATE INDEX i0 ON t0(c0)")
            return rows(engine.execute(
                "SELECT * FROM t0 WHERE 'baaaa' > t0.c0"))

        assert len(scenario(make_engine("postgres"))) == 3
        with pytest.raises(DBError, match="unexpected null value"):
            scenario(make_engine("postgres", "pg-index-null-error"))

    def test_vacuum_int_overflow(self):
        # Paper Listing 18 (closed as working-as-intended).
        def scenario(engine):
            run(engine, "CREATE TABLE t1(c0 INT)",
                "INSERT INTO t1(c0) VALUES (0)",
                "CREATE INDEX i0 ON t1((1 + t1.c0))",
                "INSERT INTO t1(c0) VALUES (2147483647)",
                "VACUUM FULL")

        scenario(make_engine("postgres"))  # clean: fine
        with pytest.raises(DBError, match="integer out of range"):
            scenario(make_engine("postgres", "pg-vacuum-int-overflow"))

    def test_vacuum_int_overflow_is_intended_triage(self):
        assert BUG_CATALOG["pg-vacuum-int-overflow"].triage == "intended"

    def test_statistics_crash(self):
        def scenario(engine):
            run(engine, "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN)",
                "CREATE STATISTICS s1 ON c0, c1 FROM t0",
                "INSERT INTO t0(c1) VALUES(TRUE)")
            return rows(engine.execute(
                "SELECT t0.c0 FROM t0 WHERE ((t0.c1 AND t0.c1) OR FALSE) "
                "IS TRUE"))

        assert scenario(make_engine("postgres")) == [(1,)]
        with pytest.raises(DBCrash):
            scenario(make_engine("postgres", "pg-statistics-crash"))
