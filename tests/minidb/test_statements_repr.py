"""Statement dataclass sanity and the statement-kind taxonomy used by
the error oracle and the Figure 3 classifier."""

import pytest

from repro.core.error_oracle import EXPECTED_ERRORS, statement_kind
from repro.campaigns.metrics import FIGURE3_CATEGORIES, classify_statement
from repro.minidb import statements as st
from repro.minidb.parser import parse_statement


class TestStatementDataclasses:
    def test_select_defaults(self):
        select = st.Select(items=[st.SelectItem(expr=None)])
        assert select.tables == [] and select.joins == []
        assert not select.distinct and select.compound is None

    def test_maintenance_fields(self):
        maint = st.Maintenance(command="VACUUM", full=True)
        assert maint.full and maint.target is None

    def test_independent_default_lists(self):
        a = st.Select(items=[])
        b = st.Select(items=[])
        a.tables.append("t")
        assert b.tables == []


class TestKindTaxonomy:
    """Every statement the parser can produce maps to a known kind, and
    every kind has an expected-error policy."""

    SAMPLES = [
        "CREATE TABLE t(a)",
        "CREATE UNIQUE INDEX i ON t(a)",
        "CREATE VIEW v AS SELECT 1",
        "CREATE STATISTICS s ON a FROM t",
        "DROP TABLE t",
        "INSERT INTO t VALUES (1)",
        "UPDATE t SET a = 1",
        "DELETE FROM t",
        "ALTER TABLE t RENAME TO u",
        "SELECT 1",
        "VACUUM",
        "REINDEX",
        "ANALYZE",
        "CHECK TABLE t",
        "REPAIR TABLE t",
        "DISCARD ALL",
        "PRAGMA x = 1",
        "SET GLOBAL x = 1",
        "BEGIN",
        "COMMIT",
        "ROLLBACK",
    ]

    @pytest.mark.parametrize("sql", SAMPLES)
    def test_kind_has_error_policy(self, sql):
        kind = statement_kind(sql)
        assert kind in EXPECTED_ERRORS, kind

    @pytest.mark.parametrize("sql", SAMPLES)
    def test_kind_maps_to_figure3_category(self, sql):
        category = classify_statement(sql)
        assert category in FIGURE3_CATEGORIES or category in (
            "DROP INDEX",), category

    @pytest.mark.parametrize("sql", SAMPLES)
    def test_parser_accepts_every_sample(self, sql):
        parse_statement(sql)
