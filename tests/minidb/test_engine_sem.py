"""Engine-side semantics wrappers: identical to the oracle unless a
defect is enabled; each injection point flips exactly one behaviour."""

import pytest

from repro.interp.base import Interpreter
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine_sem import (
    EngineMySQLSemantics,
    EnginePostgresSemantics,
    EngineSQLiteSemantics,
    build_engine_semantics,
)
from repro.minidb.parser import parse_expression
from repro.sqlast.transform import transform
from repro.sqlast.nodes import ColumnNode
from repro.values import Value


def evaluate(semantics, sql, row=None):
    interp = Interpreter(semantics)
    env = {k: (v if isinstance(v, Value) else Value.from_python(v))
           for k, v in (row or {}).items()}
    expr = parse_expression(sql)

    def bind(node):
        if isinstance(node, ColumnNode) and node.qualified in env:
            return ColumnNode(node.table, node.column,
                              collation="RTRIM"
                              if node.column == "rt" else None)
        return None

    expr = transform(expr, bind)
    out = interp.evaluate(expr, env)
    return None if out.is_null else out.v


class TestFactory:
    def test_builds_per_dialect(self):
        registry = BugRegistry()
        assert isinstance(build_engine_semantics("sqlite", registry),
                          EngineSQLiteSemantics)
        assert isinstance(build_engine_semantics("mysql", registry),
                          EngineMySQLSemantics)
        assert isinstance(build_engine_semantics("postgres", registry),
                          EnginePostgresSemantics)
        with pytest.raises(ValueError):
            build_engine_semantics("oracle", registry)


class TestSQLiteWrapper:
    def test_clean_matches_oracle(self):
        clean = EngineSQLiteSemantics(BugRegistry())
        assert evaluate(clean, "('  a' COLLATE RTRIM) = 'a'") == 0
        assert evaluate(clean, "('a  ' COLLATE RTRIM) = 'a'") == 1

    def test_rtrim_defect_strips_leading(self):
        buggy = EngineSQLiteSemantics(
            BugRegistry({"sqlite-rtrim-compare"}))
        assert evaluate(buggy, "('  a' COLLATE RTRIM) = 'a'") == 1

    def test_rtrim_defect_ignores_other_collations(self):
        buggy = EngineSQLiteSemantics(
            BugRegistry({"sqlite-rtrim-compare"}))
        assert evaluate(buggy, "'  a' = 'a'") == 0


class TestMySQLWrapper:
    def test_text_double_bool_defect(self):
        clean = EngineMySQLSemantics(BugRegistry())
        buggy = EngineMySQLSemantics(
            BugRegistry({"mysql-text-double-bool"}))
        assert clean.to_bool(Value.text("0.5")) is True
        assert buggy.to_bool(Value.text("0.5")) is False
        # Integer-valued text unaffected.
        assert buggy.to_bool(Value.text("2")) is True
        # Infinity falls back to the correct path.
        assert buggy.to_bool(Value.text("9e999")) is True

    def test_unsigned_cast_defect(self):
        clean = EngineMySQLSemantics(BugRegistry())
        buggy = EngineMySQLSemantics(
            BugRegistry({"mysql-unsigned-cast-compare"}))
        sql = "CAST(-1 AS UNSIGNED) > 5"
        assert evaluate(clean, sql) == 1
        assert evaluate(buggy, sql) == 0

    def test_unsigned_cast_defect_only_hits_casts(self):
        buggy = EngineMySQLSemantics(
            BugRegistry({"mysql-unsigned-cast-compare"}))
        assert evaluate(buggy, "18446744073709551615 > 5") == 1
