"""Indexes: implicit/explicit creation, scans, partial and expression
indexes, uniqueness enforcement, and maintenance-driven rebuilds."""

import pytest

from repro.errors import ConstraintError, DBError
from repro.minidb.planner import AccessPath, choose_path
from repro.minidb.bugs import BugRegistry

from ..conftest import rows, run


class TestImplicitIndexes:
    def test_pk_creates_index(self, engine):
        engine.execute("CREATE TABLE t(a PRIMARY KEY)")
        indexes = engine.catalog.indexes_on("t")
        assert len(indexes) == 1 and indexes[0].implicit

    def test_unique_column_creates_index(self, engine):
        engine.execute("CREATE TABLE t(a UNIQUE, b UNIQUE)")
        assert len(engine.catalog.indexes_on("t")) == 2

    def test_implicit_index_cannot_be_dropped(self, engine):
        engine.execute("CREATE TABLE t(a PRIMARY KEY)")
        name = engine.catalog.indexes_on("t")[0].name
        with pytest.raises(DBError, match="backing a constraint"):
            engine.execute(f"DROP INDEX {name}")


class TestExplicitIndexes:
    def test_create_and_drop(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "DROP INDEX i")
        assert engine.catalog.indexes_on("t") == []

    def test_duplicate_name_rejected(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)")
        with pytest.raises(DBError, match="already exists"):
            engine.execute("CREATE INDEX i ON t(a)")

    def test_unique_index_enforces_on_creation(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (1)")
        with pytest.raises(ConstraintError):
            engine.execute("CREATE UNIQUE INDEX u ON t(a)")

    def test_unique_index_enforces_after_creation(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE UNIQUE INDEX u ON t(a)",
            "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(ConstraintError):
            engine.execute("INSERT INTO t(a) VALUES (1)")

    def test_expression_index_entries(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t((a + 1))",
            "INSERT INTO t(a) VALUES (5)")
        index = engine.catalog.index("i")
        assert index.entries[0][0][0].v == 6

    def test_partial_index_filters_entries(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE INDEX i ON t(a) WHERE a NOT NULL",
            "INSERT INTO t(a) VALUES (1), (NULL)")
        assert len(engine.catalog.index("i").entries) == 1

    def test_index_maintained_on_update_delete(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1), (2)",
            "UPDATE t SET a = 3 WHERE a = 1", "DELETE FROM t WHERE a = 2")
        entries = engine.catalog.index("i").entries
        assert [e[0][0].v for e in entries] == [3]


class TestPlanner:
    def _table_and_indexes(self, engine):
        table = engine.catalog.table("t")
        return table, engine.catalog.indexes_on("t")

    def test_full_scan_without_where(self, engine):
        engine.execute("CREATE TABLE t(a)")
        table, indexes = self._table_and_indexes(engine)
        path = choose_path(table, None, indexes, False, BugRegistry())
        assert path.kind == "full-scan"

    def test_index_scan_for_equality(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)")
        from repro.minidb.parser import parse_expression

        table, indexes = self._table_and_indexes(engine)
        where = parse_expression("a = 1")
        path = choose_path(table, where, indexes, False, BugRegistry())
        assert path.kind == "index-scan"

    def test_partial_index_needs_exact_conjunct(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE INDEX i ON t(a) WHERE a NOT NULL")
        from repro.minidb.parser import parse_expression

        table, indexes = self._table_and_indexes(engine)
        usable = parse_expression("a NOT NULL AND a = 1")
        path = choose_path(table, usable, indexes, False, BugRegistry())
        assert path.kind == "index-scan" and path.index.is_partial
        not_usable = parse_expression("a IS NOT 1")
        path = choose_path(table, not_usable, indexes, False,
                           BugRegistry())
        assert path.kind == "full-scan"

    def test_unsound_partial_implication_only_with_defect(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE INDEX i ON t(a) WHERE a NOT NULL")
        from repro.minidb.parser import parse_expression

        table, indexes = self._table_and_indexes(engine)
        where = parse_expression("a IS NOT 1")
        bugged = BugRegistry({"sqlite-partial-index-is-not"})
        path = choose_path(table, where, indexes, False, bugged)
        assert path.kind == "index-scan"


class TestMaintenance:
    def test_reindex_rebuilds(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1)", "REINDEX")
        assert len(engine.catalog.index("i").entries) == 1

    def test_vacuum_ok_on_healthy_db(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "VACUUM")

    def test_analyze_sets_statistics_flag(self, engine):
        run(engine, "CREATE TABLE t(a)", "ANALYZE t")
        assert engine.catalog.table("t").analyzed

    def test_analyze_all(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE TABLE u(a)", "ANALYZE")
        assert engine.catalog.table("u").analyzed

    def test_reindex_detects_stale_entries(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1)")
        # Corrupt the index by hand: point an entry at a missing row.
        index = engine.catalog.index("i")
        index.entries.append((index.entries[0][0], 999))
        with pytest.raises(DBError, match="malformed"):
            engine.execute("REINDEX")
