"""Maintenance commands: VACUUM/REINDEX/ANALYZE/CHECK/REPAIR/DISCARD
behaviour on clean engines, plus their transaction interactions."""

import pytest

from repro.errors import DBError, UnsupportedError

from ..conftest import make_engine, rows, run


class TestVacuum:
    def test_rebuilds_indexes(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1), (2)", "VACUUM")
        assert len(engine.catalog.index("i").entries) == 2

    def test_refused_inside_transaction(self, engine):
        run(engine, "CREATE TABLE t(a)", "BEGIN")
        with pytest.raises(DBError, match="within a transaction"):
            engine.execute("VACUUM")
        engine.execute("COMMIT")
        engine.execute("VACUUM")

    def test_postgres_wording(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)", "BEGIN")
        with pytest.raises(DBError, match="transaction block"):
            pg_engine.execute("VACUUM")

    def test_vacuum_full_postgres(self, pg_engine):
        run(pg_engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (1)", "VACUUM FULL")


class TestReindex:
    def test_named_target(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1)", "REINDEX i")
        assert len(engine.catalog.index("i").entries) == 1

    def test_table_target_rebuilds_its_indexes(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "INSERT INTO t(a) VALUES (1)", "REINDEX t")
        assert len(engine.catalog.index("i").entries) == 1

    def test_detects_collation_duplicates_from_defect(self):
        buggy = make_engine("sqlite", "sqlite-reindex-unique")
        run(buggy, "CREATE TABLE t(a TEXT)",
            "CREATE UNIQUE INDEX u ON t(a COLLATE NOCASE)",
            "INSERT INTO t(a) VALUES ('x')",
            "INSERT INTO t(a) VALUES ('X')")
        with pytest.raises(DBError, match="UNIQUE"):
            buggy.execute("REINDEX")


class TestAnalyzeAndOptions:
    def test_analyze_named_vs_all(self, engine):
        run(engine, "CREATE TABLE a(x)", "CREATE TABLE b(y)",
            "ANALYZE a")
        assert engine.catalog.table("a").analyzed
        assert not engine.catalog.table("b").analyzed
        engine.execute("ANALYZE")
        assert engine.catalog.table("b").analyzed

    def test_pragma_value_forms(self, engine):
        engine.execute("PRAGMA case_sensitive_like = 1")
        assert engine._option_int("case_sensitive_like") == 1
        engine.execute("PRAGMA case_sensitive_like = 'off'")
        assert engine._option_int("case_sensitive_like") == 0
        engine.execute("PRAGMA case_sensitive_like = 'on'")
        assert engine._option_int("case_sensitive_like") == 1

    def test_unknown_option_stored_not_erroring(self, engine):
        engine.execute("PRAGMA some_future_pragma = 3")
        assert engine.options["some_future_pragma"].v == 3


class TestMySQLMaintenance:
    def test_check_table_result_shape(self, mysql_engine):
        mysql_engine.execute("CREATE TABLE t(a INT)")
        out = mysql_engine.execute("CHECK TABLE t")
        assert out.columns == ["Table", "Op", "Msg_type", "Msg_text"]

    def test_check_table_unknown_table(self, mysql_engine):
        with pytest.raises(DBError, match="no such table"):
            mysql_engine.execute("CHECK TABLE ghost")

    def test_reindex_unsupported(self, mysql_engine):
        with pytest.raises(UnsupportedError):
            mysql_engine.execute("REINDEX")


class TestStatefulDefectsStayLatent:
    """Maintenance defects never fire on a clean engine."""

    def test_clean_vacuum_after_pragma_toggle(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE INDEX i ON t((a LIKE 'x'))",
            "PRAGMA case_sensitive_like = 1", "VACUUM")

    def test_clean_update_or_replace_real_pk(self, engine):
        run(engine, "CREATE TABLE t(a, b REAL PRIMARY KEY)",
            "INSERT INTO t(a, b) VALUES (1, 1.0), (2, 2.0)",
            "UPDATE OR REPLACE t SET b = 5.0",
            "REINDEX", "VACUUM")
        assert len(engine.execute("SELECT * FROM t")) == 1
