"""Engine basics: DDL, DML, constraints, defaults, ALTER, transactions."""

import pytest

from repro.errors import CatalogError, ConstraintError, DBError
from repro.minidb.engine import Engine

from ..conftest import rows, run


class TestCreateInsertSelect:
    def test_roundtrip(self, engine):
        run(engine, "CREATE TABLE t(a, b)",
            "INSERT INTO t(a, b) VALUES (1, 'x'), (2, 'y')")
        assert rows(engine.execute("SELECT * FROM t")) == \
            [(1, "x"), (2, "y")]

    def test_duplicate_table_rejected(self, engine):
        engine.execute("CREATE TABLE t(a)")
        with pytest.raises(CatalogError, match="already exists"):
            engine.execute("CREATE TABLE t(a)")

    def test_if_not_exists(self, engine):
        engine.execute("CREATE TABLE t(a)")
        engine.execute("CREATE TABLE IF NOT EXISTS t(a)")  # no error

    def test_duplicate_column_rejected(self, engine):
        with pytest.raises(CatalogError, match="duplicate column"):
            engine.execute("CREATE TABLE t(a, a)")

    def test_unknown_table(self, engine):
        with pytest.raises(CatalogError, match="no such table"):
            engine.execute("SELECT * FROM nope")

    def test_unknown_column(self, engine):
        engine.execute("CREATE TABLE t(a)")
        with pytest.raises(CatalogError, match="no such column"):
            engine.execute("SELECT b FROM t")

    def test_insert_column_subset_fills_null(self, engine):
        run(engine, "CREATE TABLE t(a, b)", "INSERT INTO t(b) VALUES (1)")
        assert rows(engine.execute("SELECT a, b FROM t")) == [(None, 1)]

    def test_insert_wrong_arity(self, engine):
        engine.execute("CREATE TABLE t(a, b)")
        with pytest.raises(DBError):
            engine.execute("INSERT INTO t(a) VALUES (1, 2)")

    def test_default_values(self, engine):
        run(engine, "CREATE TABLE t(a DEFAULT 7, b)",
            "INSERT INTO t(b) VALUES (0)")
        assert rows(engine.execute("SELECT a FROM t")) == [(7,)]

    def test_drop_table(self, engine):
        run(engine, "CREATE TABLE t(a)", "DROP TABLE t")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM t")

    def test_drop_if_exists(self, engine):
        engine.execute("DROP TABLE IF EXISTS nope")


class TestConstraints:
    def test_unique_rejects_duplicates(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE)",
            "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(ConstraintError, match="UNIQUE"):
            engine.execute("INSERT INTO t(a) VALUES (1)")

    def test_unique_allows_multiple_nulls(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE)",
            "INSERT INTO t(a) VALUES (NULL), (NULL)")
        assert len(engine.execute("SELECT * FROM t")) == 2

    def test_not_null(self, engine):
        engine.execute("CREATE TABLE t(a NOT NULL)")
        with pytest.raises(ConstraintError, match="NOT NULL"):
            engine.execute("INSERT INTO t(a) VALUES (NULL)")

    def test_sqlite_rowid_pk_allows_null(self, engine):
        # The historical SQLite quirk: NULL is allowed in a PRIMARY KEY
        # column of an ordinary rowid table.
        run(engine, "CREATE TABLE t(a PRIMARY KEY)",
            "INSERT INTO t(a) VALUES (NULL)")
        assert len(engine.execute("SELECT * FROM t")) == 1

    def test_without_rowid_pk_rejects_null(self, engine):
        engine.execute(
            "CREATE TABLE t(a PRIMARY KEY) WITHOUT ROWID")
        with pytest.raises(ConstraintError):
            engine.execute("INSERT INTO t(a) VALUES (NULL)")

    def test_without_rowid_requires_pk(self, engine):
        with pytest.raises(DBError, match="PRIMARY KEY missing"):
            engine.execute("CREATE TABLE t(a) WITHOUT ROWID")

    def test_composite_pk(self, engine):
        run(engine, "CREATE TABLE t(a, b, PRIMARY KEY (a, b))",
            "INSERT INTO t(a, b) VALUES (1, 1), (1, 2)")
        with pytest.raises(ConstraintError):
            engine.execute("INSERT INTO t(a, b) VALUES (1, 1)")

    def test_insert_or_ignore_skips_conflicts(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE)",
            "INSERT INTO t(a) VALUES (1)",
            "INSERT OR IGNORE INTO t(a) VALUES (1), (2)")
        assert rows(engine.execute("SELECT a FROM t")) == [(1,), (2,)]

    def test_insert_or_replace_displaces(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE, b)",
            "INSERT INTO t(a, b) VALUES (1, 'old')",
            "INSERT OR REPLACE INTO t(a, b) VALUES (1, 'new')")
        assert rows(engine.execute("SELECT b FROM t")) == [("new",)]

    def test_failed_multirow_insert_is_atomic(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE)")
        with pytest.raises(ConstraintError):
            engine.execute("INSERT INTO t(a) VALUES (1), (1)")
        assert len(engine.execute("SELECT * FROM t")) == 0

    def test_unique_uses_column_collation(self, engine):
        run(engine, "CREATE TABLE t(a TEXT UNIQUE COLLATE NOCASE)",
            "INSERT INTO t(a) VALUES ('a')")
        with pytest.raises(ConstraintError):
            engine.execute("INSERT INTO t(a) VALUES ('A')")


class TestUpdateDelete:
    def test_update_with_where(self, engine):
        run(engine, "CREATE TABLE t(a, b)",
            "INSERT INTO t(a, b) VALUES (1, 0), (2, 0)",
            "UPDATE t SET b = 9 WHERE a = 2")
        assert rows(engine.execute("SELECT b FROM t ORDER BY a")) == \
            [(0,), (9,)]

    def test_update_expression_over_row(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (5)",
            "UPDATE t SET a = a + 1")
        assert rows(engine.execute("SELECT a FROM t")) == [(6,)]

    def test_update_unique_conflict(self, engine):
        run(engine, "CREATE TABLE t(a UNIQUE)",
            "INSERT INTO t(a) VALUES (1), (2)")
        with pytest.raises(ConstraintError):
            engine.execute("UPDATE t SET a = 1 WHERE a = 2")

    def test_delete_with_where(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (2), (3)",
            "DELETE FROM t WHERE a > 1")
        assert rows(engine.execute("SELECT a FROM t")) == [(1,)]

    def test_delete_all(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "DELETE FROM t")
        assert len(engine.execute("SELECT * FROM t")) == 0


class TestAlter:
    def test_rename_column(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "ALTER TABLE t RENAME COLUMN a TO z")
        assert rows(engine.execute("SELECT z FROM t")) == [(1,)]
        with pytest.raises(CatalogError):
            engine.execute("SELECT a FROM t")

    def test_rename_table(self, engine):
        run(engine, "CREATE TABLE t(a)", "ALTER TABLE t RENAME TO u")
        engine.execute("SELECT * FROM u")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM t")

    def test_add_column(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "ALTER TABLE t ADD COLUMN b DEFAULT 3")
        assert rows(engine.execute("SELECT a, b FROM t")) == [(1, 3)]

    def test_add_not_null_without_default_rejected(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        with pytest.raises(DBError, match="NOT NULL column"):
            engine.execute("ALTER TABLE t ADD COLUMN b NOT NULL")

    def test_rename_column_rewrites_plain_indexes(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)",
            "ALTER TABLE t RENAME COLUMN a TO z",
            "INSERT INTO t(z) VALUES (1)")
        assert rows(engine.execute("SELECT z FROM t WHERE z = 1")) == \
            [(1,)]


class TestTransactions:
    def test_rollback_restores(self, engine):
        run(engine, "CREATE TABLE t(a)", "BEGIN",
            "INSERT INTO t(a) VALUES (1)", "ROLLBACK")
        assert len(engine.execute("SELECT * FROM t")) == 0

    def test_commit_keeps(self, engine):
        run(engine, "CREATE TABLE t(a)", "BEGIN",
            "INSERT INTO t(a) VALUES (1)", "COMMIT")
        assert len(engine.execute("SELECT * FROM t")) == 1

    def test_nested_begin_rejected(self, engine):
        engine.execute("BEGIN")
        with pytest.raises(DBError, match="within a transaction"):
            engine.execute("BEGIN")

    def test_commit_without_begin(self, engine):
        with pytest.raises(DBError, match="no transaction"):
            engine.execute("COMMIT")


class TestIntrospection:
    def test_sqlite_master(self, engine):
        run(engine, "CREATE TABLE t(a)", "CREATE INDEX i ON t(a)")
        out = rows(engine.execute(
            "SELECT type, name FROM sqlite_master"))
        assert ("table", "t") in out and ("index", "i") in out

    def test_information_schema(self, mysql_engine):
        mysql_engine.execute("CREATE TABLE t(a INT)")
        out = rows(mysql_engine.execute(
            "SELECT table_name FROM information_schema.tables"))
        assert ("t",) in out

    def test_statement_counter(self, engine):
        engine.execute("CREATE TABLE t(a)")
        engine.execute("INSERT INTO t(a) VALUES (1)")
        assert engine.statements_executed == 2
