"""Catalog unit tests: lookups, mutations, name rules."""

import pytest

from repro.errors import CatalogError
from repro.minidb.catalog import Catalog, Column, Index, Table, View
from repro.minidb.statements import IndexedExpr, Select, SelectItem
from repro.sqlast.nodes import BinaryNode, BinaryOp, CollateNode, ColumnNode, LiteralNode
from repro.values import Value


def make_table(name="t", columns=("a", "b")):
    return Table(name=name,
                 columns=[Column(name=c, type_name=None)
                          for c in columns])


def make_index(name="i", table="t", column="a", **kwargs):
    return Index(name=name, table=table,
                 exprs=[IndexedExpr(expr=ColumnNode(table, column))],
                 **kwargs)


class TestTable:
    def test_column_lookup_case_insensitive(self):
        table = make_table()
        assert table.column("A").name == "a"

    def test_unknown_column(self):
        with pytest.raises(CatalogError, match="no such column"):
            make_table().column("z")

    def test_column_names_order(self):
        assert make_table().column_names() == ["a", "b"]

    def test_affinity_from_type(self):
        column = Column(name="x", type_name="VARCHAR(10)")
        assert column.affinity == "TEXT"
        assert Column(name="y", type_name=None).affinity is None

    def test_mysql_type_helpers(self):
        column = Column(name="x", type_name="TINYINT UNSIGNED")
        assert column.mysql_base_type == "TINYINT"
        assert column.mysql_unsigned


class TestIndex:
    def test_partial_flag(self):
        index = make_index(where=LiteralNode(Value.integer(1)))
        assert index.is_partial
        assert not make_index().is_partial

    def test_expression_index_detection(self):
        plain = make_index()
        assert not plain.is_expression_index
        collated = Index(name="i2", table="t", exprs=[IndexedExpr(
            expr=CollateNode(ColumnNode("t", "a"), "NOCASE"))])
        assert not collated.is_expression_index
        computed = Index(name="i3", table="t", exprs=[IndexedExpr(
            expr=BinaryNode(BinaryOp.ADD, ColumnNode("t", "a"),
                            LiteralNode(Value.integer(1))))])
        assert computed.is_expression_index


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        assert catalog.has_table("T")
        assert catalog.table("t").name == "t"

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        with pytest.raises(CatalogError):
            catalog.add_table(make_table())

    def test_view_table_namespace_shared(self):
        catalog = Catalog()
        catalog.add_table(make_table("x"))
        with pytest.raises(CatalogError):
            catalog.add_view(View(name="x", select=Select(items=[
                SelectItem(expr=None)])))

    def test_drop_table_cascades_indexes_and_stats(self):
        from repro.minidb.catalog import Statistics

        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.add_index(make_index())
        catalog.statistics["s"] = Statistics(name="s", table="t",
                                             columns=["a"])
        catalog.drop_table("t", if_exists=False)
        assert catalog.indexes == {} and catalog.statistics == {}

    def test_drop_missing_with_if_exists(self):
        catalog = Catalog()
        assert catalog.drop_table("ghost", if_exists=True) is False
        with pytest.raises(CatalogError):
            catalog.drop_table("ghost", if_exists=False)

    def test_rename_table_updates_indexes(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.add_index(make_index())
        catalog.rename_table("t", "u")
        assert catalog.index("i").table == "u"
        assert catalog.has_table("u") and not catalog.has_table("t")

    def test_rename_collision(self):
        catalog = Catalog()
        catalog.add_table(make_table("a"))
        catalog.add_table(make_table("b"))
        with pytest.raises(CatalogError):
            catalog.rename_table("a", "b")

    def test_children_of(self):
        catalog = Catalog()
        parent = make_table("p")
        child = make_table("c")
        child.inherits = "p"
        catalog.add_table(parent)
        catalog.add_table(child)
        assert [t.name for t in catalog.children_of("p")] == ["c"]
        with pytest.raises(CatalogError, match="inherit"):
            catalog.drop_table("p", if_exists=False)

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.add_index(make_index("i1"))
        catalog.add_index(make_index("i2"))
        assert len(catalog.indexes_on("T")) == 2

    def test_all_relation_names(self):
        catalog = Catalog()
        catalog.add_table(make_table("t"))
        catalog.add_view(View(name="v", select=Select(items=[
            SelectItem(expr=None)])))
        assert catalog.all_relation_names() == ["t", "v"]
