"""Engine-vs-oracle consistency: the clean MiniDB engine must agree with
the exact interpreter on every expression in the generated fragment.

This is the MiniDB analogue of the real-SQLite differential test, and
the property that guarantees a clean engine never triggers the
containment oracle (zero false positives).
"""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.exprgen import ExpressionGenerator
from repro.core.pivot import PivotSelector
from repro.core.querygen import QueryGenerator
from repro.core.runner import PQSRunner, RunnerConfig
from repro.dialects import get_dialect
from repro.interp import make_interpreter
from repro.interp.base import EvalError
from repro.rng import RandomSource
from repro.sqlast.render import render_expr
from repro.values import Value


@pytest.mark.parametrize("dialect", ["sqlite", "mysql", "postgres"])
class TestExpressionConsistency:
    """SELECT <expr> on a one-row table == interpreter on that row."""

    def test_random_expressions_agree(self, dialect):
        conn = MiniDBConnection(dialect)
        conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT)"
                     if dialect != "sqlite" else
                     "CREATE TABLE t0(c0 INT, c1 TEXT COLLATE NOCASE)")
        conn.execute("INSERT INTO t0(c0, c1) VALUES (5, 'aB')")
        row = conn.execute("SELECT * FROM t0")[0]
        env = {"t0.c0": row[0], "t0.c1": row[1]}

        rng = RandomSource(321)
        generator = ExpressionGenerator(get_dialect(dialect), rng,
                                        max_depth=4)
        columns = []
        from repro.sqlast.nodes import ColumnNode

        columns.append((ColumnNode("t0", "c0",
                                   affinity="INTEGER"
                                   if dialect == "sqlite" else None),
                        "number"))
        columns.append((ColumnNode("t0", "c1",
                                   collation="NOCASE"
                                   if dialect == "sqlite" else None,
                                   affinity="TEXT"
                                   if dialect == "sqlite" else None),
                        "text"))
        generator.set_columns(columns, env)
        interp = make_interpreter(dialect)

        checked = 0
        for _ in range(600):
            expr = generator.scalar()
            try:
                expected = interp.evaluate(expr, env)
            except EvalError:
                continue
            sql = f"SELECT {render_expr(expr, dialect)} FROM t0"
            try:
                got = conn.execute(sql)[0][0]
            except Exception as exc:  # noqa: BLE001
                pytest.fail(f"engine rejected {sql}: {exc}")
            checked += 1
            assert _same(got, expected), \
                f"{sql}: oracle={expected!r} engine={got!r}"
        assert checked > 300


def _same(a: Value, b: Value) -> bool:
    if a.is_null and b.is_null:
        return True
    if a.t is not b.t:
        return False
    if isinstance(a.v, float) and isinstance(b.v, float):
        if a.v != a.v and b.v != b.v:
            return True
    return a.v == b.v


@pytest.mark.parametrize("dialect", ["sqlite", "mysql", "postgres"])
class TestRunnerSoundness:
    """The full PQS loop over clean engines must report nothing."""

    def test_no_findings_on_clean_engine(self, dialect):
        runner = PQSRunner(lambda: MiniDBConnection(dialect),
                           RunnerConfig(dialect=dialect, seed=2718))
        stats = runner.run(25)
        details = [(r.oracle.value, r.message,
                    r.test_case.statements[-1][:120])
                   for r in stats.reports]
        assert stats.reports == [], details
        assert stats.queries > 200

    def test_rectification_disabled_is_unsound(self, dialect):
        # The ablation knob: without Algorithm 3 the containment oracle
        # misfires on a perfectly correct engine.
        config = RunnerConfig(dialect=dialect, seed=2718, rectify=False)
        runner = PQSRunner(lambda: MiniDBConnection(dialect), config)
        stats = runner.run(12)
        false_alarms = [r for r in stats.reports
                        if r.oracle.value == "contains"]
        assert false_alarms, "rectification ablation produced no " \
                             "false positives?"
