"""The three injected planner defects only the multi-plan oracle can
reach (DESIGN.md §12).

Each defect corrupts results *consistently* on forced plans while the
planner's own free choices stay correct, so:

* the unforced statement stream is bit-identical between the buggy and
  the clean engine — the pivot-containment oracle can never see the
  defect (its query executions all take the planner's chosen plan);
* the multi-plan oracle, which forces each distinct feasible plan and
  cross-checks the row multisets, reports a divergence.

These are the ground-truth fixtures behind ``bench_multiplan.py``.
"""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.containment import check_containment
from repro.core.querygen import SynthesizedQuery
from repro.interp import make_interpreter
from repro.minidb.bugs import BUG_CATALOG, BugRegistry
from repro.multiplan import MultiPlanOracle, PlannerHints
from repro.sqlast.nodes import ColumnNode
from repro.values import Value

SEMANTICS = make_interpreter("sqlite").semantics

#: Per defect: the state, the query (with the pivot row the containment
#: oracle checks), and the forcing hints whose execution goes wrong.
SCENARIOS = {
    "sqlite-forced-index-fencepost": {
        "statements": [
            "CREATE TABLE t0 (c0 TEXT)",
            "CREATE INDEX i0 ON t0 (c0)",
            "INSERT INTO t0 VALUES ('a'), ('b'), ('c')",
        ],
        "query": SynthesizedQuery(
            sql="SELECT c0 FROM t0",
            targets=[ColumnNode("t0", "c0")],
            expected=[Value.text("a")], table_names=["t0"]),
        "bad_hints": PlannerHints(force_index="i0"),
    },
    "sqlite-stale-stats-join": {
        "statements": [
            "CREATE TABLE t0 (c0 INTEGER)",
            "CREATE TABLE t1 (c1 INTEGER)",
            "INSERT INTO t0 VALUES (1), (2)",
            "INSERT INTO t1 VALUES (1), (3)",
        ],
        "query": SynthesizedQuery(
            sql="SELECT t0.c0, t1.c1 FROM t0, t1",
            targets=[ColumnNode("t0", "c0"), ColumnNode("t1", "c1")],
            expected=[Value.integer(1), Value.integer(3)],
            table_names=["t0", "t1"]),
        "bad_hints": PlannerHints(force_full_scan=True, analyze=True),
    },
    "sqlite-like-prefix-range": {
        "statements": [
            "CREATE TABLE t0 (c0 TEXT)",
            "CREATE INDEX i0 ON t0 (c0)",
            "INSERT INTO t0 VALUES ('ab'), ('abc'), ('b'), ('ba')",
        ],
        "query": SynthesizedQuery(
            sql="SELECT c0 FROM t0 WHERE c0 LIKE 'ab%'",
            targets=[ColumnNode("t0", "c0")],
            expected=[Value.text("ab")], table_names=["t0"]),
        "bad_hints": PlannerHints(force_index="i0"),
    },
}


def build(bug_id, scenario) -> MiniDBConnection:
    bugs = BugRegistry({bug_id} if bug_id else set())
    conn = MiniDBConnection("sqlite", bugs=bugs)
    for sql in scenario["statements"]:
        conn.execute(sql)
    return conn


@pytest.mark.parametrize("bug_id", sorted(SCENARIOS))
class TestDefectReach:
    def test_cataloged_for_the_multiplan_oracle(self, bug_id):
        bug = BUG_CATALOG[bug_id]
        assert bug.oracle == "multiplan"
        assert bug.dialect == "sqlite"

    def test_inert_on_the_unforced_stream(self, bug_id):
        """Buggy and clean engines agree row-for-row when the planner
        chooses freely — the defect cannot leak into PQS's stream."""
        scenario = SCENARIOS[bug_id]
        buggy = build(bug_id, scenario)
        clean = build(None, scenario)
        sql = scenario["query"].sql
        assert buggy.execute(sql) == clean.execute(sql)

    def test_containment_oracle_is_blind(self, bug_id):
        """The pivot row is in the (unforced) result on the buggy
        engine, so containment passes and reports nothing."""
        scenario = SCENARIOS[bug_id]
        buggy = build(bug_id, scenario)
        assert check_containment(buggy, scenario["query"], SEMANTICS)
        assert check_containment(buggy, scenario["query"], SEMANTICS,
                                 use_intersect=True)

    def test_multiplan_oracle_reports_the_divergence(self, bug_id):
        scenario = SCENARIOS[bug_id]
        oracle = MultiPlanOracle()
        divergence = oracle.check(build(bug_id, scenario),
                                  scenario["query"], SEMANTICS)
        assert divergence is not None, bug_id
        deviant_hints = [run.hints for run in divergence.runs
                         if run.deviant]
        assert scenario["bad_hints"] in deviant_hints

    def test_clean_engine_forced_plans_agree(self, bug_id):
        """Plan forcing is behavior-preserving on a correct planner."""
        scenario = SCENARIOS[bug_id]
        oracle = MultiPlanOracle()
        assert oracle.check(build(None, scenario), scenario["query"],
                            SEMANTICS) is None
