"""SELECT pipeline: joins, DISTINCT, GROUP BY/aggregates, ORDER BY,
LIMIT, compound operators, views, and star expansion."""

import pytest

from repro.errors import DBError

from ..conftest import rows, run


@pytest.fixture
def populated(engine):
    run(engine, "CREATE TABLE t(a, b)",
        "INSERT INTO t(a, b) VALUES (1, 'x'), (2, 'y'), (3, 'x'), "
        "(NULL, 'z')")
    return engine


class TestProjection:
    def test_star(self, populated):
        assert len(populated.execute("SELECT * FROM t")) == 4

    def test_table_star(self, populated):
        out = populated.execute("SELECT t.* FROM t")
        assert out.columns == ["a", "b"]

    def test_expressions(self, populated):
        out = rows(populated.execute("SELECT a + 1 FROM t WHERE a = 1"))
        assert out == [(2,)]

    def test_alias_names(self, populated):
        out = populated.execute("SELECT a AS x FROM t")
        assert out.columns == ["x"]

    def test_no_from(self, engine):
        assert rows(engine.execute("SELECT 1 + 1")) == [(2,)]


class TestWhere:
    def test_three_valued_where_keeps_only_true(self, populated):
        # NULL rows must be dropped, not kept.
        out = rows(populated.execute("SELECT b FROM t WHERE a > 1"))
        assert sorted(out) == [("x",), ("y",)]

    def test_where_isnull(self, populated):
        out = rows(populated.execute("SELECT b FROM t WHERE a ISNULL"))
        assert out == [("z",)]


class TestJoins:
    def test_cross_join(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1), (2)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (10), (20)")
        out = engine.execute("SELECT x, y FROM a, b")
        assert len(out) == 4

    def test_inner_join_on(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1), (2)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (2), (3)")
        out = rows(engine.execute(
            "SELECT x, y FROM a INNER JOIN b ON a.x = b.y"))
        assert out == [(2, 2)]

    def test_left_join_pads_nulls(self, engine):
        run(engine, "CREATE TABLE a(x)", "INSERT INTO a(x) VALUES (1), (2)",
            "CREATE TABLE b(y)", "INSERT INTO b(y) VALUES (2)")
        out = rows(engine.execute(
            "SELECT x, y FROM a LEFT JOIN b ON a.x = b.y"))
        assert sorted(out, key=str) == [(1, None), (2, 2)]

    def test_ambiguous_column(self, engine):
        run(engine, "CREATE TABLE a(x)", "CREATE TABLE b(x)")
        with pytest.raises(DBError, match="ambiguous"):
            engine.execute("SELECT x FROM a, b")


class TestDistinct:
    def test_dedups_rows(self, populated):
        out = rows(populated.execute("SELECT DISTINCT b FROM t"))
        assert sorted(out) == [("x",), ("y",), ("z",)]

    def test_nulls_are_one_group(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (NULL), (NULL), (1)")
        assert len(engine.execute("SELECT DISTINCT a FROM t")) == 2

    def test_numeric_cross_type_dedup(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (1.0)")
        assert len(engine.execute("SELECT DISTINCT a FROM t")) == 1


class TestAggregates:
    def test_count_star_and_column(self, populated):
        out = rows(populated.execute("SELECT COUNT(*), COUNT(a) FROM t"))
        assert out == [(4, 3)]

    def test_sum_avg(self, populated):
        out = rows(populated.execute("SELECT SUM(a), AVG(a) FROM t"))
        assert out == [(6, 2.0)]

    def test_min_max(self, populated):
        assert rows(populated.execute("SELECT MIN(a), MAX(a) FROM t")) \
            == [(1, 3)]

    def test_empty_table_aggregates(self, engine):
        run(engine, "CREATE TABLE e(a)")
        out = rows(engine.execute("SELECT COUNT(*), SUM(a) FROM e"))
        assert out == [(0, None)]

    def test_group_by(self, populated):
        out = rows(populated.execute(
            "SELECT b, COUNT(*) FROM t GROUP BY b"))
        assert sorted(out) == [("x", 2), ("y", 1), ("z", 1)]

    def test_group_by_having(self, populated):
        out = rows(populated.execute(
            "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 1"))
        assert out == [("x", 2)]

    def test_aggregate_in_expression(self, populated):
        out = rows(populated.execute("SELECT MAX(a) + 10 FROM t"))
        assert out == [(13,)]

    def test_two_arg_min_is_scalar_not_aggregate(self, populated):
        out = rows(populated.execute(
            "SELECT MIN(a, 2) FROM t WHERE a = 3"))
        assert out == [(2,)]

    def test_sum_text_coerces_sqlite(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES ('5abc'), (2)")
        assert rows(engine.execute("SELECT SUM(a) FROM t")) == [(7,)]


class TestOrderLimit:
    def test_order_asc_desc(self, populated):
        out = rows(populated.execute("SELECT a FROM t ORDER BY a DESC"))
        assert out == [(3,), (2,), (1,), (None,)]

    def test_nulls_first_ascending_sqlite(self, populated):
        out = rows(populated.execute("SELECT a FROM t ORDER BY a"))
        assert out[0] == (None,)

    def test_order_by_expression(self, populated):
        out = rows(populated.execute(
            "SELECT a FROM t WHERE a NOTNULL ORDER BY -a"))
        assert out == [(3,), (2,), (1,)]

    def test_limit_offset(self, populated):
        out = rows(populated.execute(
            "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1"))
        assert out == [(1,), (2,)]

    def test_negative_limit_means_all(self, populated):
        assert len(populated.execute("SELECT a FROM t LIMIT -1")) == 4


class TestCompound:
    def test_intersect(self, engine):
        out = rows(engine.execute("SELECT 1 INTERSECT SELECT 1"))
        assert out == [(1,)]
        assert rows(engine.execute("SELECT 1 INTERSECT SELECT 2")) == []

    def test_intersect_null_equality(self, engine):
        # Compound set operations treat NULLs as equal.
        out = rows(engine.execute("SELECT NULL INTERSECT SELECT NULL"))
        assert out == [(None,)]

    def test_union_dedups(self, engine):
        out = rows(engine.execute("SELECT 1 UNION SELECT 1"))
        assert out == [(1,)]

    def test_union_all_keeps(self, engine):
        assert len(engine.execute("SELECT 1 UNION ALL SELECT 1")) == 2

    def test_except(self, engine):
        out = rows(engine.execute("SELECT 1 EXCEPT SELECT 2"))
        assert out == [(1,)]
        assert rows(engine.execute("SELECT 1 EXCEPT SELECT 1")) == []

    def test_column_count_mismatch(self, engine):
        with pytest.raises(DBError, match="number of result columns"):
            engine.execute("SELECT 1 INTERSECT SELECT 1, 2")

    def test_intersect_numeric_affinity(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)")
        out = rows(engine.execute(
            "SELECT 1.0 INTERSECT SELECT a FROM t"))
        assert len(out) == 1


class TestViews:
    def test_view_tracks_base_table(self, engine):
        run(engine, "CREATE TABLE t(a)", "INSERT INTO t(a) VALUES (1)",
            "CREATE VIEW v AS SELECT t.a FROM t",
            "INSERT INTO t(a) VALUES (2)")
        assert rows(engine.execute("SELECT a FROM v")) == [(1,), (2,)]

    def test_view_with_where(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "INSERT INTO t(a) VALUES (1), (5)",
            "CREATE VIEW v AS SELECT t.a FROM t WHERE t.a > 2")
        assert rows(engine.execute("SELECT * FROM v")) == [(5,)]

    def test_view_column_inherits_affinity(self, engine):
        run(engine, "CREATE TABLE t(a INT)",
            "INSERT INTO t(a) VALUES (7)",
            "CREATE VIEW v AS SELECT t.a FROM t")
        # INT affinity applies through the view: text '7' equals 7.
        assert rows(engine.execute(
            "SELECT a FROM v WHERE a = '7'")) == [(7,)]

    def test_view_invalid_body_rejected_eagerly(self, engine):
        engine.execute("CREATE TABLE t(a)")
        with pytest.raises(DBError):
            engine.execute("CREATE VIEW v AS SELECT nope FROM t")

    def test_drop_view(self, engine):
        run(engine, "CREATE TABLE t(a)",
            "CREATE VIEW v AS SELECT t.a FROM t", "DROP VIEW v")
        with pytest.raises(DBError):
            engine.execute("SELECT * FROM v")
