"""Property-based storage invariants (hypothesis).

After ANY sequence of successful DML on a clean engine, every index's
entries must be exactly consistent with the table's rows — the invariant
whose violation is what the corruption defects (and the error oracle)
are about.  Hypothesis drives random DML programs; the checker recomputes
index keys from scratch and compares.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DBCrash, DBError
from repro.minidb.engine import Engine

small_ints = st.integers(min_value=-5, max_value=5)
texts = st.sampled_from(["a", "A", "b", "ab", "", " a"])
values = st.one_of(st.none(), small_ints, texts)


def literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, int):
        return str(value)
    return "'" + value.replace("'", "''") + "'"


dml_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), values, values),
        st.tuples(st.just("update"), values, small_ints),
        st.tuples(st.just("delete"), small_ints),
        st.tuples(st.just("reindex")),
        st.tuples(st.just("vacuum")),
    ),
    max_size=25)


def check_index_consistency(engine: Engine) -> None:
    for index in engine.catalog.indexes.values():
        table = engine.catalog.table(index.table)
        expected = []
        for rowid, row in table.rows.items():
            key = engine._index_key(index, table, row)
            if key is not None:
                expected.append((tuple(map(repr, key)), rowid))
        actual = [(tuple(map(repr, key)), rowid)
                  for key, rowid in index.entries]
        assert sorted(actual) == sorted(expected), index.name


class TestIndexConsistency:
    @given(dml_ops)
    @settings(max_examples=60, deadline=None)
    def test_plain_and_partial_indexes_stay_consistent(self, ops):
        engine = Engine("sqlite")
        engine.execute("CREATE TABLE t(a, b)")
        engine.execute("CREATE INDEX i1 ON t(a)")
        engine.execute("CREATE INDEX i2 ON t(b) WHERE b NOT NULL")
        engine.execute("CREATE INDEX i3 ON t((a || 'x'))")
        self._drive(engine, ops)
        check_index_consistency(engine)

    @given(dml_ops)
    @settings(max_examples=60, deadline=None)
    def test_unique_indexes_stay_consistent(self, ops):
        engine = Engine("sqlite")
        engine.execute("CREATE TABLE t(a UNIQUE, b)")
        self._drive(engine, ops)
        check_index_consistency(engine)
        # Uniqueness itself holds: no two non-NULL equal keys.
        index = engine.catalog.indexes_on("t")[0]
        keys = [repr(k) for k, _ in index.entries
                if not any(v.is_null for v in k)]
        assert len(keys) == len(set(keys))

    @staticmethod
    def _drive(engine: Engine, ops) -> None:
        for op in ops:
            try:
                if op[0] == "insert":
                    engine.execute(
                        f"INSERT INTO t(a, b) VALUES "
                        f"({literal(op[1])}, {literal(op[2])})")
                elif op[0] == "update":
                    engine.execute(
                        f"UPDATE t SET a = {literal(op[1])} "
                        f"WHERE b = {op[2]}")
                elif op[0] == "delete":
                    engine.execute(f"DELETE FROM t WHERE a = {op[1]}")
                elif op[0] == "reindex":
                    engine.execute("REINDEX")
                elif op[0] == "vacuum":
                    engine.execute("VACUUM")
            except (DBError, DBCrash):
                continue


class TestCorruptionDefectBreaksInvariant:
    def test_real_pk_defect_detected_by_checker(self):
        from repro.minidb.bugs import BugRegistry

        engine = Engine("sqlite",
                        BugRegistry({"sqlite-real-pk-corrupt"}))
        for sql in ("CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY)",
                    "INSERT INTO t1(c0, c1) VALUES (1, 10.0), (1, 0.0)",
                    "UPDATE OR REPLACE t1 SET c1 = 1"):
            engine.execute(sql)
        with __import__("pytest").raises(AssertionError):
            check_index_consistency(engine)
