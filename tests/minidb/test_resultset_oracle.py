"""Whole-result-set validation: for random WHERE conditions, the engine's
result must equal the oracle's row-by-row filtering of the table.

This is strictly stronger than pivot containment (it checks *every* row,
both directions) and pins the executor's filter semantics to the exact
interpreter — the foundation the paper's §5 argument rests on ("our
approach is, in principle, mostly as effective as an approach that
checks all rows").
"""

import pytest

from repro.adapters.minidb_adapter import MiniDBConnection
from repro.core.exprgen import ExpressionGenerator
from repro.dialects import get_dialect
from repro.interp import make_interpreter
from repro.interp.base import EvalError
from repro.rng import RandomSource
from repro.sqlast.nodes import ColumnNode
from repro.sqlast.render import render_expr
from repro.values import Value


def seed_database(dialect: str):
    conn = MiniDBConnection(dialect)
    if dialect == "sqlite":
        conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT COLLATE NOCASE, "
                     "c2)")
        conn.execute("INSERT INTO t0(c0, c1, c2) VALUES "
                     "(1, 'a', X'61'), (2, 'A', 0.5), (NULL, 'b', 3), "
                     "(-128, ' a', NULL), (127, 'ab', '5abc')")
        columns = [("c0", "number", "INTEGER", None),
                   ("c1", "text", "TEXT", "NOCASE"),
                   ("c2", "any", None, None)]
    elif dialect == "mysql":
        conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT, c2 DOUBLE)")
        conn.execute("INSERT INTO t0(c0, c1, c2) VALUES "
                     "(1, 'a', 0.5), (2, 'A', -1.5), (NULL, '0.5', 0), "
                     "(-128, ' a', NULL), (127, 'ab', 9.25)")
        columns = [("c0", "number", None, None),
                   ("c1", "text", None, None),
                   ("c2", "number", None, None)]
    else:
        conn.execute("CREATE TABLE t0(c0 INT, c1 TEXT, c2 BOOLEAN)")
        conn.execute("INSERT INTO t0(c0, c1, c2) VALUES "
                     "(1, 'a', TRUE), (2, 'A', FALSE), "
                     "(NULL, 'b', NULL), (-128, ' a', TRUE), "
                     "(127, 'ab', FALSE)")
        columns = [("c0", "number", None, None),
                   ("c1", "text", None, None),
                   ("c2", "boolean", None, None)]
    nodes = [(ColumnNode("t0", name, collation=coll,
                         affinity=aff if dialect == "sqlite" else None),
              bucket)
             for name, bucket, aff, coll in columns]
    return conn, nodes


@pytest.mark.parametrize("dialect", ["sqlite", "mysql", "postgres"])
class TestResultSetEquality:
    def test_filtering_matches_oracle_exactly(self, dialect):
        conn, nodes = seed_database(dialect)
        rows = conn.execute("SELECT * FROM t0")
        envs = []
        for row in rows:
            envs.append({f"t0.{name}": value for (name, _b, _a, _c),
                         value in zip(
                             [("c0", 0, 0, 0), ("c1", 0, 0, 0),
                              ("c2", 0, 0, 0)], row)})
        rng = RandomSource(99)
        generator = ExpressionGenerator(get_dialect(dialect), rng,
                                        max_depth=3)
        generator.set_columns(nodes)
        interp = make_interpreter(dialect)

        checked = 0
        for _ in range(400):
            condition = generator.condition()
            try:
                expected = []
                for env, row in zip(envs, rows):
                    if interp.evaluate_bool(condition, env) is True:
                        expected.append(tuple(map(repr, row)))
            except EvalError:
                continue
            sql = (f"SELECT * FROM t0 WHERE "
                   f"{render_expr(condition, dialect)}")
            try:
                got = [tuple(map(repr, row))
                       for row in conn.execute(sql)]
            except Exception as exc:  # noqa: BLE001
                if dialect == "sqlite":
                    pytest.fail(f"engine rejected {sql}: {exc}")
                continue  # strict dialects: runtime errors on other rows
            checked += 1
            assert sorted(got) == sorted(expected), sql
        assert checked > 200
