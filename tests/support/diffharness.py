"""Differential harness: oracle interpreter vs the real SQLite.

This is the ground-truth check behind the paper's claim that the AST
interpreter is an *exact* oracle: we generate random expression trees in
the fragment the PQS generator emits, evaluate them with
:class:`repro.interp.Interpreter`, and compare against the stdlib
``sqlite3`` engine.  A mismatch is either an interpreter bug (ours) or a
real SQLite bug (exciting, but unlikely at this expression depth).

The harness intentionally mirrors the *generator's* constraints — e.g.
SUBSTR start/length arguments are small integer literals, because
SQLite's own substr() suffers int64 overflow for astronomically large
computed offsets and SQLancer, like us, simply does not generate those.
"""

from __future__ import annotations

import random

from repro.interp import make_interpreter
from repro.sqlast.nodes import (
    BetweenNode,
    BinaryNode,
    BinaryOp,
    CaseNode,
    CastNode,
    CollateNode,
    ColumnNode,
    Expr,
    FunctionNode,
    InListNode,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
)
from repro.sqlast.render import render_expr
from repro.values import NULL, Value

INT_POOL = [0, 1, -1, 2, 3, 10, 255, -128, 2**31 - 1, -(2**31), 2**63 - 1,
            -(2**63), 2851427734582196970]
REAL_POOL = [0.0, 0.5, -0.5, -1.5, 1e10, 9e99, 1e-5, 123.25]
TEXT_POOL = ["", "a", "A", "ab", "aB", "5abc", "./", "1.0", " 12 ", "%",
             "a%", "_", "*", "abc", "9e99", "28514277345821969705", "  a",
             "a  ", "0.5", "-1"]
# ASCII-only, NUL-free blobs: SQLite's C-string handling of embedded NUL
# bytes in TEXT values (LENGTH stops at NUL, HEX does not) is outside the
# modeled fragment, exactly as SQLancer excludes untestable corners.
BLOB_POOL = [b"", b"ab", b"a", b"zz", b"AB"]
CAST_TYPES = ["INTEGER", "REAL", "TEXT", "BLOB", "NUMERIC"]
COLLATIONS = ["BINARY", "NOCASE", "RTRIM"]

#: (name, arity); SUBSTR handled specially (small literal offsets).
FUNCTIONS = [("ABS", 1), ("LENGTH", 1), ("LOWER", 1), ("UPPER", 1),
             ("TYPEOF", 1), ("COALESCE", 2), ("COALESCE", 3), ("IFNULL", 2),
             ("NULLIF", 2), ("MIN", 2), ("MAX", 3), ("INSTR", 2),
             ("TRIM", 1), ("LTRIM", 2), ("RTRIM", 2), ("ROUND", 1),
             ("HEX", 1)]

BINARY_OPS = [
    BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD,
    BinaryOp.EQ, BinaryOp.NE, BinaryOp.LT, BinaryOp.LE, BinaryOp.GT,
    BinaryOp.GE, BinaryOp.IS, BinaryOp.IS_NOT, BinaryOp.AND, BinaryOp.OR,
    BinaryOp.CONCAT, BinaryOp.LIKE, BinaryOp.NOT_LIKE, BinaryOp.GLOB,
    BinaryOp.BITAND, BinaryOp.BITOR, BinaryOp.SHL, BinaryOp.SHR,
]


class ExprFuzzer:
    """Random expression trees in the exactly-modeled SQLite fragment."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def literal(self) -> LiteralNode:
        k = self.rng.randrange(6)
        if k == 0:
            return LiteralNode(NULL)
        if k == 1:
            return LiteralNode(Value.integer(self.rng.choice(INT_POOL)))
        if k == 2:
            return LiteralNode(Value.real(self.rng.choice(REAL_POOL)))
        if k == 3:
            return LiteralNode(Value.text(self.rng.choice(TEXT_POOL)))
        if k == 4:
            return LiteralNode(Value.blob(self.rng.choice(BLOB_POOL)))
        return LiteralNode(Value.integer(self.rng.randrange(-100, 100)))

    def expr(self, depth: int) -> Expr:
        if depth <= 0:
            return self.literal()
        k = self.rng.randrange(16)
        if k < 2:
            return self.literal()
        if k < 4:
            op = self.rng.choice([UnaryOp.NOT, UnaryOp.MINUS, UnaryOp.BITNOT,
                                  UnaryOp.PLUS])
            return UnaryNode(op, self.expr(depth - 1))
        if k < 5:
            return PostfixNode(self.rng.choice(list(PostfixOp)),
                               self.expr(depth - 1))
        if k < 6:
            name, arity = self.rng.choice(FUNCTIONS)
            return FunctionNode(name,
                                tuple(self.expr(depth - 1)
                                      for _ in range(arity)))
        if k < 7:
            # SUBSTR with small literal offsets (see module docstring).
            # Two-argument ROUND is excluded from the exactly-modeled
            # fragment: SQLite's digit extraction for |x|*10^n beyond 15
            # significant digits depends on its custom printf.
            start = LiteralNode(Value.integer(self.rng.randrange(-6, 7)))
            length = LiteralNode(Value.integer(self.rng.randrange(-6, 7)))
            return FunctionNode("SUBSTR", (self.expr(depth - 1), start,
                                           length))
        if k < 8:
            return CastNode(self.expr(depth - 1), self.rng.choice(CAST_TYPES))
        if k < 9:
            return CollateNode(self.expr(depth - 1),
                               self.rng.choice(COLLATIONS))
        if k < 10:
            return BetweenNode(self.expr(depth - 1), self.expr(depth - 1),
                               self.expr(depth - 1), self.rng.random() < 0.5)
        if k < 11:
            items = tuple(self.expr(depth - 1)
                          for _ in range(self.rng.randrange(1, 4)))
            return InListNode(self.expr(depth - 1), items,
                              self.rng.random() < 0.5)
        if k < 12:
            whens = tuple((self.expr(depth - 1), self.expr(depth - 1))
                          for _ in range(self.rng.randrange(1, 3)))
            else_ = self.expr(depth - 1) if self.rng.random() < 0.7 else None
            operand = self.expr(depth - 1) if self.rng.random() < 0.3 else None
            return CaseNode(operand, whens, else_)
        op = self.rng.choice(BINARY_OPS)
        return BinaryNode(op, self.expr(depth - 1), self.expr(depth - 1))


def sqlite_result(connection, expr: Expr):
    """Evaluate *expr* with the real SQLite; returns (ok, value_or_error)."""
    sql = "SELECT " + render_expr(expr)
    try:
        row = connection.execute(sql).fetchone()
    except Exception as exc:  # noqa: BLE001 - sqlite3 raises many types
        return False, str(exc)
    value = row[0]
    if isinstance(value, memoryview):
        value = bytes(value)
    return True, value


def oracle_result(interpreter, expr: Expr):
    """Evaluate *expr* with the oracle; returns (ok, python_value_or_error)."""
    try:
        out = interpreter.evaluate(expr, {})
    except Exception as exc:  # noqa: BLE001
        return False, str(exc)
    return True, None if out.is_null else out.v


def values_match(expected, got) -> bool:
    if isinstance(expected, float) and isinstance(got, float):
        if expected != expected and got != got:
            return True
        return expected == got
    return type(expected) is type(got) and expected == got


def minimize_mismatch(connection, interpreter, expr: Expr) -> Expr:
    """Descend into *expr* to find the smallest mismatching subtree."""
    current = expr
    while True:
        for child in current.children():
            ok_o, exp = oracle_result(interpreter, child)
            ok_e, got = sqlite_result(connection, child)
            if ok_o and ok_e and not values_match(exp, got):
                current = child
                break
        else:
            return current


def run_differential(iterations: int, seed: int, depth: int = 3):
    """Run the differential loop; returns (checked, list_of_mismatches)."""
    import sqlite3

    fuzzer = ExprFuzzer(seed)
    interpreter = make_interpreter("sqlite")
    connection = sqlite3.connect(":memory:")
    mismatches = []
    checked = 0
    for _ in range(iterations):
        expr = fuzzer.expr(depth)
        ok_o, expected = oracle_result(interpreter, expr)
        if not ok_o:
            continue
        ok_e, got = sqlite_result(connection, expr)
        if not ok_e:
            mismatches.append(("engine-error", render_expr(expr), got, None))
            continue
        checked += 1
        if not values_match(expected, got):
            small = minimize_mismatch(connection, interpreter, expr)
            mismatches.append(
                ("mismatch", render_expr(small),
                 oracle_result(interpreter, small)[1],
                 sqlite_result(connection, small)[1]))
    return checked, mismatches
