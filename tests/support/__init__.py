"""Shared test infrastructure (not a test module)."""
