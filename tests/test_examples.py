"""Every example script must run to completion and produce its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "distinct defects detected" in out
        assert "reduced test case" in out
        assert "sqlite-" in out

    def test_reduction_demo(self):
        out = run_example("reduction_demo.py")
        assert "reduction recovered exactly the paper's 4-line test " \
               "case" in out

    def test_dialect_tour(self):
        out = run_example("dialect_tour.py")
        assert "CRASH" in out
        assert "negative bitmapset member" in out
        assert "containment oracle" in out

    def test_real_sqlite_hunt(self):
        out = run_example("real_sqlite_hunt.py")
        assert "findings            : 0" in out
        assert "sample pivot-fetching queries" in out

    def test_campaign_report(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "campaign_report.py"), "40"],
            capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert "Table 2 style" in proc.stdout
        assert "Figure 3 style" in proc.stdout
