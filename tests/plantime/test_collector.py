"""The timing collector: min-of-k sampling, planner-quality scoring,
round-outcome draining, and telemetry.  All timing in this file is
synthetic (fake clocks, hand-set ``elapsed`` values) — real wall-clock
assertions would be noise-flaky at MiniDB's microsecond scale."""

import pytest

from repro.multiplan.hints import PlannerHints
from repro.multiplan.oracle import PlanRun
from repro.plantime import NULL_PLAN_TIMER, PlanTimer, query_shape
from repro.plantime.collector import NullPlanTimer, PlanRegression
from repro.telemetry import MetricsRegistry, Telemetry, names

BASELINE = PlannerHints()
FULL_SCAN = PlannerHints(force_full_scan=True)


class FakeClock:
    """Deterministic perf_counter: returns scripted instants in order."""

    def __init__(self, instants):
        self.instants = list(instants)

    def __call__(self):
        return self.instants.pop(0)


def run(hints, elapsed=None, fingerprint="fp", rows=()):
    return PlanRun(hints=hints, fingerprint=fingerprint,
                   rows=list(rows), canonical=(), elapsed=elapsed)


class TestSample:
    def test_min_of_k_keeps_the_fastest_repeat(self):
        # Three repeats with elapsed 5, 2, 4 -> best is 2.
        clock = FakeClock([0, 5, 10, 12, 20, 24])
        timer = PlanTimer(repeats=3, clock=clock)
        calls = []
        best = timer.sample("SELECT 1", FULL_SCAN,
                            lambda sql, hints: calls.append((sql, hints)))
        assert best == 2
        assert calls == [("SELECT 1", FULL_SCAN)] * 3

    def test_repeats_clamped_to_at_least_one(self):
        timer = PlanTimer(repeats=0, clock=FakeClock([0, 7]))
        assert timer.sample("SELECT 1", FULL_SCAN,
                            lambda sql, hints: None) == 7

    def test_failed_rerun_leaves_the_plan_untimed(self):
        from repro.errors import DBError

        def flaky(sql, hints):
            raise DBError("forcing failed on the re-run")

        timer = PlanTimer(repeats=3, clock=FakeClock([0, 1, 2, 3]))
        assert timer.sample("SELECT 1", FULL_SCAN, flaky) is None


class TestObserveQuery:
    def test_slowdown_scored_and_regression_flagged(self):
        timer = PlanTimer(ratio=1.5)
        timer.observe_query("SELECT c0 FROM t0 WHERE c0 > 5", [
            run(BASELINE, elapsed=300e-6, fingerprint="base"),
            run(FULL_SCAN, elapsed=100e-6, fingerprint="scan"),
        ])
        outcome = timer.take_round_outcome()
        assert outcome["timed"] == 1
        (query,) = outcome["queries"]
        assert query["shape"] == \
            query_shape("SELECT c0 FROM t0 WHERE c0 > 5")
        assert query["slowdown"] == 3.0
        assert [p["elapsed_us"] for p in query["plans"]] == [300.0, 100.0]
        (regression,) = outcome["regressions"]
        assert regression["slowdown"] == 3.0
        assert regression["baseline_us"] == 300.0
        assert regression["best_us"] == 100.0
        assert regression["best_hints"] == {"force_full_scan": True}

    def test_fast_baseline_is_not_a_regression(self):
        timer = PlanTimer(ratio=1.5)
        timer.observe_query("SELECT 1", [
            run(BASELINE, elapsed=100e-6),
            run(FULL_SCAN, elapsed=300e-6),
        ])
        outcome = timer.take_round_outcome()
        assert outcome["queries"][0]["slowdown"] == pytest.approx(0.333)
        assert outcome["regressions"] == []

    def test_best_forced_alternative_wins(self):
        # Two forced plans: the faster one sets the bar.
        timer = PlanTimer(ratio=1.5)
        timer.observe_query("SELECT 1", [
            run(BASELINE, elapsed=200e-6),
            run(FULL_SCAN, elapsed=180e-6, fingerprint="slow"),
            run(PlannerHints(force_index="i0"), elapsed=50e-6,
                fingerprint="fast"),
        ])
        (regression,) = timer.take_round_outcome()["regressions"]
        assert regression["slowdown"] == 4.0
        assert regression["best_fingerprint"] == "fast"

    def test_untimed_runs_do_not_participate(self):
        # The oracle may append runs without elapsed (flaky re-runs);
        # only timed plans are scored.
        timer = PlanTimer(ratio=1.5)
        timer.observe_query("SELECT 1", [
            run(BASELINE, elapsed=300e-6),
            run(FULL_SCAN, elapsed=None),
        ])
        outcome = timer.take_round_outcome()
        assert "slowdown" not in outcome["queries"][0]
        assert outcome["regressions"] == []

    def test_no_baseline_means_no_score(self):
        timer = PlanTimer()
        timer.observe_query("SELECT 1", [run(FULL_SCAN, elapsed=1e-4)])
        outcome = timer.take_round_outcome()
        assert outcome["timed"] == 1
        assert "slowdown" not in outcome["queries"][0]

    def test_all_untimed_records_nothing(self):
        timer = PlanTimer()
        timer.observe_query("SELECT 1", [run(BASELINE)])
        assert timer.take_round_outcome() == {}


class TestRoundOutcome:
    def test_drain_resets_the_collector(self):
        timer = PlanTimer()
        timer.observe_query("SELECT 1", [run(BASELINE, elapsed=1e-4)])
        first = timer.take_round_outcome()
        assert first["timed"] == 1
        assert timer.take_round_outcome() == {}

    def test_empty_round_is_an_empty_dict(self):
        # The journal only writes the key when truthy: {} keeps
        # feature-off rounds byte-identical.
        assert PlanTimer().take_round_outcome() == {}


class TestTelemetry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        timer = PlanTimer(ratio=1.5,
                          telemetry=Telemetry(registry=registry))
        timer.observe_query("SELECT 1", [
            run(BASELINE, elapsed=300e-6),
            run(FULL_SCAN, elapsed=100e-6),
        ])
        timer.observe_query("SELECT 2", [
            run(BASELINE, elapsed=100e-6),
            run(FULL_SCAN, elapsed=100e-6),
        ])
        assert registry.value(names.PLANTIME_QUERIES) == 2
        assert registry.value(names.PLANTIME_REGRESSIONS) == 1


class TestNullTimer:
    def test_disabled_and_stateless(self):
        assert NULL_PLAN_TIMER.enabled is False
        assert isinstance(NULL_PLAN_TIMER, NullPlanTimer)
        assert NULL_PLAN_TIMER.sample("SELECT 1", BASELINE,
                                      lambda s, h: None) is None
        NULL_PLAN_TIMER.observe_query("SELECT 1", [run(BASELINE)])
        assert NULL_PLAN_TIMER.take_round_outcome() == {}


class TestPlanRegressionRoundTrip:
    def test_to_from_json(self):
        regression = PlanRegression(
            shape="abc", sql="SELECT 1", slowdown=2.5,
            baseline_us=250.0, best_us=100.0,
            baseline_fingerprint="b", best_fingerprint="f",
            best_hints={"force_full_scan": True})
        assert PlanRegression.from_json(regression.to_json()) == \
            regression

    def test_empty_hints_omitted_from_json(self):
        regression = PlanRegression(shape="abc", sql="SELECT 1",
                                    slowdown=2.0, baseline_us=2.0,
                                    best_us=1.0)
        assert "best_hints" not in regression.to_json()
