"""The persistent timing archive: min-merge discipline, slowdown
queries, and deterministic JSONL persistence."""

import json

import pytest

from repro.errors import PQSError
from repro.plantime import TimingArchive, plan_key


def plan(fingerprint="fp", hints=None, rows=3, elapsed_us=100.0):
    return {"fingerprint": fingerprint, "hints": hints or {},
            "rows": rows, "elapsed_us": elapsed_us}


def seeded_archive():
    archive = TimingArchive()
    archive.observe("shape1", "SELECT c0 FROM t0 WHERE c0 > ?", [
        plan("base", {}, elapsed_us=300.0),
        plan("scan", {"force_full_scan": True}, elapsed_us=100.0),
    ])
    archive.observe("shape2", "SELECT c1 FROM t0", [
        plan("base2", {}, elapsed_us=80.0),
        plan("scan2", {"force_full_scan": True}, elapsed_us=100.0),
    ])
    return archive


class TestPlanKey:
    def test_plain_plan_is_the_fingerprint(self):
        assert plan_key("abc123", {}) == "abc123"
        assert plan_key("abc123", None) == "abc123"
        assert plan_key("abc123", {"force_full_scan": True}) == "abc123"

    def test_analyzed_plan_gets_a_suffix(self):
        # Same operator tree, different planner input: kept distinct.
        assert plan_key("abc123", {"analyze": True}) == "abc123@analyzed"
        assert plan_key("abc123", {"analyze": False}) == "abc123"


class TestAccumulation:
    def test_observe_min_merges_and_counts_samples(self):
        archive = TimingArchive()
        archive.observe("s", "SELECT 1", [plan(elapsed_us=120.0)])
        archive.observe("s", "SELECT 1", [plan(elapsed_us=80.0)])
        archive.observe("s", "SELECT 1", [plan(elapsed_us=200.0)])
        (record,) = archive.plans_for("s").values()
        assert record["elapsed_us"] == 80.0
        assert record["samples"] == 3

    def test_absorb_outcome_folds_collector_format(self):
        archive = TimingArchive.from_outcomes([
            {"timed": 1, "queries": [
                {"shape": "s", "sql": "SELECT 1",
                 "plans": [plan(elapsed_us=50.0)]}]},
            {},  # empty rounds are a no-op
        ])
        assert archive.shapes() == ["s"]
        assert len(archive) == 1

    def test_merge_is_min_merge_plus_sample_sum(self):
        a = TimingArchive()
        a.observe("s", "SELECT 1", [plan(elapsed_us=120.0)])
        b = TimingArchive()
        b.observe("s", "SELECT 1", [plan(elapsed_us=90.0)])
        b.observe("t", "SELECT 2", [plan("other", elapsed_us=10.0)])
        a.merge(b)
        assert a.shapes() == ["s", "t"]
        record = a.plans_for("s")["fp"]
        assert record["elapsed_us"] == 90.0
        assert record["samples"] == 2

    def test_merge_order_does_not_matter(self):
        def build(order):
            archives = {
                "x": [plan(elapsed_us=120.0)],
                "y": [plan(elapsed_us=90.0)],
                "z": [plan(elapsed_us=100.0)],
            }
            merged = TimingArchive()
            for name in order:
                other = TimingArchive()
                other.observe("s", "SELECT 1", archives[name])
                merged.merge(other)
            return merged.to_lines()

        assert build("xyz") == build("zyx") == build("yxz")


class TestSlowdown:
    def test_slowdown_is_baseline_over_best_forced(self):
        assert seeded_archive().slowdown("shape1") == 3.0
        assert seeded_archive().slowdown("shape2") == 0.8

    def test_missing_side_means_none(self):
        archive = TimingArchive()
        archive.observe("only-base", "SELECT 1", [plan("b", {})])
        archive.observe("only-forced", "SELECT 2",
                        [plan("f", {"force_full_scan": True})])
        assert archive.slowdown("only-base") is None
        assert archive.slowdown("only-forced") is None
        assert archive.slowdown("never-seen") is None

    def test_regressions_worst_first(self):
        archive = seeded_archive()
        archive.observe("shape3", "SELECT c2 FROM t0", [
            plan("b3", {}, elapsed_us=1000.0),
            plan("f3", {"force_full_scan": True}, elapsed_us=100.0),
        ])
        found = archive.regressions(ratio=1.5)
        assert [r["shape"] for r in found] == ["shape3", "shape1"]
        assert [r["slowdown"] for r in found] == [10.0, 3.0]

    def test_ratio_is_inclusive(self):
        archive = TimingArchive()
        archive.observe("s", "SELECT 1", [
            plan("b", {}, elapsed_us=150.0),
            plan("f", {"force_full_scan": True}, elapsed_us=100.0),
        ])
        assert archive.regressions(ratio=1.5) != []
        assert archive.regressions(ratio=1.501) == []


class TestPersistence:
    def test_dump_load_round_trip_is_byte_identical(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        seeded_archive().dump(path)
        reloaded = TimingArchive.load(path)
        second = tmp_path / "again.jsonl"
        reloaded.dump(second)
        assert path.read_bytes() == second.read_bytes()

    def test_serialization_is_schedule_independent(self):
        a = seeded_archive()
        b = TimingArchive()
        # Same content observed in the opposite order.
        b.observe("shape2", "SELECT c1 FROM t0", [
            plan("scan2", {"force_full_scan": True}, elapsed_us=100.0),
            plan("base2", {}, elapsed_us=80.0),
        ])
        b.observe("shape1", "SELECT c0 FROM t0 WHERE c0 > ?", [
            plan("scan", {"force_full_scan": True}, elapsed_us=100.0),
            plan("base", {}, elapsed_us=300.0),
        ])
        assert a.to_lines() == b.to_lines()

    def test_header_counts_shapes(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        seeded_archive().dump(path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "header", "format": "pqs-plantime",
                          "version": 1, "shapes": 2}

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(PQSError):
            TimingArchive.load(tmp_path / "nope.jsonl")

    def test_load_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PQSError):
            TimingArchive.load(path)

    def test_load_non_archive_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind":"header","format":"pqs-journal"}\n')
        with pytest.raises(PQSError):
            TimingArchive.load(path)

    def test_load_malformed_header_raises(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(PQSError):
            TimingArchive.load(path)
