"""Query-shape canonicalization: literal masking and digest stability."""

from repro.plantime import canonical_shape, query_shape


class TestCanonicalShape:
    def test_numbers_masked(self):
        assert canonical_shape("SELECT c0 FROM t0 WHERE c0 > 42") == \
            "SELECT c0 FROM t0 WHERE c0 > ?"

    def test_floats_and_exponents_masked(self):
        assert canonical_shape("SELECT 1.5, 2e10, 3.25E-4") == \
            "SELECT ?, ?, ?"

    def test_strings_masked_including_escaped_quote(self):
        # 'it''s' is ONE literal (doubled quote escape), not two.
        assert canonical_shape("SELECT * FROM t0 WHERE c0 = 'it''s'") == \
            "SELECT * FROM t0 WHERE c0 = ?"

    def test_digits_inside_strings_do_not_survive(self):
        # Strings are replaced before numbers: '123' must become one
        # ``?``, not ``'?'``.
        assert canonical_shape("SELECT '123'") == "SELECT ?"

    def test_blob_masked_before_string(self):
        # x'00ff' is a blob literal; its hex body must not leak as a
        # number or a string fragment.
        assert canonical_shape("SELECT x'00ff', X'AB'") == "SELECT ?, ?"

    def test_identifiers_untouched(self):
        # Generator naming t0/c0/i0: the digit is part of the word, no
        # boundary, so the shape keeps identifiers intact.
        shape = canonical_shape("SELECT t0.c0 FROM t0 INDEXED BY i0")
        assert shape == "SELECT t0.c0 FROM t0 INDEXED BY i0"

    def test_whitespace_collapsed(self):
        assert canonical_shape("SELECT\n  c0\tFROM   t0  ") == \
            "SELECT c0 FROM t0"


class TestQueryShape:
    def test_same_shape_for_different_literals(self):
        a = query_shape("SELECT c0 FROM t0 WHERE c0 > 1")
        b = query_shape("SELECT c0 FROM t0 WHERE c0 > 999")
        assert a == b

    def test_distinct_shapes_for_different_structure(self):
        a = query_shape("SELECT c0 FROM t0")
        b = query_shape("SELECT c1 FROM t0")
        assert a != b

    def test_digest_width_matches_fingerprints(self):
        # Same truncation width as plan fingerprints so the id spaces
        # read alike in tooling.
        digest = query_shape("SELECT 1")
        assert len(digest) == 12
        assert all(ch in "0123456789abcdef" for ch in digest)

    def test_digest_is_stable(self):
        # Pinned value: archives written by one version must remain
        # joinable by the next.
        assert query_shape("SELECT c0 FROM t0 WHERE c0 > 7") == \
            query_shape("SELECT  c0  FROM  t0  WHERE  c0 > 123")
