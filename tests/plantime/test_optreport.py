"""``pqs optreport``: deterministic regression classification between
two archives, and the CLI exit-code contract CI gates on."""

import io
import json
from contextlib import redirect_stdout

from repro.cli import main
from repro.plantime import (
    TimingArchive,
    compare_archives,
    render_optreport,
)


def run_cli(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


def archive(shapes):
    """Build an archive from {shape: (baseline_us, best_forced_us)}.
    ``None`` for either side omits that plan."""
    built = TimingArchive()
    for shape, (baseline_us, forced_us) in shapes.items():
        plans = []
        if baseline_us is not None:
            plans.append({"fingerprint": f"{shape}-base", "hints": {},
                          "rows": 3, "elapsed_us": baseline_us})
        if forced_us is not None:
            plans.append({"fingerprint": f"{shape}-scan",
                          "hints": {"force_full_scan": True},
                          "rows": 3, "elapsed_us": forced_us})
        built.observe(shape, f"SELECT c0 FROM t0 -- {shape}", plans)
    return built


class TestClassification:
    def test_all_four_buckets(self):
        old = archive({
            "fine":      (100.0, 100.0),   # never regressed
            "was-bad":   (300.0, 100.0),   # 3.0x, fixed in new
            "stays-bad": (200.0, 100.0),   # 2.0x in both
            "got-worse": (200.0, 100.0),   # 2.0x -> 4.0x
        })
        new = archive({
            "fine":      (100.0, 100.0),
            "was-bad":   (100.0, 100.0),
            "stays-bad": (200.0, 100.0),
            "got-worse": (400.0, 100.0),
            "brand-new": (500.0, 100.0),   # 5.0x, only in new... but
        })
        # ...shapes only in one archive are counted, not classified.
        new.observe("brand-new-shared", "SELECT 1", [])
        comparison = compare_archives(old, new, ratio=1.5)
        assert [e["shape"] for e in comparison["new"]] == []
        assert [e["shape"] for e in comparison["fixed"]] == ["was-bad"]
        assert [e["shape"] for e in comparison["worsened"]] == \
            ["got-worse"]
        assert [e["shape"] for e in comparison["ongoing"]] == \
            ["stays-bad"]
        assert comparison["only_new"] == 2
        assert comparison["shapes_compared"] == 4

    def test_newly_regressed_shared_shape(self):
        old = archive({"s": (100.0, 100.0)})
        new = archive({"s": (300.0, 100.0)})
        comparison = compare_archives(old, new, ratio=1.5)
        (entry,) = comparison["new"]
        assert entry["shape"] == "s"
        assert entry["old_slowdown"] == 1.0
        assert entry["new_slowdown"] == 3.0
        assert comparison["fixed"] == comparison["worsened"] == []

    def test_worsen_margin_boundary(self):
        old = archive({"s": (200.0, 100.0)})       # 2.0x
        within = archive({"s": (210.0, 100.0)})    # 2.1x = +5%
        beyond = archive({"s": (230.0, 100.0)})    # 2.3x = +15%
        held = compare_archives(old, within, ratio=1.5,
                                worsen_margin=0.10)
        assert held["worsened"] == [] and len(held["ongoing"]) == 1
        moved = compare_archives(old, beyond, ratio=1.5,
                                 worsen_margin=0.10)
        assert len(moved["worsened"]) == 1 and moved["ongoing"] == []

    def test_unmeasurable_new_side_is_ongoing_not_fixed(self):
        # The regression "disappearing" because the new run lost its
        # baseline timing is not a fix.
        old = archive({"s": (300.0, 100.0)})
        new = archive({"s": (None, 100.0)})
        comparison = compare_archives(old, new, ratio=1.5)
        assert comparison["fixed"] == []
        assert len(comparison["ongoing"]) == 1

    def test_self_compare_is_all_zero(self):
        same = archive({"bad": (300.0, 100.0), "fine": (90.0, 100.0)})
        comparison = compare_archives(same, same, ratio=1.5)
        assert comparison["new"] == comparison["fixed"] == \
            comparison["worsened"] == []
        assert len(comparison["ongoing"]) == 1

    def test_same_inputs_same_report(self):
        old = archive({"a": (300.0, 100.0), "b": (100.0, 100.0)})
        new = archive({"a": (100.0, 100.0), "b": (400.0, 100.0)})
        first = compare_archives(old, new)
        second = compare_archives(old, new)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_plan_table_joins_both_sides(self):
        # Old run only measured the forced plan: its row still joins,
        # with the missing side rendered as None.
        old = archive({"s": (None, 100.0)})
        new = archive({"s": (300.0, 100.0)})
        (entry,) = compare_archives(old, new, ratio=1.5)["new"]
        by_plan = {p["plan"]: p for p in entry["plans"]}
        assert by_plan["s-base"]["old_us"] is None
        assert by_plan["s-base"]["new_us"] == 300.0
        assert by_plan["s-scan"]["old_us"] == 100.0

    def test_new_slowdown_with_no_old_baseline(self):
        # Old archive measured the forced plan only: slowdown None
        # there, so a new-side regression still classifies as "new".
        old = archive({"s": (None, 100.0)})
        new = archive({"s": (300.0, 100.0)})
        comparison = compare_archives(old, new, ratio=1.5)
        assert len(comparison["new"]) == 1


class TestRendering:
    def test_render_names_every_bucket(self):
        old = archive({"s": (100.0, 100.0)})
        new = archive({"s": (300.0, 100.0)})
        text = render_optreport(compare_archives(old, new))
        assert "optimizer regression report" in text
        assert "new regressions: 1" in text
        assert "fixed regressions: 0" in text
        assert "worsened regressions: 0" in text
        assert "1.00x -> 3.00x" in text
        assert "full-scan" in text


class TestCli:
    def test_self_compare_exits_zero(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive({"bad": (300.0, 100.0)}).dump(path)
        code, output = run_cli("optreport", str(path), str(path))
        assert code == 0
        assert "ongoing regressions: 1" in output

    def test_new_regression_exits_one(self, tmp_path):
        old_path, new_path = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        archive({"s": (100.0, 100.0)}).dump(old_path)
        archive({"s": (300.0, 100.0)}).dump(new_path)
        code, output = run_cli("optreport", str(old_path), str(new_path))
        assert code == 1
        assert "new regressions: 1" in output

    def test_fixed_regression_exits_zero(self, tmp_path):
        old_path, new_path = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        archive({"s": (300.0, 100.0)}).dump(old_path)
        archive({"s": (100.0, 100.0)}).dump(new_path)
        code, _ = run_cli("optreport", str(old_path), str(new_path))
        assert code == 0

    def test_missing_archive_exits_two(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive({"s": (100.0, 100.0)}).dump(path)
        code, output = run_cli("optreport", str(path),
                               str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "error" in output

    def test_json_output(self, tmp_path):
        path = tmp_path / "a.jsonl"
        archive({"s": (300.0, 100.0)}).dump(path)
        code, output = run_cli("optreport", "--json", str(path),
                               str(path))
        assert code == 0
        parsed = json.loads(output)
        assert parsed["shapes_compared"] == 1

    def test_ratio_flag_changes_the_verdict(self, tmp_path):
        old_path, new_path = tmp_path / "old.jsonl", tmp_path / "new.jsonl"
        archive({"s": (100.0, 100.0)}).dump(old_path)
        archive({"s": (140.0, 100.0)}).dump(new_path)  # 1.4x
        assert run_cli("optreport", str(old_path), str(new_path))[0] == 0
        assert run_cli("optreport", "--ratio", "1.3",
                       str(old_path), str(new_path))[0] == 1
