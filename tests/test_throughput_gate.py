"""The CI throughput-regression gate (benchmarks/check_throughput_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_PATH = (Path(__file__).resolve().parent.parent / "benchmarks"
         / "check_throughput_regression.py")
_spec = importlib.util.spec_from_file_location("check_throughput", _PATH)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def artifact(qps, databases=20, seed=99):
    return {"databases": databases, "seed": seed, "best_of": 3,
            "dialects": {d: {"queries_per_second": q}
                         for d, q in qps.items()}}


class TestCompare:
    def test_equal_passes(self):
        base = artifact({"sqlite": 1000.0, "mysql": 800.0})
        assert check.compare(base, base, 20.0) == []

    def test_small_drop_within_threshold(self):
        base = artifact({"sqlite": 1000.0})
        cur = artifact({"sqlite": 850.0})
        assert check.compare(base, cur, 20.0) == []

    def test_large_drop_fails(self):
        base = artifact({"sqlite": 1000.0, "mysql": 800.0})
        cur = artifact({"sqlite": 700.0, "mysql": 790.0})
        failures = check.compare(base, cur, 20.0)
        assert len(failures) == 1
        assert "sqlite" in failures[0]

    def test_speedup_passes(self):
        base = artifact({"sqlite": 300.0})
        cur = artifact({"sqlite": 1000.0})
        assert check.compare(base, cur, 20.0) == []

    def test_missing_dialect_fails(self):
        base = artifact({"sqlite": 1000.0, "mysql": 800.0})
        cur = artifact({"sqlite": 1000.0})
        failures = check.compare(base, cur, 20.0)
        assert any("mysql" in f for f in failures)

    def test_workload_mismatch_is_not_comparable(self):
        base = artifact({"sqlite": 1000.0}, databases=20)
        cur = artifact({"sqlite": 1000.0}, databases=15)
        failures = check.compare(base, cur, 20.0)
        assert any("workload mismatch" in f for f in failures)


class TestMain:
    def write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path):
        base = self.write(tmp_path, "base.json", artifact({"sqlite": 100.0}))
        cur = self.write(tmp_path, "cur.json", artifact({"sqlite": 95.0}))
        assert check.main([base, cur]) == 0

    def test_exit_one_on_regression(self, tmp_path):
        base = self.write(tmp_path, "base.json", artifact({"sqlite": 100.0}))
        cur = self.write(tmp_path, "cur.json", artifact({"sqlite": 50.0}))
        assert check.main([base, cur]) == 1

    def test_threshold_flag(self, tmp_path):
        base = self.write(tmp_path, "base.json", artifact({"sqlite": 100.0}))
        cur = self.write(tmp_path, "cur.json", artifact({"sqlite": 70.0}))
        assert check.main([base, cur]) == 1
        assert check.main([base, cur, "--max-drop-pct", "40"]) == 0
