"""The paper's motivation, measured: identical SQL disagrees across
dialects, which is why differential testing fails for DBMS (§1, §2) and
PQS tests each dialect against its own exact oracle instead.
"""

import pytest

from repro.errors import DBError
from repro.minidb.engine import Engine

DIALECTS = ("sqlite", "mysql", "postgres")


def result_or_error(dialect: str, sql: str):
    engine = Engine(dialect)
    try:
        return ("rows", engine.execute(sql).python_rows())
    except DBError as exc:
        return ("error", type(exc).__name__)


class TestDivergentExpressions:
    @pytest.mark.parametrize("sql", [
        "SELECT '1' = 1",      # affinity vs numeric coercion vs error
        "SELECT 5 / 2",        # 2 vs 2.5 vs 2
        "SELECT 'a' = 'A'",    # BINARY vs case-insensitive vs BINARY
        "SELECT 1 / 0",        # NULL vs NULL vs error
        "SELECT NOT '0.5'",    # implicit conversion chains
    ])
    def test_no_common_semantics(self, sql):
        outcomes = {d: repr(result_or_error(d, sql)) for d in DIALECTS}
        assert len(set(outcomes.values())) >= 2, outcomes

    def test_division_semantics_all_three_differ(self):
        outcomes = {d: result_or_error(d, "SELECT 5 / 2")
                    for d in DIALECTS}
        assert outcomes["sqlite"] == ("rows", [(2,)])
        assert outcomes["mysql"] == ("rows", [(2.5,)])
        assert outcomes["postgres"] == ("rows", [(2,)])
        # ...and even where sqlite/postgres agree on 5/2, they diverge
        # on division by zero:
        assert result_or_error("sqlite", "SELECT 1 / 0")[0] == "rows"
        assert result_or_error("postgres", "SELECT 1 / 0")[0] == "error"

    def test_is_not_on_values_is_sqlite_only(self):
        # Paper §1: "both MySQL and PostgreSQL lack an operator IS NOT
        # that can be applied to integers" the way Listing 1 needs.
        # (MiniDB-mysql models IS via <=>-style null-safe equality; the
        # strict dialect rejects mixed types outright.)
        assert result_or_error("sqlite",
                               "SELECT NULL IS NOT 1") == ("rows", [(1,)])
        assert result_or_error("postgres",
                               "SELECT NULL IS NOT 1")[0] == "rows"

    def test_is_not_true_differs_from_is_not_one(self):
        # The paper: IS NOT TRUE exists everywhere but means something
        # else — for SQLite it checks the boolean interpretation.
        engine = Engine("sqlite")
        engine.execute("CREATE TABLE t0(c0)")
        engine.execute(
            "INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)")
        is_not_one = engine.execute(
            "SELECT c0 FROM t0 WHERE c0 IS NOT 1").python_rows()
        is_not_true = engine.execute(
            "SELECT c0 FROM t0 WHERE c0 IS NOT TRUE").python_rows()
        assert (None,) in is_not_one and len(is_not_one) == 4
        # IS NOT TRUE keeps 0 and NULL: a different row set entirely.
        assert sorted(is_not_true, key=str) == [(0,), (None,)]


class TestDivergentDDL:
    def test_untyped_columns_sqlite_only(self):
        Engine("sqlite").execute("CREATE TABLE t(a)")
        for dialect in ("mysql", "postgres"):
            with pytest.raises(DBError):
                Engine(dialect).execute("CREATE TABLE t(a)")

    def test_feature_matrix_is_disjoint(self):
        cases = {
            "sqlite": "CREATE TABLE t(a TEXT PRIMARY KEY) WITHOUT ROWID",
            "mysql": "CREATE TABLE t(a INT) ENGINE = MEMORY",
            "postgres": "CREATE TABLE p(a INT)",
        }
        # Each dialect's flagship DDL is rejected by the other two.
        for owner, sql in cases.items():
            Engine(owner).execute(sql)
            for other in DIALECTS:
                if other == owner or owner == "postgres":
                    continue
                with pytest.raises(DBError):
                    Engine(other).execute(sql)

    def test_inherits_postgres_only(self):
        pg = Engine("postgres")
        pg.execute("CREATE TABLE p(a INT)")
        pg.execute("CREATE TABLE c(a INT) INHERITS (p)")
        for other in ("sqlite", "mysql"):
            engine = Engine(other)
            try:
                engine.execute("CREATE TABLE p(a INT)")
            except DBError:
                pass
            with pytest.raises(DBError):
                engine.execute("CREATE TABLE c(a INT) INHERITS (p)")


class TestSameBugDifferentDialect:
    def test_listing1_statement_is_not_portable(self):
        """Listing 1's CREATE TABLE is SQLite-specific, so differential
        testing could never have exercised the bug — the paper's core
        argument for per-dialect oracles."""
        for dialect in ("mysql", "postgres"):
            with pytest.raises(DBError):
                Engine(dialect).execute("CREATE TABLE t0(c0)")
