"""Dialect descriptor sanity: the generator fragments mirror the paper's
per-DBMS feature inventory (§2)."""

import pytest

from repro.dialects import dialect_names, get_dialect
from repro.sqlast.nodes import BinaryOp


class TestRegistry:
    def test_three_dialects(self):
        assert set(dialect_names()) == {"sqlite", "mysql", "postgres"}

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_dialect("oracle")


class TestSQLiteDescriptor:
    d = get_dialect("sqlite")

    def test_untyped_columns_allowed(self):
        assert None in self.d.column_types

    def test_unique_features(self):
        assert self.d.supports_glob
        assert self.d.supports_without_rowid
        assert self.d.supports_partial_indexes
        assert self.d.supports_collate_in_index
        assert "NOCASE" in self.d.collations
        assert BinaryOp.IS_NOT in self.d.binary_ops

    def test_not_boolean_root(self):
        assert not self.d.boolean_root

    def test_schema_table(self):
        assert self.d.schema_table == "sqlite_master"

    def test_function_lookup(self):
        assert self.d.function("TYPEOF").min_arity == 1
        with pytest.raises(KeyError):
            self.d.function("PRINTF")  # deliberately out of fragment


class TestMySQLDescriptor:
    d = get_dialect("mysql")

    def test_unsigned_types(self):
        assert any("UNSIGNED" in (t or "") for t in self.d.column_types)

    def test_null_safe_operator(self):
        assert BinaryOp.NULL_SAFE_EQ in self.d.binary_ops

    def test_engines(self):
        assert "MEMORY" in self.d.engines

    def test_maintenance(self):
        assert "CHECK TABLE" in self.d.maintenance
        assert "REPAIR TABLE" in self.d.maintenance
        assert "VACUUM" not in self.d.maintenance

    def test_no_partial_indexes(self):
        assert not self.d.supports_partial_indexes

    def test_no_glob(self):
        assert BinaryOp.GLOB not in self.d.binary_ops


class TestPostgresDescriptor:
    d = get_dialect("postgres")

    def test_boolean_root(self):
        assert self.d.boolean_root

    def test_inheritance_and_serial(self):
        assert self.d.supports_inherits
        assert "SERIAL" in self.d.column_types
        assert "BOOLEAN" in self.d.column_types

    def test_unique_maintenance(self):
        assert "DISCARD" in self.d.maintenance
        assert "CREATE STATISTICS" in self.d.maintenance
        assert "VACUUM FULL" in self.d.maintenance

    def test_no_null_safe_eq(self):
        assert BinaryOp.NULL_SAFE_EQ not in self.d.binary_ops

    def test_typed_function_signatures(self):
        abs_sig = self.d.function("ABS")
        assert abs_sig.args == "number" and abs_sig.result == "number"


class TestSmallCommonCore:
    """The paper's point: the dialects share only a small common core."""

    def test_each_dialect_has_unique_operators(self):
        sqlite = set(get_dialect("sqlite").binary_ops)
        mysql = set(get_dialect("mysql").binary_ops)
        postgres = set(get_dialect("postgres").binary_ops)
        assert sqlite - mysql - postgres   # GLOB
        assert mysql - sqlite - postgres   # <=>
        common = sqlite & mysql & postgres
        assert BinaryOp.EQ in common and BinaryOp.AND in common

    def test_distinct_option_namespaces(self):
        names = {d: {name for name, _ in get_dialect(d).options}
                 for d in dialect_names()}
        assert not (names["sqlite"] & names["mysql"])
        assert not (names["sqlite"] & names["postgres"])
