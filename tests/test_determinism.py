"""End-to-end determinism: the same seed reproduces the same campaign,
byte for byte — the property that makes every reported finding
re-runnable from (seed, config) alone."""

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.core.runner import PQSRunner, RunnerConfig
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.minidb.bugs import BugRegistry


def fingerprint(result):
    return [
        (r.oracle.value, r.message, tuple(r.test_case.statements),
         r.triage, tuple(r.attributed_bugs))
        for r in result.reports
    ]


class TestCampaignDeterminism:
    def test_same_seed_same_findings(self):
        config_a = CampaignConfig(dialect="sqlite", seed=42, databases=40)
        config_b = CampaignConfig(dialect="sqlite", seed=42, databases=40)
        a = Campaign(config_a).run()
        b = Campaign(config_b).run()
        assert fingerprint(a) == fingerprint(b)
        assert a.stats.statements == b.stats.statements
        assert a.stats.queries == b.stats.queries

    def test_different_seeds_differ(self):
        a = Campaign(CampaignConfig(dialect="sqlite", seed=1,
                                    databases=10)).run()
        b = Campaign(CampaignConfig(dialect="sqlite", seed=2,
                                    databases=10)).run()
        assert a.stats.statements != b.stats.statements or \
            fingerprint(a) != fingerprint(b)


class TestRunnerDeterminism:
    def test_statement_streams_identical(self):
        streams = []
        for _ in range(2):
            captured = []

            class Recording(MiniDBConnection):
                def execute(self, sql):
                    captured.append(sql)
                    return super().execute(sql)

            runner = PQSRunner(
                lambda: Recording("mysql", bugs=BugRegistry()),
                RunnerConfig(dialect="mysql", seed=77))
            runner.run(5)
            streams.append(captured)
        assert streams[0] == streams[1]
        assert len(streams[0]) > 100
