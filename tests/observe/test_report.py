"""The triage analytics layer: journal → campaign digest → history."""

import json

import pytest

from repro.campaigns.journal import (
    JOURNAL_VERSION,
    CampaignJournal,
    QuarantineRecord,
    RoundRecord,
)
from repro.core.reports import BugReport, Oracle, TestCase
from repro.observe import (
    append_history,
    build_report,
    history_line,
    load_history,
    render_report,
    render_trend,
)
from repro.observe.report import statement_kind


def bug(statements, oracle=Oracle.ERROR, message="boom", seed=1):
    return BugReport(oracle=oracle, dialect="sqlite",
                     test_case=TestCase(statements=list(statements)),
                     message=message, seed=seed)


def write_journal(path, rounds, quarantined=(), seed=9, databases=None):
    fingerprint = {"version": JOURNAL_VERSION, "dialect": "sqlite",
                   "seed": seed,
                   "databases": databases if databases is not None
                   else len(rounds) + len(quarantined),
                   "bug_ids": []}
    with CampaignJournal(str(path)) as journal:
        journal.start(fingerprint, fresh=True)
        for record in rounds:
            journal.append_round(record)
        for record in quarantined:
            journal.append_quarantine(record)
    return str(path)


class TestStatementKind:
    def test_leading_keyword(self):
        assert statement_kind("  create index i on t(c0)") == "CREATE"
        assert statement_kind("VACUUM") == "VACUUM"
        assert statement_kind("") == "?"


class TestBuildReport:
    def test_digest_from_journal(self, tmp_path):
        rounds = [
            RoundRecord(index=0, seed=11, statements=10, queries=5,
                        pivots=5, seconds=0.5,
                        reports=[bug(["CREATE TABLE t(a)", "VACUUM"])]),
            RoundRecord(index=1, seed=12, statements=8, queries=4,
                        pivots=4, seconds=0.25,
                        reports=[bug(["CREATE TABLE t(a)", "VACUUM"]),
                                 bug(["SELECT 1"],
                                     oracle=Oracle.CONTAINMENT,
                                     message="missing pivot")]),
        ]
        quarantined = [QuarantineRecord(index=2, seed=13, attempts=3,
                                        error="harness died")]
        path = write_journal(tmp_path / "j.jsonl", rounds, quarantined)
        report = build_report(path)

        assert report["campaign"] == "sqlite-s9"
        assert report["rounds"] == {
            "configured": 3, "completed": 2, "quarantined": 1,
            "corrupt_journal_lines": 0, "duplicate_journal_rounds": 0}
        assert report["totals"]["statements"] == 18
        assert report["totals"]["raw_findings"] == 3

        # Two identical error findings collapse to one bug.
        assert len(report["bugs"]) == 2
        error_bug = report["bugs"][0]
        assert error_bug["sightings"] == 2
        assert error_bug["rounds"] == [0, 1]
        assert error_bug["first_round"] == 0
        assert error_bug["statement_kind"] == "VACUUM"
        assert report["by_oracle"] == {"contains": 1, "error": 1}
        assert report["by_error_kind"] == {"VACUUM": 1}
        assert report["quarantine"] == [
            {"round": 2, "seed": 13, "attempts": 3,
             "error": "harness died"}]

    def test_reduce_fn_merges_findings(self, tmp_path):
        # Distinct raw statements that reduce to the same core become
        # one fingerprint.
        rounds = [
            RoundRecord(index=0, seed=1,
                        reports=[bug(["CREATE TABLE t(a)", "INSERT x",
                                      "VACUUM"])]),
            RoundRecord(index=1, seed=2,
                        reports=[bug(["CREATE TABLE t(a)", "INSERT y",
                                      "VACUUM"])]),
        ]
        path = write_journal(tmp_path / "j.jsonl", rounds)
        raw = build_report(path)
        assert len(raw["bugs"]) == 2

        def reduce_fn(test_case):
            kept = [s for s in test_case.statements
                    if not s.startswith("INSERT")]
            return TestCase(statements=kept)

        reduced = build_report(path, reduce_fn=reduce_fn)
        assert len(reduced["bugs"]) == 1
        assert reduced["bugs"][0]["sightings"] == 2
        assert reduced["totals"]["raw_findings"] == 2

    def test_coverage_growth_from_plans(self, tmp_path):
        rounds = [RoundRecord(index=i, seed=i,
                              plans=[(f"fp{i % 3}", "SELECT 1")])
                  for i in range(30)]
        path = write_journal(tmp_path / "j.jsonl", rounds)
        growth = build_report(path)["coverage_growth"]
        assert growth[-1] == {"round": 29, "distinct_plans": 3}
        assert len(growth) <= 12
        counts = [g["distinct_plans"] for g in growth]
        assert counts == sorted(counts), "growth is monotone"

    def test_events_fold_into_health(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl",
                             [RoundRecord(index=0, seed=1)])
        events = tmp_path / "events.jsonl"
        lines = [{"kind": "worker_start", "worker": 0},
                 {"kind": "worker_start", "worker": 1},
                 {"kind": "worker_death", "worker": 1},
                 {"kind": "round_leased", "round": 0}]
        events.write_text(
            "".join(json.dumps(e) + "\n" for e in lines))
        report = build_report(path, events_path=str(events))
        assert report["health"] == {"worker_start": 2, "worker_death": 1}

    def test_metrics_fold_into_phase_table(self, tmp_path):
        from repro.telemetry import MetricsRegistry, names

        registry = MetricsRegistry()
        registry.histogram(names.PHASE_SECONDS,
                           phase="stategen").observe(0.002)
        registry.histogram(names.PHASE_SECONDS,
                           phase="containment").observe(0.004)
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(
            {"snapshot": registry.snapshot(), "derived": {}}))
        path = write_journal(tmp_path / "j.jsonl",
                             [RoundRecord(index=0, seed=1)])
        phases = build_report(path, metrics_path=str(metrics))["phases"]
        assert [row["phase"] for row in phases] == \
            ["stategen", "containment"]
        assert all(row["count"] == 1 for row in phases)

    def test_missing_journal_raises(self, tmp_path):
        from repro.errors import PQSError

        with pytest.raises(PQSError):
            build_report(str(tmp_path / "nope.jsonl"))


class TestRendering:
    def test_render_smoke(self, tmp_path):
        rounds = [RoundRecord(index=0, seed=1, statements=5, queries=2,
                              reports=[bug(["VACUUM"])])]
        path = write_journal(
            tmp_path / "j.jsonl", rounds,
            [QuarantineRecord(index=1, seed=2, attempts=1, error="x")])
        text = render_report(build_report(path))
        assert "campaign sqlite-s9" in text
        assert "distinct bugs: 1" in text
        assert "quarantined rounds: 1" in text


class TestHistory:
    def test_append_creates_and_accumulates(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl",
                             [RoundRecord(index=0, seed=1,
                                          reports=[bug(["VACUUM"])])])
        report = build_report(path)
        history = tmp_path / "results" / "history.jsonl"
        first = append_history(str(history), report)
        append_history(str(history), report)
        lines = [json.loads(line) for line in
                 history.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0] == first
        assert first["distinct_bugs"] == 1
        assert first["campaign"] == "sqlite-s9"

    def test_history_line_is_flat_summary(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl",
                             [RoundRecord(index=0, seed=1)])
        line = history_line(build_report(path))
        assert line["rounds_completed"] == 1
        assert line["distinct_bugs"] == 0

    def test_history_line_stamps_throughput(self, tmp_path):
        rounds = [RoundRecord(index=0, seed=1, statements=10, queries=30,
                              seconds=1.5),
                  RoundRecord(index=1, seed=2, statements=10, queries=30,
                              seconds=0.5)]
        line = history_line(
            build_report(write_journal(tmp_path / "j.jsonl", rounds)))
        assert line["seconds"] == 2.0
        assert line["queries_per_second"] == 30.0

    def test_zero_duration_does_not_divide(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl",
                             [RoundRecord(index=0, seed=1, queries=5,
                                          seconds=0.0)])
        assert history_line(build_report(path))["queries_per_second"] \
            == 0.0

    def test_plan_regressions_stamped_only_when_timed(self, tmp_path):
        plain = history_line(build_report(
            write_journal(tmp_path / "a.jsonl",
                          [RoundRecord(index=0, seed=1)])))
        assert "plan_regressions" not in plain
        timed = [RoundRecord(index=0, seed=1, plantime={
            "timed": 4, "queries": [],
            "regressions": [{"shape": "abc", "sql": "SELECT 1",
                             "slowdown": 2.0}]})]
        stamped = history_line(build_report(
            write_journal(tmp_path / "b.jsonl", timed)))
        assert stamped["plan_regressions"] == 1


class TestLoadHistory:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_skips_malformed_and_non_dict_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"campaign": "sqlite-s1"}\n'
                        "not json\n"
                        "\n"
                        "[1, 2, 3]\n"
                        '{"campaign": "sqlite-s2"}\n')
        loaded = load_history(str(path))
        assert [l["campaign"] for l in loaded] == \
            ["sqlite-s1", "sqlite-s2"]

    def test_reads_what_append_wrote(self, tmp_path):
        journal = write_journal(tmp_path / "j.jsonl",
                                [RoundRecord(index=0, seed=1)])
        history = tmp_path / "history.jsonl"
        line = append_history(str(history), build_report(journal))
        assert load_history(str(history)) == [line]


class TestRenderTrend:
    def line(self, campaign, bugs, qps=None, rounds=5):
        out = {"campaign": campaign, "rounds_completed": rounds,
               "distinct_bugs": bugs}
        if qps is not None:
            out["queries_per_second"] = qps
        return out

    def test_empty_history_renders_nothing(self):
        assert render_trend([]) == ""

    def test_series_over_campaigns(self):
        text = render_trend([self.line("sqlite-s1", 2, qps=100.0),
                             self.line("sqlite-s2", 3, qps=120.5)])
        assert "history trend (2 of 2 campaign(s)):" in text
        assert "sqlite-s1: 5 rounds, 2 distinct bug(s), 100 q/s" in text
        assert "distinct bugs: 2 -> 3" in text
        assert "queries/s:     100 -> 120.5" in text

    def test_pre_throughput_lines_render_as_unknown(self):
        # History is long memory: lines written before the throughput
        # stamp existed must still render.
        text = render_trend([self.line("sqlite-s1", 1),
                             self.line("sqlite-s2", 1, qps=90.0)])
        assert "queries/s:     ? -> 90" in text
        assert "sqlite-s1: 5 rounds, 1 distinct bug(s), ?" in text

    def test_window_keeps_the_most_recent(self):
        lines = [self.line(f"sqlite-s{i}", i, qps=float(i))
                 for i in range(12)]
        text = render_trend(lines, limit=3)
        assert "history trend (3 of 12 campaign(s)):" in text
        assert "sqlite-s11" in text and "sqlite-s8" not in text
        assert "distinct bugs: 9 -> 10 -> 11" in text
