"""The HTTP status service: endpoints, addresses, liveness mid-hunt."""

import json
import threading
import urllib.request

import pytest

from repro.campaigns.parallel import (
    ParallelCampaign,
    ParallelCampaignConfig,
)
from repro.errors import PQSError
from repro.observe import EventLog, Observatory, StatusServer, parse_address
from repro.telemetry import MetricsRegistry, names


def get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers.get("Content-Type"), \
            response.read().decode("utf-8")


def simulated_observatory():
    registry = MetricsRegistry()
    registry.counter(names.ROUNDS).inc(3)
    registry.counter(names.QUERIES).inc(60)
    events = EventLog("sqlite-s1")
    events.emit("campaign_start")
    events.emit("round_completed", round=0, worker=0)
    return Observatory(campaign="sqlite-s1", dialect="sqlite", seed=1,
                       total_rounds=10, events=events, registry=registry)


class TestParseAddress:
    def test_bare_port(self):
        assert parse_address("8080") == ("127.0.0.1", 8080)

    def test_host_and_port(self):
        assert parse_address("0.0.0.0:9000") == ("0.0.0.0", 9000)

    def test_empty_host_defaults_to_loopback(self):
        assert parse_address(":7070") == ("127.0.0.1", 7070)

    def test_invalid_port_rejected(self):
        with pytest.raises(PQSError):
            parse_address("localhost:http")
        with pytest.raises(PQSError):
            parse_address("70000")


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        server = StatusServer(simulated_observatory(), port=0)
        with server:
            yield server

    def test_status_endpoint(self, server):
        status_code, content_type, body = get(server.url + "/status")
        assert status_code == 200
        assert content_type == "application/json"
        status = json.loads(body)
        assert status["campaign"] == "sqlite-s1"
        assert status["rounds"]["completed"] == 3
        assert status["throughput"]["queries"] == 60

    def test_metrics_endpoint_is_prometheus_text(self, server):
        status_code, content_type, body = get(server.url + "/metrics")
        assert status_code == 200
        assert content_type.startswith("text/plain")
        assert f"# TYPE {names.ROUNDS} counter" in body
        assert f"{names.ROUNDS} 3" in body

    def test_bugs_endpoint(self, server):
        _, _, body = get(server.url + "/bugs")
        assert json.loads(body) == {"bugs": []}

    def test_coverage_endpoint(self, server):
        _, _, body = get(server.url + "/coverage")
        assert json.loads(body) == {"tracked": False}

    def test_plantime_endpoint_untracked_by_default(self, server):
        _, _, body = get(server.url + "/plantime")
        assert json.loads(body) == {"tracked": False}

    def test_plantime_endpoint_reads_counters(self):
        registry = MetricsRegistry()
        registry.counter(names.PLANTIME_QUERIES).inc(12)
        registry.counter(names.PLANTIME_REGRESSIONS).inc(2)
        observatory = Observatory(campaign="sqlite-s1", dialect="sqlite",
                                  seed=1, total_rounds=10,
                                  events=EventLog("sqlite-s1"),
                                  registry=registry)
        with StatusServer(observatory, port=0) as server:
            _, _, body = get(server.url + "/plantime")
        assert json.loads(body) == {"tracked": True, "queries_timed": 12,
                                    "regressions": 2, "worst": []}

    def test_events_endpoint_tails(self, server):
        _, _, body = get(server.url + "/events?limit=1")
        events = json.loads(body)["events"]
        assert [e["kind"] for e in events] == ["round_completed"]

    def test_dashboard_served_at_root(self, server):
        status_code, content_type, body = get(server.url + "/")
        assert status_code == 200
        assert content_type.startswith("text/html")
        assert "pqs hunt" in body and "/status" in body

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/nope")
        assert err.value.code == 404

    def test_404_body_is_json(self, server):
        # Pollers parse every reply; errors must be JSON too.
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/status/extra/deep")
        payload = json.loads(err.value.read().decode("utf-8"))
        assert "no such endpoint" in payload["error"]

    def test_trailing_slash_is_the_same_route(self, server):
        status_code, _, body = get(server.url + "/status/")
        assert status_code == 200
        assert json.loads(body)["campaign"] == "sqlite-s1"

    def test_events_malformed_limit_falls_back(self, server):
        # ?limit=abc is a client bug, not a server error: default 100.
        status_code, _, body = get(server.url + "/events?limit=abc")
        assert status_code == 200
        assert len(json.loads(body)["events"]) == 2

    def test_events_huge_limit_is_bounded(self, server):
        status_code, _, body = get(server.url
                                   + "/events?limit=999999999999")
        assert status_code == 200
        # Never more than the ring holds, whatever the poller asks for.
        assert len(json.loads(body)["events"]) == 2

    def test_events_negative_limit_is_empty_not_error(self, server):
        status_code, _, body = get(server.url + "/events?limit=-5")
        assert status_code == 200
        assert json.loads(body)["events"] == []

    def test_port_zero_binds_free_port(self, server):
        assert server.port > 0

    def test_stop_is_idempotent(self):
        server = StatusServer(simulated_observatory(), port=0).start()
        server.stop()
        server.stop()


class TestLiveCampaign:
    def test_endpoints_valid_mid_campaign(self):
        """Poll a running parallel hunt: every endpoint must answer
        validly while workers are mutating the queue underneath."""
        events = EventLog("sqlite-s5")
        observatory = Observatory(campaign="sqlite-s5", dialect="sqlite",
                                  seed=5, total_rounds=8, events=events)
        config = ParallelCampaignConfig(
            dialect="sqlite", seed=5, threads=2,
            databases_per_thread=4, reduce=False, observe=observatory,
            multiplan=True, plan_timing=True)
        with StatusServer(observatory, port=0) as server:
            campaign = ParallelCampaign(config)
            results = {}

            def hunt():
                results["result"] = campaign.run()

            thread = threading.Thread(target=hunt)
            thread.start()
            polled = []
            timings = []
            while thread.is_alive():
                _, _, body = get(server.url + "/status")
                polled.append(json.loads(body))
                get(server.url + "/bugs")
                get(server.url + "/events")
                _, _, body = get(server.url + "/plantime")
                timings.append(json.loads(body))
            thread.join()
            _, _, body = get(server.url + "/status")
            final = json.loads(body)
            _, _, body = get(server.url + "/plantime")
            final_timing = json.loads(body)
        assert polled, "at least one mid-campaign poll"
        for status in polled:
            rounds = status["rounds"]
            assert 0 <= rounds["completed"] + rounds["quarantined"] <= 8
        # Every mid-mutation /plantime snapshot is a coherent document,
        # and the timed-query count only ever grows.
        timed_series = []
        for snapshot in timings:
            assert snapshot["tracked"] in (True, False)
            timed_series.append(snapshot.get("queries_timed", 0))
        assert timed_series == sorted(timed_series)
        assert final["rounds"]["completed"] == 8
        assert final["finished"]
        assert final_timing["tracked"]
        assert final_timing["queries_timed"] > 0
        assert results["result"].stats.databases == 8
