"""The observatory hub: live views over queue, heartbeats, coverage."""

import time

from repro.campaigns.journal import RoundRecord
from repro.campaigns.scheduler import RoundQueue
from repro.core.reports import BugReport, Oracle, TestCase
from repro.observe import NULL_OBSERVATORY, EventLog, Observatory
from repro.telemetry import MetricsRegistry, names


def record(index, reports=()):
    return RoundRecord(index=index, seed=index * 7, statements=10,
                       queries=5, reports=list(reports))


def settled_queue(total=4, completed=2, quarantined=1):
    queue = RoundQueue(range(total), campaign_seed=0,
                       quarantine_threshold=1)
    for i in range(completed):
        queue.lease(0)
        queue.complete(i, record(i), 0)
    for i in range(completed, completed + quarantined):
        queue.lease(0)
        queue.fail(i, "poison")
    # One round left in flight so leased/pending are distinguishable.
    if completed + quarantined < total:
        queue.lease(0)
    return queue


class TestCounts:
    def test_counts_from_queue(self):
        observatory = Observatory(total_rounds=4)
        observatory.attach_queue(settled_queue())
        assert observatory.counts() == (2, 1)

    def test_counts_without_queue(self):
        assert Observatory().counts() == (0, 0)


class TestStatus:
    def test_status_with_queue(self):
        observatory = Observatory(campaign="sqlite-s3", dialect="sqlite",
                                  seed=3, total_rounds=4)
        observatory.attach_queue(settled_queue())
        status = observatory.status()
        assert status["campaign"] == "sqlite-s3"
        assert status["rounds"] == {"total": 4, "completed": 2,
                                    "quarantined": 1, "leased": 1,
                                    "pending": 0}
        assert status["elapsed_seconds"] >= 0
        assert "eta_seconds" in status
        assert not status["finished"]

    def test_status_falls_back_to_registry(self):
        registry = MetricsRegistry()
        registry.counter(names.ROUNDS).inc(5)
        registry.counter(names.QUERIES).inc(50)
        observatory = Observatory(total_rounds=10, registry=registry)
        status = observatory.status()
        assert status["rounds"]["completed"] == 5
        assert status["throughput"]["queries"] == 50

    def test_finished_freezes_elapsed(self):
        observatory = Observatory()
        observatory.mark_finished()
        first = observatory.status()["elapsed_seconds"]
        time.sleep(0.02)
        assert observatory.status()["elapsed_seconds"] == first
        assert observatory.status()["finished"]

    def test_worker_health_reports_latest_incarnation(self):
        observatory = Observatory()
        now = time.monotonic()
        observatory.attach_heartbeats({0: now, 1: now, 5: now})

        class FakeSupervision:
            worker_slots = {0: 0, 1: 1, 5: 1}  # worker 5 replaced 1

        observatory.attach_supervision(FakeSupervision())
        workers = observatory.status()["workers"]
        assert [(w["slot"], w["worker"]) for w in workers] == \
            [(0, 0), (1, 5)]
        assert workers[1]["restarts"] == 1
        assert workers[0]["heartbeat_age_seconds"] is not None


class TestBugs:
    def test_bugs_tagged_with_round_and_fingerprint(self):
        report = BugReport(
            oracle=Oracle.ERROR, dialect="sqlite",
            test_case=TestCase(statements=["CREATE TABLE t0(c0 INT)",
                                           "VACUUM"]),
            message="boom", seed=99)
        queue = RoundQueue(range(1), campaign_seed=0)
        queue.lease(0)
        queue.complete(0, record(0, reports=[report]), 0)
        observatory = Observatory()
        observatory.attach_queue(queue)
        bugs = observatory.bugs()
        assert len(bugs) == 1
        assert bugs[0]["round"] == 0
        assert bugs[0]["fingerprint"] == report.fingerprint()
        assert bugs[0]["oracle"] == "error"

    def test_no_queue_no_bugs(self):
        assert Observatory().bugs() == []


class TestCoverage:
    def test_untracked(self):
        assert Observatory().coverage() == {"tracked": False}

    def test_tracked(self):
        from repro.guidance import PlanCoverage

        coverage = PlanCoverage()
        coverage.observe("fp1", "SELECT 1")
        observatory = Observatory()
        observatory.attach_coverage(coverage)
        assert observatory.coverage() == {"tracked": True,
                                          "distinct_plans": 1}


class TestNullObservatory:
    def test_inert_and_shared(self):
        NULL_OBSERVATORY.attach_queue(object())
        NULL_OBSERVATORY.attach_heartbeats({})
        NULL_OBSERVATORY.attach_supervision(object())
        NULL_OBSERVATORY.attach_coverage(object())
        NULL_OBSERVATORY.mark_finished()
        assert NULL_OBSERVATORY.status() == {}
        assert NULL_OBSERVATORY.counts() == (0, 0)
        assert NULL_OBSERVATORY.bugs() == []
        assert not NULL_OBSERVATORY.enabled
        assert not NULL_OBSERVATORY.events.enabled


class TestEventsWiring:
    def test_observatory_default_events_are_null(self):
        assert not Observatory().events.enabled

    def test_observatory_holds_live_log(self):
        log = EventLog("c")
        observatory = Observatory(events=log)
        observatory.events.emit("campaign_start")
        assert observatory.status()["events"] == 1
