"""The unified event log: emission, merge algebra, determinism."""

import json

from repro.observe.events import (
    DETERMINISTIC_KINDS,
    KIND_RANK,
    NULL_EVENTS,
    EventLog,
    campaign_id,
    deterministic_view,
    load_events,
    merge_events,
)
from repro.telemetry import ListSink


class TestEventLog:
    def test_emit_carries_correlation_fields(self):
        log = EventLog("sqlite-s7")
        event = log.emit("round_completed", round=3, worker=1,
                         round_seed=999, statements=20)
        assert event["campaign"] == "sqlite-s7"
        assert event["round"] == 3
        assert event["worker"] == 1
        assert event["round_seed"] == 999
        assert event["attrs"] == {"statements": 20}
        assert event["seq"] == 0
        assert event["t"] >= 0.0

    def test_seq_is_monotonic(self):
        log = EventLog()
        seqs = [log.emit("round_leased", round=i)["seq"]
                for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert len(log) == 5

    def test_none_attrs_are_dropped(self):
        log = EventLog()
        event = log.emit("worker_start", worker=0, error=None)
        assert "attrs" not in event

    def test_ring_buffer_bounds_memory(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("round_leased", round=i)
        assert [e["round"] for e in log.events()] == [7, 8, 9]
        assert len(log) == 10, "seq keeps counting past the ring"

    def test_tail_returns_most_recent_oldest_first(self):
        log = EventLog()
        for i in range(5):
            log.emit("round_leased", round=i)
        assert [e["round"] for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_sink_receives_every_event(self):
        sink = ListSink()
        log = EventLog("c", sink=sink)
        log.emit("worker_start", worker=0)
        log.emit("worker_death", worker=0)
        assert [e["kind"] for e in sink.events] == \
            ["worker_start", "worker_death"]

    def test_close_detaches_sink(self):
        sink = ListSink()
        log = EventLog(sink=sink)
        log.close()
        log.emit("campaign_end")
        assert sink.events == []

    def test_null_log_is_inert(self):
        assert NULL_EVENTS.emit("round_completed", round=1) == {}
        assert NULL_EVENTS.tail() == []
        assert len(NULL_EVENTS) == 0
        assert not NULL_EVENTS.enabled
        NULL_EVENTS.close()

    def test_campaign_id_format(self):
        assert campaign_id("sqlite", 42) == "sqlite-s42"


class TestLoadEvents:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [{"kind": "round_leased", "round": 0, "seq": 0},
                  {"kind": "round_completed", "round": 0, "seq": 1}]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert load_events(str(path)) == events

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "worker_start"}\n'
                        'not json at all\n'
                        '{"no_kind": 1}\n'
                        '\n'
                        '{"kind": "campaign_end"}')
        kinds = [e["kind"] for e in load_events(str(path))]
        assert kinds == ["worker_start", "campaign_end"]


class TestMerge:
    def test_merge_orders_by_round_then_kind_rank(self):
        worker_a = [
            {"kind": "round_completed", "round": 2, "seq": 5},
            {"kind": "round_leased", "round": 2, "seq": 4},
        ]
        worker_b = [
            {"kind": "round_completed", "round": 0, "seq": 9},
            {"kind": "bug_found", "round": 0, "seq": 10,
             "attrs": {"ordinal": 0}},
        ]
        merged = merge_events(worker_a, worker_b)
        assert [(e["round"], e["kind"]) for e in merged] == [
            (0, "round_completed"), (0, "bug_found"),
            (2, "round_leased"), (2, "round_completed")]

    def test_roundless_events_sort_last(self):
        merged = merge_events([
            {"kind": "worker_start", "seq": 0},
            {"kind": "round_completed", "round": 5, "seq": 1},
        ])
        assert merged[-1]["kind"] == "worker_start"

    def test_bug_ordinals_keep_discovery_order(self):
        merged = merge_events([
            {"kind": "bug_found", "round": 1, "seq": 3,
             "attrs": {"ordinal": 1}},
            {"kind": "bug_found", "round": 1, "seq": 2,
             "attrs": {"ordinal": 0}},
        ])
        assert [e["attrs"]["ordinal"] for e in merged] == [0, 1]

    def test_every_kind_has_a_rank(self):
        for kind in DETERMINISTIC_KINDS:
            assert kind in KIND_RANK


class TestDeterministicView:
    def test_projects_away_schedule_fields(self):
        view = deterministic_view([
            {"kind": "round_completed", "campaign": "c", "round": 0,
             "round_seed": 7, "worker": 2, "seq": 19, "t": 1.5,
             "wall": 100.0, "attrs": {"statements": 8, "queries": 4}},
        ])
        assert view == [{"kind": "round_completed", "campaign": "c",
                         "round": 0, "round_seed": 7,
                         "attrs": {"statements": 8, "queries": 4}}]

    def test_filters_to_deterministic_kinds(self):
        view = deterministic_view([
            {"kind": "round_leased", "round": 0},
            {"kind": "worker_death", "worker": 1},
            {"kind": "round_quarantined", "round": 0,
             "attrs": {"error": "boom", "attempt": 3}},
        ])
        assert [e["kind"] for e in view] == ["round_quarantined"]
        assert view[0]["attrs"] == {"error": "boom"}, \
            "attempt count is schedule-dependent and must be dropped"

    def test_duplicate_completions_deduplicated(self):
        # A stolen lease's late finish journals twice across two
        # worker streams; the view, like the journal, keeps one.
        event = {"kind": "round_completed", "campaign": "c", "round": 4,
                 "attrs": {"statements": 10}}
        view = deterministic_view([
            {**event, "worker": 0, "seq": 8},
            {**event, "worker": 3, "seq": 2},
        ])
        assert len(view) == 1
