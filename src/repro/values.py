"""SQL value model shared by the oracle interpreter and the MiniDB engine.

A :class:`Value` is an immutable tagged union over the storage classes the
paper's target systems use: ``NULL``, ``INTEGER``, ``REAL``, ``TEXT`` and
``BLOB``, plus a first-class ``BOOLEAN`` for the PostgreSQL-style dialect
(SQLite and MySQL represent booleans as integers).

This module holds representation plus dialect-independent primitives:
64-bit integer bounds, numeric text prefix parsing (SQLite's cast rules),
storage-class ordering and the three collating sequences the paper's test
cases exercise (``BINARY``, ``NOCASE``, ``RTRIM``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Union

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

PyVal = Union[None, int, float, str, bytes, bool]

# NOTE: digit tests below are ASCII-only ("0" <= c <= "9"): SQL
# numeric syntax does not include Unicode digits, and Python's
# "0" <= str <= "9" accepts characters (e.g. superscripts) that int()
# rejects.


class SQLType(enum.Enum):
    """Storage class of a :class:`Value`."""

    NULL = "null"
    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"
    BLOB = "blob"
    BOOLEAN = "boolean"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SQLType.{self.name}"


#: Cross-storage-class ordering used by SQLite (NULL < numbers < TEXT < BLOB).
STORAGE_ORDER = {
    SQLType.NULL: 0,
    SQLType.BOOLEAN: 1,  # ordered with numbers; PG orders bool separately
    SQLType.INTEGER: 1,
    SQLType.REAL: 1,
    SQLType.TEXT: 2,
    SQLType.BLOB: 3,
}


@dataclass(frozen=True, slots=True)
class Value:
    """An immutable SQL value: a storage class tag plus a Python payload."""

    t: SQLType
    v: PyVal

    # -- constructors -----------------------------------------------------
    @staticmethod
    def null() -> "Value":
        return NULL

    @staticmethod
    def integer(i: int) -> "Value":
        # Small-int interning: hunt workloads create the same small
        # integers millions of times (row ids, literals, comparison
        # results).  Values are immutable, so sharing is safe; the dict
        # lookup coerces bools/whole floats exactly like ``int(i)`` did.
        v = _SMALL_INTS.get(i)
        return v if v is not None else Value(SQLType.INTEGER, int(i))

    @staticmethod
    def real(f: float) -> "Value":
        return Value(SQLType.REAL, float(f))

    @staticmethod
    def text(s: str) -> "Value":
        return Value(SQLType.TEXT, s)

    @staticmethod
    def blob(b: bytes) -> "Value":
        return Value(SQLType.BLOB, bytes(b))

    @staticmethod
    def boolean(b: bool) -> "Value":
        return TRUE if b else FALSE

    @staticmethod
    def from_python(obj: PyVal) -> "Value":
        """Lift a plain Python object into a :class:`Value`.

        ``bool`` maps to BOOLEAN; callers targeting SQLite/MySQL dialects
        should convert booleans to integers themselves.
        """
        if obj is None:
            return NULL
        if isinstance(obj, bool):
            return Value.boolean(obj)
        if isinstance(obj, int):
            return Value.integer(obj)
        if isinstance(obj, float):
            return Value.real(obj)
        if isinstance(obj, str):
            return Value.text(obj)
        if isinstance(obj, bytes):
            return Value.blob(obj)
        raise TypeError(f"cannot lift {type(obj).__name__} into a SQL value")

    # -- predicates --------------------------------------------------------
    @property
    def is_null(self) -> bool:
        return self.t is SQLType.NULL

    @property
    def is_numeric(self) -> bool:
        return self.t in (SQLType.INTEGER, SQLType.REAL, SQLType.BOOLEAN)

    def __repr__(self) -> str:
        if self.is_null:
            return "NULL"
        return f"{self.t.name}:{self.v!r}"


NULL = Value(SQLType.NULL, None)
TRUE = Value(SQLType.BOOLEAN, True)
FALSE = Value(SQLType.BOOLEAN, False)

#: Interned INTEGER values for the small range hot loops churn through.
_SMALL_INTS = {i: Value(SQLType.INTEGER, i) for i in range(-128, 257)}


def wrap_int64(i: int) -> int:
    """Wrap a Python integer into signed 64-bit two's-complement range."""
    return ((i - INT64_MIN) % (2**64)) + INT64_MIN


def fits_int64(i: int) -> bool:
    return INT64_MIN <= i <= INT64_MAX


def int_or_real(i: int) -> Value:
    """SQLite arithmetic result rule: out-of-range integers become REAL."""
    if fits_int64(i):
        return Value.integer(i)
    return Value.real(float(i))


#: Text→number parses repeat heavily (TEXT column values are drawn from
#: small vocabularies and re-coerced on every comparison), so memoize
#: the pure parse.  Bounded: cleared wholesale when it outgrows the
#: working set, matching the tokenizer's word-cache idiom.
_NUMERIC_PREFIX_CACHE: dict[str, tuple[float | int, bool]] = {}


def numeric_prefix(text: str) -> tuple[float | int, bool]:
    """Parse the longest numeric prefix of *text*, SQLite-cast style.

    Returns ``(number, is_int)``.  ``'  -12.5abc'`` parses to ``(-12.5,
    False)``; ``'abc'`` parses to ``(0, True)``.  Leading whitespace is
    skipped, as SQLite does.
    """
    cached = _NUMERIC_PREFIX_CACHE.get(text)
    if cached is not None:
        return cached
    result = _numeric_prefix(text)
    if len(_NUMERIC_PREFIX_CACHE) >= 4096:
        _NUMERIC_PREFIX_CACHE.clear()
    _NUMERIC_PREFIX_CACHE[text] = result
    return result


def _numeric_prefix(text: str) -> tuple[float | int, bool]:
    s = text.lstrip(" \t\n\r\f\v")
    i = 0
    n = len(s)
    if i < n and s[i] in "+-":
        i += 1
    int_digits = 0
    while i < n and "0" <= s[i] <= "9":
        i += 1
        int_digits += 1
    is_int = True
    frac_digits = 0
    if i < n and s[i] == ".":
        j = i + 1
        while j < n and "0" <= s[j] <= "9":
            j += 1
            frac_digits += 1
        if int_digits or frac_digits:
            i = j
            is_int = False
    if i < n and (int_digits or frac_digits) and s[i] in "eE":
        j = i + 1
        if j < n and s[j] in "+-":
            j += 1
        exp_digits = 0
        while j < n and "0" <= s[j] <= "9":
            j += 1
            exp_digits += 1
        if exp_digits:
            i = j
            is_int = False
    if int_digits == 0 and frac_digits == 0:
        return 0, True
    token = s[:i]
    if is_int:
        return int(token), True
    return float(token), False


def text_to_integer(text: str) -> int:
    """SQLite ``CAST(text AS INTEGER)``: longest ``[+-]?digits`` prefix.

    Unlike :func:`numeric_prefix`, this never consults the fractional part
    or exponent: ``CAST('9e99' AS INTEGER)`` is ``9`` and ``CAST('12.9' AS
    INTEGER)`` is ``12``.  Out-of-range digit strings clamp to the int64
    boundaries, as SQLite does.
    """
    s = text.lstrip(" \t\n\r\f\v")
    i = 0
    n = len(s)
    if i < n and s[i] in "+-":
        i += 1
    start_digits = i
    while i < n and "0" <= s[i] <= "9":
        i += 1
    if i == start_digits:
        return 0
    value = int(s[:i])
    if value > INT64_MAX:
        return INT64_MAX
    if value < INT64_MIN:
        return INT64_MIN
    return value


def text_to_real(text: str) -> float:
    num, _ = numeric_prefix(text)
    return float(num)


def real_to_integer(f: float) -> int:
    """SQLite ``CAST(real AS INTEGER)``: truncate toward zero, clamp to i64."""
    if math.isnan(f):
        return 0
    if f >= float(INT64_MAX):
        return INT64_MAX
    if f <= float(INT64_MIN):
        return INT64_MIN
    return math.trunc(f)


def format_real(f: float) -> str:
    """Render a REAL exactly the way SQLite prints it (``%!.15g``).

    Rules reverse-engineered and validated against SQLite 3.40: 15
    significant digits, a decimal point is always present (``1e14`` prints
    as ``100000000000000.0`` and ``9e99`` as ``9.0e+99``), exponents keep
    printf's minimum two digits, and negative zero prints as ``0.0``.
    """
    if math.isnan(f):
        return ""  # SQLite renders NaN as NULL; callers never pass NaN
    if math.isinf(f):
        return "Inf" if f > 0 else "-Inf"
    if f == 0.0:
        return "0.0"
    out = format(f, ".15g")
    if "e" in out:
        mantissa, _, exponent = out.partition("e")
        if "." not in mantissa:
            mantissa += ".0"
        return f"{mantissa}e{exponent}"
    if "." not in out:
        out += ".0"
    return out


def format_int(i: int) -> str:
    return str(i)


# ---------------------------------------------------------------------------
# Collating sequences
# ---------------------------------------------------------------------------

def collate_binary(a: str, b: str) -> int:
    """Memcmp-style comparison over UTF-8 encodings."""
    ab, bb = a.encode("utf-8"), b.encode("utf-8")
    if ab < bb:
        return -1
    if ab > bb:
        return 1
    return 0


def collate_nocase(a: str, b: str) -> int:
    """SQLite NOCASE: ASCII-only case folding, then binary comparison."""
    return collate_binary(_ascii_lower(a), _ascii_lower(b))


def collate_rtrim(a: str, b: str) -> int:
    """SQLite RTRIM: ignore trailing spaces, then binary comparison."""
    return collate_binary(a.rstrip(" "), b.rstrip(" "))


def _ascii_lower(s: str) -> str:
    return "".join(chr(ord(c) + 32) if "A" <= c <= "Z" else c for c in s)


COLLATIONS: dict[str, Callable[[str, str], int]] = {
    "BINARY": collate_binary,
    "NOCASE": collate_nocase,
    "RTRIM": collate_rtrim,
}


def get_collation(name: str) -> Callable[[str, str], int]:
    try:
        return COLLATIONS[name.upper()]
    except KeyError:
        raise KeyError(f"no such collation sequence: {name}") from None


def compare_blobs(a: bytes, b: bytes) -> int:
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def compare_numbers(a: float | int | bool, b: float | int | bool) -> int:
    """Compare two numbers exactly (no float rounding for large ints)."""
    a = int(a) if isinstance(a, bool) else a
    b = int(b) if isinstance(b, bool) else b
    if isinstance(a, int) and isinstance(b, int):
        return (a > b) - (a < b)
    af, bf = float(a), float(b)
    if math.isnan(af) or math.isnan(bf):
        # SQL NaN never occurs in stored data (SQLite stores NULL instead);
        # order NaN lowest for determinism.
        an, bn = math.isnan(af), math.isnan(bf)
        if an and bn:
            return 0
        return -1 if an else 1
    return (af > bf) - (af < bf)
