"""The per-plan timing collector and planner-quality scorer.

A :class:`PlanTimer` rides inside the multi-plan oracle: after the
oracle has executed and accepted a distinct plan (dedup already done),
the timer re-executes it ``repeats`` times through the same non-logged
``with_plan`` hook and keeps the **minimum** elapsed time — min-of-k is
the standard robust estimator for "how fast can this plan go" because
scheduling noise only ever adds time.  Once all of a query's plans are
collected the timer scores the planner: the unforced baseline plan's
elapsed time divided by the best *forced* alternative's is the
**slowdown** of the plan the planner actually chose.  A slowdown at or
above the configured ratio becomes a :class:`PlanRegression` — an
optimizer-inefficiency finding, deliberately *not* a
:class:`~repro.core.reports.BugReport`: the rows were right, only the
plan choice was poor, so these records live beside (never among) the
``Oracle.MULTIPLAN`` correctness findings.

Determinism contract: timing adds executions but consumes no RNG and
goes only through ``with_plan`` (never logged, never advances fault
schedules), so the synthesized statement stream is identical with the
timer on or off.  The wall-clock values themselves are of course not
reproducible — they are journaled per round, which is exactly how a
``--resume`` continuation rebuilds the same archive without re-timing
completed rounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import DBCrash, DBError
from repro.plantime.shape import query_shape
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names


def _us(seconds: float) -> float:
    """Microseconds, rounded to a JSON-friendly width."""
    return round(seconds * 1e6, 2)


@dataclass
class PlanRegression:
    """One query whose planner-chosen plan lost to a forced alternative.

    A non-bug finding: serialized into journal rounds and archives, and
    surfaced by ``pqs report`` / ``pqs optreport`` / ``/plantime`` — but
    never reduced, attributed, or counted as a correctness report.
    """

    shape: str
    sql: str
    #: baseline elapsed / best forced elapsed (>= the flagging ratio).
    slowdown: float
    baseline_us: float
    best_us: float
    baseline_fingerprint: str = ""
    best_fingerprint: str = ""
    #: The winning plan's hints (``PlannerHints.as_dict()`` form).
    best_hints: Optional[dict] = None

    def to_json(self) -> dict:
        out = {"shape": self.shape, "sql": self.sql,
               "slowdown": self.slowdown,
               "baseline_us": self.baseline_us, "best_us": self.best_us,
               "baseline_fingerprint": self.baseline_fingerprint,
               "best_fingerprint": self.best_fingerprint}
        if self.best_hints:
            out["best_hints"] = dict(self.best_hints)
        return out

    @staticmethod
    def from_json(data: dict) -> "PlanRegression":
        return PlanRegression(
            shape=data.get("shape", ""), sql=data.get("sql", ""),
            slowdown=float(data.get("slowdown", 0.0)),
            baseline_us=float(data.get("baseline_us", 0.0)),
            best_us=float(data.get("best_us", 0.0)),
            baseline_fingerprint=data.get("baseline_fingerprint", ""),
            best_fingerprint=data.get("best_fingerprint", ""),
            best_hints=data.get("best_hints"))


class NullPlanTimer:
    """Off-is-free stand-in: no sampling, no state, no journal keys."""

    __slots__ = ()
    enabled = False

    def sample(self, sql: str, hints, with_plan) -> None:
        return None

    def observe_query(self, sql: str, runs) -> None:
        return None

    def take_round_outcome(self) -> dict:
        return {}


NULL_PLAN_TIMER = NullPlanTimer()


class PlanTimer:
    """Min-of-k plan timing plus per-query planner-quality scoring."""

    enabled = True

    def __init__(self, repeats: int = 3, ratio: float = 1.5,
                 telemetry: Optional[Telemetry] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.repeats = max(1, int(repeats))
        self.ratio = float(ratio)
        self.clock = clock if clock is not None else time.perf_counter
        t = telemetry or NULL_TELEMETRY
        self._m_queries = t.counter(metric_names.PLANTIME_QUERIES)
        self._m_plan_seconds = t.histogram(
            metric_names.PLANTIME_PLAN_SECONDS)
        self._m_slowdown = t.histogram(
            metric_names.PLANTIME_SLOWDOWN,
            buckets=metric_names.RATIO_BUCKETS)
        self._m_regressions = t.counter(
            metric_names.PLANTIME_REGRESSIONS)
        self._round_queries: list[dict] = []
        self._round_regressions: list[dict] = []

    # -- sampling ------------------------------------------------------------
    def sample(self, sql: str, hints, with_plan) -> Optional[float]:
        """Best-of-``repeats`` elapsed seconds for one forced plan.

        The plan already executed once (the oracle needed its rows and
        fingerprint before deciding it was distinct); these are pure
        re-executions.  A plan that fails on a re-run — flaky forcing —
        is left untimed rather than scored on partial data.
        """
        best: Optional[float] = None
        for _ in range(self.repeats):
            started = self.clock()
            try:
                with_plan(sql, hints)
            except (DBError, DBCrash):
                return None
            elapsed = self.clock() - started
            if best is None or elapsed < best:
                best = elapsed
        return best

    # -- scoring -------------------------------------------------------------
    def observe_query(self, sql: str, runs) -> None:
        """Score one query's timed plan runs and queue them for the
        round outcome.  *runs* are the oracle's :class:`~repro.multiplan
        .oracle.PlanRun` values; only those with an ``elapsed`` sample
        participate."""
        timed = [run for run in runs
                 if getattr(run, "elapsed", None) is not None]
        if not timed:
            return
        shape = query_shape(sql)
        entry: dict = {
            "shape": shape,
            "sql": sql,
            "plans": [{"fingerprint": run.fingerprint,
                       "hints": run.hints.as_dict(),
                       "rows": len(run.rows),
                       "elapsed_us": _us(run.elapsed)}
                      for run in timed],
        }
        self._m_queries.inc()
        for run in timed:
            self._m_plan_seconds.observe(run.elapsed)
        baseline = next(
            (run for run in timed if run.hints.is_baseline), None)
        forced = [run for run in timed if not run.hints.is_baseline]
        if baseline is not None and forced:
            best = min(forced, key=lambda run: run.elapsed)
            if best.elapsed > 0:
                slowdown = round(baseline.elapsed / best.elapsed, 3)
                entry["slowdown"] = slowdown
                self._m_slowdown.observe(slowdown)
                if slowdown >= self.ratio:
                    regression = PlanRegression(
                        shape=shape, sql=sql, slowdown=slowdown,
                        baseline_us=_us(baseline.elapsed),
                        best_us=_us(best.elapsed),
                        baseline_fingerprint=baseline.fingerprint,
                        best_fingerprint=best.fingerprint,
                        best_hints=best.hints.as_dict())
                    self._round_regressions.append(regression.to_json())
                    self._m_regressions.inc()
        self._round_queries.append(entry)

    def take_round_outcome(self) -> dict:
        """Drain this round's timings into a journal-ready dict."""
        if not self._round_queries:
            return {}
        outcome = {
            "timed": len(self._round_queries),
            "queries": self._round_queries,
            "regressions": self._round_regressions,
        }
        self._round_queries = []
        self._round_regressions = []
        return outcome
