"""Literal-free query-shape fingerprints.

Two synthesized queries that differ only in literals exercise the same
planner decision, so per-plan timings are aggregated by *query shape*:
the SQL text with every string, blob, and numeric literal replaced by
``?`` and whitespace collapsed.  The generator's canonical ``t0``/
``c0``/``i0`` naming makes the shape — and therefore the archive key —
stable across seeds and campaigns, which is what lets ``pqs optreport``
line two archives up shape by shape.

Replacement order matters: blob literals (``x'00ff'``) before plain
strings (their hex body must not survive as a number), strings before
numbers (digits inside a string are part of the literal, not a numeric
token).  ``\\b\\d`` never fires inside identifiers like ``t0`` — there
is no word boundary between two word characters.
"""

from __future__ import annotations

import hashlib
import re

_BLOB = re.compile(r"[xX]'[0-9a-fA-F]*'")
#: SQL strings escape a quote by doubling it: 'it''s' is one literal.
_STRING = re.compile(r"'(?:[^']|'')*'")
_NUMBER = re.compile(r"\b\d+(?:\.\d+)?(?:[eE][+-]?\d+)?\b")
_WS = re.compile(r"\s+")


def canonical_shape(sql: str) -> str:
    """The literal-free, whitespace-collapsed form of *sql*."""
    text = _BLOB.sub("?", sql)
    text = _STRING.sub("?", text)
    text = _NUMBER.sub("?", text)
    return _WS.sub(" ", text).strip()


def query_shape(sql: str) -> str:
    """Stable truncated digest of :func:`canonical_shape` — the archive
    key (same truncation width as plan fingerprints and report
    fingerprints, so the three id spaces read alike in tooling)."""
    body = canonical_shape(sql).encode("utf-8")
    return hashlib.sha256(body).hexdigest()[:12]
