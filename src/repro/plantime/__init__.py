"""``repro.plantime`` — the optimizer observatory.

The multi-plan oracle (:mod:`repro.multiplan`) already executes every
synthesized query under every distinct feasible plan to cross-check
row multisets; this package adds the clock it was missing.  Following
TAQO-style optimizer testing (score the planner's *chosen* plan against
the best plan it could have chosen), four pieces:

* :class:`PlanTimer` (:mod:`repro.plantime.collector`) — min-of-k
  repeat sampling of each forced-plan execution, a per-query slowdown
  score (unforced baseline vs. best forced alternative), and
  :class:`PlanRegression` findings for queries whose planner-chosen
  plan is slower than the best alternative by a configurable ratio.
  Regressions are optimizer-*inefficiency* records, deliberately kept
  apart from :class:`~repro.core.reports.Oracle` correctness bugs;
* :func:`query_shape` (:mod:`repro.plantime.shape`) — the literal-free
  query-shape fingerprint that keys timings so re-synthesized queries
  with different literals aggregate into one model point;
* :class:`TimingArchive` (:mod:`repro.plantime.archive`) — the
  persistent JSONL archive keyed by (query shape, canonical plan
  fingerprint), min-merged across rounds and workers exactly like
  :class:`~repro.guidance.coverage.PlanCoverage`;
* :func:`compare_archives` (:mod:`repro.plantime.optreport`) — the
  ``pqs optreport`` differ: two archives in, new / fixed / worsened /
  ongoing regressions out, with per-plan timing tables.

Off by default everywhere: without ``--plan-timing`` the oracle uses
:data:`NULL_PLAN_TIMER` and the statement stream, journal bytes, and
plan enumeration are bit-identical to a build without this package.
"""

from repro.plantime.archive import TimingArchive, plan_key
from repro.plantime.collector import (
    NULL_PLAN_TIMER,
    NullPlanTimer,
    PlanRegression,
    PlanTimer,
)
from repro.plantime.optreport import compare_archives, render_optreport
from repro.plantime.shape import canonical_shape, query_shape

__all__ = [
    "NULL_PLAN_TIMER", "NullPlanTimer", "PlanRegression", "PlanTimer",
    "TimingArchive", "canonical_shape", "compare_archives", "plan_key",
    "query_shape", "render_optreport",
]
