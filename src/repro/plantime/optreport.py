"""``pqs optreport`` — diff two timing archives.

Given an *old* and a *new* :class:`~repro.plantime.archive
.TimingArchive`, classify each query shape measured in both by whether
its planner slowdown crossed the regression ratio:

* **new** — regressed now, was fine (or unflagged) before;
* **fixed** — regressed before, measured fine now;
* **worsened** — regressed in both, and the new slowdown exceeds the
  old by more than the worsen margin;
* **ongoing** — regressed in both, roughly unchanged.

Classification is pure arithmetic over the archives' min-merged
timings, so the same two files always produce the same report — the
property CI leans on when it self-compares an archive (zero in every
bucket) and when the bench seeds a deliberate slowdown (exactly one
``new``/``worsened`` entry).
"""

from __future__ import annotations

from repro.multiplan.hints import PlannerHints
from repro.plantime.archive import TimingArchive


def _describe_hints(hints: dict) -> str:
    try:
        return PlannerHints.from_dict(hints or {}).describe()
    except (TypeError, ValueError):
        return repr(hints)


def _plan_table(old: TimingArchive, new: TimingArchive,
                shape: str) -> list[dict]:
    """Join the two archives' per-plan timings for one shape."""
    old_plans = old.plans_for(shape)
    new_plans = new.plans_for(shape)
    table = []
    for key in sorted(set(old_plans) | set(new_plans)):
        before = old_plans.get(key)
        after = new_plans.get(key)
        source = after or before
        table.append({
            "plan": key,
            "hints": _describe_hints(source["hints"]),
            "rows": source["rows"],
            "old_us": before["elapsed_us"] if before else None,
            "new_us": after["elapsed_us"] if after else None,
        })
    return table


def compare_archives(old: TimingArchive, new: TimingArchive,
                     ratio: float = 1.5,
                     worsen_margin: float = 0.10) -> dict:
    """Classify planner regressions between two archives."""
    old_shapes = set(old.shapes())
    new_shapes = set(new.shapes())
    shared = old_shapes & new_shapes

    buckets: dict[str, list[dict]] = {
        "new": [], "fixed": [], "worsened": [], "ongoing": []}
    for shape in sorted(shared):
        old_slowdown = old.slowdown(shape)
        new_slowdown = new.slowdown(shape)
        if old_slowdown is None and new_slowdown is None:
            continue
        was = old_slowdown is not None and old_slowdown >= ratio
        now = new_slowdown is not None and new_slowdown >= ratio
        if not was and not now:
            continue
        entry = {
            "shape": shape,
            "sql": new.sql_for(shape) or old.sql_for(shape),
            "old_slowdown": old_slowdown,
            "new_slowdown": new_slowdown,
            "plans": _plan_table(old, new, shape),
        }
        if now and not was:
            buckets["new"].append(entry)
        elif was and not now:
            if new_slowdown is not None:
                buckets["fixed"].append(entry)
            else:
                # Not measured well enough in the new run to call fixed.
                buckets["ongoing"].append(entry)
        elif (new_slowdown is not None and old_slowdown is not None
                and new_slowdown > old_slowdown * (1.0 + worsen_margin)):
            buckets["worsened"].append(entry)
        else:
            buckets["ongoing"].append(entry)
    for bucket in buckets.values():
        bucket.sort(key=lambda item: (
            -(item["new_slowdown"] or item["old_slowdown"] or 0.0),
            item["shape"]))
    return {
        "ratio": ratio,
        "worsen_margin": worsen_margin,
        "shapes_old": len(old_shapes),
        "shapes_new": len(new_shapes),
        "shapes_compared": len(shared),
        "only_old": len(old_shapes - new_shapes),
        "only_new": len(new_shapes - old_shapes),
        "new": buckets["new"],
        "fixed": buckets["fixed"],
        "worsened": buckets["worsened"],
        "ongoing": buckets["ongoing"],
    }


def _fmt_us(value) -> str:
    return "-" if value is None else f"{value:.1f}us"


def _fmt_slowdown(value) -> str:
    return "?" if value is None else f"{value:.2f}x"


def _render_entry(entry: dict, lines: list[str]) -> None:
    lines.append(f"  shape {entry['shape']}  "
                 f"{_fmt_slowdown(entry['old_slowdown'])} -> "
                 f"{_fmt_slowdown(entry['new_slowdown'])}")
    lines.append(f"    {entry['sql']}")
    for plan in entry["plans"]:
        lines.append(
            f"    plan {plan['plan']:<16} {plan['hints']:<24} "
            f"rows={plan['rows']:<4} old={_fmt_us(plan['old_us'])} "
            f"new={_fmt_us(plan['new_us'])}")


def render_optreport(comparison: dict) -> str:
    """Human-readable rendering of :func:`compare_archives` output."""
    lines = ["optimizer regression report",
             f"  regression ratio: {comparison['ratio']:.2f}x  "
             f"worsen margin: {comparison['worsen_margin']:.0%}",
             f"  shapes: {comparison['shapes_old']} old, "
             f"{comparison['shapes_new']} new, "
             f"{comparison['shapes_compared']} compared "
             f"({comparison['only_old']} only-old, "
             f"{comparison['only_new']} only-new)"]
    for bucket in ("new", "worsened", "fixed", "ongoing"):
        entries = comparison[bucket]
        lines.append(f"{bucket} regressions: {len(entries)}")
        for entry in entries:
            _render_entry(entry, lines)
    return "\n".join(lines)
