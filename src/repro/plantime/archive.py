"""The persistent per-plan timing archive.

A :class:`TimingArchive` is the cross-campaign memory of the optimizer
observatory: for every (query shape, plan) pair it keeps the fastest
elapsed time ever observed and how many observations contributed.
Merging two archives — across rounds, across ``ParallelCampaign``
workers, across whole campaigns — is a min-merge on elapsed times and a
sum on sample counts, the same commutative/associative discipline as
:class:`~repro.guidance.coverage.PlanCoverage`, so archives are
schedule-independent and resume-exact.

Persistence is deterministic JSONL: a header line followed by one
record per shape, shapes and plans sorted, compact separators, sorted
keys.  Two archives with the same content serialize to the same bytes —
the property the resume and parallel-merge acceptance tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import PQSError

ARCHIVE_FORMAT = "pqs-plantime"
ARCHIVE_VERSION = 1


def plan_key(fingerprint: str, hints: Optional[dict]) -> str:
    """Archive key for one plan of a shape.

    The plan fingerprint already encodes the operator tree, but the
    multiplan oracle treats an analyzed and unanalyzed run of the same
    tree as distinct candidates (stats change cost, not shape), so the
    key carries that one bit too.
    """
    if hints and hints.get("analyze"):
        return f"{fingerprint}@analyzed"
    return fingerprint


class TimingArchive:
    """Min-merged per-(shape, plan) timing model."""

    def __init__(self):
        #: shape -> {"sql": str, "plans": {key: plan dict}}
        self._shapes: dict[str, dict] = {}

    # -- accumulation --------------------------------------------------------
    def observe(self, shape: str, sql: str, plans: Iterable[dict]) -> None:
        """Fold one timed query into the model.

        *plans* are collector-format dicts: ``{"fingerprint", "hints",
        "rows", "elapsed_us"}``.
        """
        entry = self._shapes.setdefault(shape, {"sql": sql, "plans": {}})
        for plan in plans:
            key = plan_key(plan.get("fingerprint", ""),
                           plan.get("hints"))
            known = entry["plans"].get(key)
            if known is None:
                entry["plans"][key] = {
                    "fingerprint": plan.get("fingerprint", ""),
                    "hints": dict(plan.get("hints") or {}),
                    "rows": int(plan.get("rows", 0)),
                    "elapsed_us": float(plan.get("elapsed_us", 0.0)),
                    "samples": 1,
                }
            else:
                known["elapsed_us"] = min(
                    known["elapsed_us"], float(plan.get("elapsed_us", 0.0)))
                known["samples"] += 1

    def absorb_outcome(self, outcome: dict) -> None:
        """Fold one journal-round plantime outcome (collector format)."""
        for query in outcome.get("queries", ()):
            self.observe(query.get("shape", ""), query.get("sql", ""),
                         query.get("plans", ()))

    @classmethod
    def from_outcomes(cls, outcomes: Iterable[dict]) -> "TimingArchive":
        archive = cls()
        for outcome in outcomes:
            archive.absorb_outcome(outcome)
        return archive

    def merge(self, other: "TimingArchive") -> None:
        for shape, entry in other._shapes.items():
            mine = self._shapes.setdefault(
                shape, {"sql": entry["sql"], "plans": {}})
            for key, plan in entry["plans"].items():
                known = mine["plans"].get(key)
                if known is None:
                    mine["plans"][key] = dict(plan)
                else:
                    known["elapsed_us"] = min(
                        known["elapsed_us"], plan["elapsed_us"])
                    known["samples"] += plan["samples"]

    # -- queries -------------------------------------------------------------
    def shapes(self) -> list[str]:
        return sorted(self._shapes)

    def __len__(self) -> int:
        return len(self._shapes)

    def sql_for(self, shape: str) -> str:
        entry = self._shapes.get(shape)
        return entry["sql"] if entry else ""

    def plans_for(self, shape: str) -> dict[str, dict]:
        entry = self._shapes.get(shape)
        return dict(entry["plans"]) if entry else {}

    def slowdown(self, shape: str) -> Optional[float]:
        """Baseline elapsed / best forced elapsed for one shape, or
        ``None`` when either side is missing or degenerate."""
        entry = self._shapes.get(shape)
        if not entry:
            return None
        baseline = None
        best_forced = None
        for plan in entry["plans"].values():
            if plan["hints"]:
                if best_forced is None or plan["elapsed_us"] < best_forced:
                    best_forced = plan["elapsed_us"]
            else:
                baseline = plan["elapsed_us"]
        if baseline is None or best_forced is None or best_forced <= 0:
            return None
        return round(baseline / best_forced, 3)

    def regressions(self, ratio: float = 1.5) -> list[dict]:
        """Shapes whose baseline plan is at least *ratio* slower than the
        best forced alternative, worst first."""
        found = []
        for shape in self.shapes():
            slowdown = self.slowdown(shape)
            if slowdown is not None and slowdown >= ratio:
                found.append({"shape": shape,
                              "sql": self._shapes[shape]["sql"],
                              "slowdown": slowdown})
        found.sort(key=lambda item: (-item["slowdown"], item["shape"]))
        return found

    # -- persistence ---------------------------------------------------------
    def to_lines(self) -> list[str]:
        """Deterministic JSONL serialization (header + sorted shapes)."""
        lines = [json.dumps(
            {"kind": "header", "format": ARCHIVE_FORMAT,
             "version": ARCHIVE_VERSION, "shapes": len(self._shapes)},
            sort_keys=True, separators=(",", ":"))]
        for shape in self.shapes():
            entry = self._shapes[shape]
            record = {
                "kind": "shape",
                "shape": shape,
                "sql": entry["sql"],
                "plans": {key: entry["plans"][key]
                          for key in sorted(entry["plans"])},
            }
            lines.append(json.dumps(
                record, sort_keys=True, separators=(",", ":")))
        return lines

    def dump(self, path) -> None:
        Path(path).write_text(
            "\n".join(self.to_lines()) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path) -> "TimingArchive":
        target = Path(path)
        if not target.exists():
            raise PQSError(f"timing archive not found: {target}")
        archive = cls()
        lines = target.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise PQSError(f"timing archive is empty: {target}")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise PQSError(
                f"timing archive has a malformed header: {target}") from exc
        if (header.get("kind") != "header"
                or header.get("format") != ARCHIVE_FORMAT):
            raise PQSError(
                f"not a {ARCHIVE_FORMAT} archive: {target}")
        for line in lines[1:]:
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("kind") != "shape":
                continue
            shape = record.get("shape", "")
            entry = archive._shapes.setdefault(
                shape, {"sql": record.get("sql", ""), "plans": {}})
            for key, plan in record.get("plans", {}).items():
                entry["plans"][key] = {
                    "fingerprint": plan.get("fingerprint", ""),
                    "hints": dict(plan.get("hints") or {}),
                    "rows": int(plan.get("rows", 0)),
                    "elapsed_us": float(plan.get("elapsed_us", 0.0)),
                    "samples": int(plan.get("samples", 1)),
                }
        return archive
