"""The per-database statement stream.

``initial_statements()`` creates tables and seed rows (every table gets
at least one row — paper §3.1 "we ensure that each table holds at least
one row"); ``random_action()`` then draws from the weighted statement
mix.  Each generated statement carries an ``on_success`` callback so the
tool-side schema model is updated only when the target actually accepted
the statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import Dialect
from repro.rng import RandomSource
from repro.stategen.data_gen import DataGenerator
from repro.stategen.schema_gen import SchemaGenerator


@dataclass
class GeneratedStatement:
    sql: str
    kind: str
    on_success: Optional[Callable[[], None]] = None


@dataclass
class ActionWeights:
    """Relative statement-mix weights; the defaults approximate the
    statement distribution behind the paper's Figure 3."""

    insert: float = 28.0
    update: float = 12.0
    delete: float = 6.0
    create_index: float = 18.0
    create_view: float = 5.0
    alter: float = 7.0
    maintenance: float = 14.0
    option: float = 10.0
    transaction: float = 4.0
    drop: float = 3.0

    def items(self) -> list[tuple[str, float]]:
        return [("insert", self.insert), ("update", self.update),
                ("delete", self.delete),
                ("create_index", self.create_index),
                ("create_view", self.create_view), ("alter", self.alter),
                ("maintenance", self.maintenance),
                ("option", self.option),
                ("transaction", self.transaction),
                ("drop", self.drop)]


class ActionGenerator:
    """Draws the statements that build and mutate one database."""

    def __init__(self, dialect: Dialect, schema: SchemaModel,
                 rng: RandomSource,
                 weights: Optional[ActionWeights] = None):
        self.dialect = dialect
        self.schema = schema
        self.rng = rng
        self.weights = weights or ActionWeights()
        self.schema_gen = SchemaGenerator(dialect, schema, rng)
        self.data_gen = DataGenerator(dialect, schema, rng)
        #: Tracks whether the last BEGIN we issued was accepted, so the
        #: stream stays balanced (COMMIT/ROLLBACK follows a BEGIN).
        self.in_transaction = False

    # -- initial state (paper step 1) -----------------------------------------
    def initial_plan_groups(self, n_tables: int, rows_per_table: int):
        """Yield the initial plan as lists of batchable statements.

        Each group is one CREATE TABLE plus its seed INSERTs — all
        generated from the group's own table model, so the whole group
        can ship to the target as a single batch.  Group *boundaries*
        stay lazy: the next group's CREATE TABLE consults the schema
        state registered by this group's ``on_success`` callbacks (e.g.
        a second table can INHERIT from the first on PostgreSQL), so
        callers must absorb a group's outcomes before pulling the next
        group.  The random-stream draw order is identical to generating
        statement-at-a-time, because executing a statement never draws
        from this generator's stream.
        """
        for _ in range(n_tables):
            sql, model = self.schema_gen.create_table()
            group = [GeneratedStatement(
                sql, "CREATE TABLE",
                on_success=lambda m=model: self.schema.tables.append(m))]
            remaining = rows_per_table
            while remaining > 0:
                batch = min(remaining, self.rng.int_between(1, 5))
                remaining -= batch
                group.append(GeneratedStatement(
                    self.data_gen.insert(model, max_rows=batch),
                    "INSERT"))
            yield group

    def initial_statements(self, n_tables: int, rows_per_table: int):
        """Yield CREATE TABLE + seed INSERTs, lazily (flattened view of
        :meth:`initial_plan_groups`)."""
        for group in self.initial_plan_groups(n_tables, rows_per_table):
            yield from group

    # -- incremental mutation -----------------------------------------------
    def random_action(self) -> Optional[GeneratedStatement]:
        tables = self.schema.base_tables()
        if not tables:
            return None
        names, weights = zip(*self.weights.items())
        kind = self.rng.weighted_choice(list(names), list(weights))
        table = self.rng.choice(tables)
        if kind == "insert":
            return GeneratedStatement(self.data_gen.insert(table), "INSERT")
        if kind == "update":
            return GeneratedStatement(self.data_gen.update(table), "UPDATE")
        if kind == "delete":
            return GeneratedStatement(self.data_gen.delete(table), "DELETE")
        if kind == "create_index":
            sql = self.schema_gen.create_index(table)
            name = sql.split(" ON ")[0].split()[-1]
            return GeneratedStatement(
                sql, "CREATE INDEX",
                on_success=lambda n=name: self.schema.index_names.append(n))
        if kind == "create_view":
            if not self.dialect.supports_views:
                return None
            sql, model = self.schema_gen.create_view(table)
            return GeneratedStatement(
                sql, "CREATE VIEW",
                on_success=lambda m=model: self.schema.tables.append(m))
        if kind == "alter":
            return self._alter(table)
        if kind == "maintenance":
            return self._maintenance(table)
        if kind == "transaction":
            return self._transaction()
        if kind == "drop":
            return self._drop()
        return self._option()

    def _drop(self) -> Optional[GeneratedStatement]:
        """DROP an explicit index or a view (never base tables — the
        pivot machinery needs rows to select from)."""
        views = [t for t in self.schema.tables if t.is_view]
        if self.schema.index_names and (not views or self.rng.flip(0.6)):
            name = self.rng.choice(self.schema.index_names)

            def forget_index(n=name):
                if n in self.schema.index_names:
                    self.schema.index_names.remove(n)

            return GeneratedStatement(f"DROP INDEX {name}", "DROP",
                                      on_success=forget_index)
        if views:
            view = self.rng.choice(views)

            def forget_view(v=view):
                if v in self.schema.tables:
                    self.schema.tables.remove(v)

            return GeneratedStatement(f"DROP VIEW {view.name}", "DROP",
                                      on_success=forget_view)
        return None

    def _transaction(self) -> GeneratedStatement:
        if self.in_transaction:
            sql = "COMMIT" if self.rng.flip(0.7) else "ROLLBACK"

            def leave():
                self.in_transaction = False

            return GeneratedStatement(sql, "TRANSACTION",
                                      on_success=leave)

        def enter():
            self.in_transaction = True

        return GeneratedStatement("BEGIN", "TRANSACTION",
                                  on_success=enter)

    def close_transaction(self) -> Optional[GeneratedStatement]:
        """A COMMIT to balance a dangling BEGIN (used at phase end)."""
        if not self.in_transaction:
            return None

        def leave():
            self.in_transaction = False

        return GeneratedStatement("COMMIT", "TRANSACTION",
                                  on_success=leave)

    def _alter(self, table: TableModel) -> GeneratedStatement:
        if self.rng.flip(0.5):
            old = self.rng.choice(table.columns)
            new_name = f"r{self.rng.int_between(0, 99)}"
            if any(c.name == new_name for c in table.columns):
                new_name += "x"
            sql = (f"ALTER TABLE {table.name} RENAME COLUMN "
                   f"{old.name} TO {new_name}")

            def apply(column=old, name=new_name):
                column.name = name

            return GeneratedStatement(sql, "ALTER", on_success=apply)
        new_col = ColumnModel(
            name=f"a{self.rng.int_between(0, 99)}",
            type_name=self.rng.choice(
                [t for t in self.dialect.column_types if t != "SERIAL"]))
        while any(c.name == new_col.name for c in table.columns):
            new_col.name += "x"
        type_sql = f" {new_col.type_name}" if new_col.type_name else ""
        sql = (f"ALTER TABLE {table.name} ADD COLUMN "
               f"{new_col.name}{type_sql}")

        def apply_add(t=table, c=new_col):
            t.columns.append(c)

        return GeneratedStatement(sql, "ALTER", on_success=apply_add)

    def _maintenance(self, table: TableModel,
                     ) -> Optional[GeneratedStatement]:
        if not self.dialect.maintenance:
            return None
        command = self.rng.choice(self.dialect.maintenance)
        if command == "VACUUM":
            return GeneratedStatement("VACUUM", "VACUUM")
        if command == "VACUUM FULL":
            return GeneratedStatement("VACUUM FULL", "VACUUM")
        if command == "REINDEX":
            target = f" {table.name}" if self.rng.flip(0.5) else ""
            return GeneratedStatement(f"REINDEX{target}", "REINDEX")
        if command == "ANALYZE":
            target = f" {table.name}" if self.rng.flip(0.6) else ""
            return GeneratedStatement(f"ANALYZE{target}", "ANALYZE")
        if command == "CHECK TABLE":
            upgrade = " FOR UPGRADE" if self.rng.flip(0.5) else ""
            return GeneratedStatement(
                f"CHECK TABLE {table.name}{upgrade}", "CHECK TABLE")
        if command == "REPAIR TABLE":
            return GeneratedStatement(f"REPAIR TABLE {table.name}",
                                      "REPAIR TABLE")
        if command == "DISCARD":
            return GeneratedStatement("DISCARD ALL", "DISCARD")
        if command == "CREATE STATISTICS":
            return GeneratedStatement(
                self.schema_gen.create_statistics(table),
                "CREATE STATISTICS")
        return None

    def _option(self) -> Optional[GeneratedStatement]:
        if not self.dialect.options:
            return None
        name, values = self.rng.choice(self.dialect.options)
        value = self.rng.choice(values)
        if self.dialect.name == "sqlite":
            return GeneratedStatement(f"PRAGMA {name} = {value}", "PRAGMA")
        scope = "GLOBAL " if (self.dialect.name == "mysql"
                              and self.rng.flip(0.5)) else ""
        return GeneratedStatement(f"SET {scope}{name} = {value}", "SET")
