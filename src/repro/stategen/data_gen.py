"""Random DML: INSERT / UPDATE / DELETE.

Row counts stay low (the paper found most bugs with 10–30 rows and
keeps them small to avoid join blowup, §3.4); values come from the
boundary-biased literal pools; UPDATE and DELETE conditions are simple
comparisons so that random state mutation rarely wipes whole tables.
"""

from __future__ import annotations

from repro.core.literals import LiteralGenerator
from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import Dialect
from repro.rng import RandomSource
from repro.sqlast.render import render_literal


class DataGenerator:
    """Generates INSERT / UPDATE / DELETE statements."""

    def __init__(self, dialect: Dialect, schema: SchemaModel,
                 rng: RandomSource):
        self.dialect = dialect
        self.schema = schema
        self.rng = rng
        self.literals = LiteralGenerator(dialect.name, rng)

    # -- INSERT ------------------------------------------------------------
    def insert(self, table: TableModel, max_rows: int = 5) -> str:
        conflict = ""
        if self.dialect.supports_or_replace and self.rng.flip(0.1):
            conflict = "OR REPLACE "
        elif self.dialect.supports_or_ignore and self.rng.flip(0.25):
            conflict = "OR IGNORE "
        columns = list(table.columns)
        if len(columns) > 1 and self.rng.flip(0.4):
            columns = self.rng.sample(columns,
                                      self.rng.int_between(1, len(columns)))
        col_sql = ", ".join(c.name for c in columns)
        n_rows = self.rng.int_between(1, max_rows)
        rows = []
        for _ in range(n_rows):
            values = [self._insert_literal(c, table) for c in columns]
            rows.append(f"({', '.join(values)})")
        return (f"INSERT {conflict}INTO {table.name}({col_sql}) "
                f"VALUES {', '.join(rows)}")

    def _insert_literal(self, column: ColumnModel,
                        table: TableModel | None = None) -> str:
        # Inheritance children bias their (unconstrained) copy of the
        # parent's key column toward small values — parent/child key
        # collisions are what expose the Listing 15 caveat.
        if (table is not None and table.inherits
                and column.primary_key
                and column.type_bucket(self.dialect.name) == "number"
                and self.rng.flip(0.6)):
            return str(self.rng.int_between(0, 3))
        node = self.literals.insert_value(column.type_name,
                                          null_probability=0.0
                                          if column.not_null else 0.2)
        return render_literal(node.value, self.dialect.name)

    # -- UPDATE ------------------------------------------------------------
    def update(self, table: TableModel) -> str:
        conflict = ""
        if self.dialect.supports_or_replace and self.rng.flip(0.15):
            conflict = "OR REPLACE "
        n_assignments = self.rng.int_between(1, min(2, len(table.columns)))
        targets = self.rng.sample(table.columns, n_assignments)
        assignments = ", ".join(
            f"{c.name} = {self._insert_literal(c, table)}"
            for c in targets)
        sql = f"UPDATE {conflict}{table.name} SET {assignments}"
        if self.rng.flip(0.5):
            sql += f" WHERE {self._simple_condition(table)}"
        return sql

    # -- DELETE ------------------------------------------------------------
    def delete(self, table: TableModel) -> str:
        sql = f"DELETE FROM {table.name}"
        if self.rng.flip(0.85):
            sql += f" WHERE {self._simple_condition(table)}"
        return sql

    # -- helpers ------------------------------------------------------------
    def _simple_condition(self, table: TableModel) -> str:
        """A comparison usable in UPDATE/DELETE WHERE for any dialect."""
        column = self.rng.choice(table.columns)
        if self.rng.flip(0.2):
            suffix = ("ISNULL" if self.dialect.name == "sqlite"
                      else "IS NULL")
            return f"{column.name} {suffix}"
        bucket = column.type_bucket(self.dialect.name)
        if bucket == "any":
            bucket = self.rng.choice(["number", "text"])
        literal = render_literal(
            self.literals.typed_literal(bucket, 0.1).value,
            self.dialect.name)
        op = self.rng.choice(["=", "<", ">", "<=", ">=", "!="])
        return f"{column.name} {op} {literal}"
