"""Random DDL: tables, indexes, views.

Feature draws mirror the paper's §4.3/§4.4 statistics: UNIQUE columns in
roughly a fifth of schemas, PRIMARY KEYs slightly less, explicit
CREATE INDEX more common than either, COLLATE clauses and WITHOUT ROWID
tables for SQLite, storage engines for MySQL, INHERITS for PostgreSQL.
"""

from __future__ import annotations

from repro.core.literals import LiteralGenerator
from repro.core.schema import ColumnModel, SchemaModel, TableModel
from repro.dialects import Dialect
from repro.rng import RandomSource
from repro.sqlast.render import render_literal


class SchemaGenerator:
    """Generates CREATE TABLE / CREATE INDEX / CREATE VIEW statements."""

    def __init__(self, dialect: Dialect, schema: SchemaModel,
                 rng: RandomSource):
        self.dialect = dialect
        self.schema = schema
        self.rng = rng
        self.literals = LiteralGenerator(dialect.name, rng)

    # -- CREATE TABLE -------------------------------------------------------
    def create_table(self) -> tuple[str, TableModel]:
        """Returns (sql, table_model); register the model on success."""
        name = self.schema.fresh_table_name()
        n_columns = self.rng.int_between(1, 4)
        columns = [self._column(i) for i in range(n_columns)]

        inherits = None
        if (self.dialect.supports_inherits and self.schema.base_tables()
                and self.rng.flip(0.3)):
            inherits = self.rng.choice(self.schema.base_tables())
            # PostgreSQL rejects children that redeclare a merged column
            # with a different type, so redeclarations copy the parent's
            # (paper Listing 15 does exactly this: c0 INT in both).
            for col in columns:
                for parent_col in inherits.columns:
                    if parent_col.name == col.name:
                        col.type_name = parent_col.type_name

        pk_column = None
        if inherits is None and self.rng.flip(0.3):
            pk_column = self.rng.choice(columns)
            pk_column.primary_key = True

        without_rowid = (self.dialect.supports_without_rowid
                         and pk_column is not None and self.rng.flip(0.3))
        engine = None
        if self.dialect.engines and self.rng.flip(0.4):
            engine = self.rng.choice(self.dialect.engines)

        defs = []
        for col in columns:
            parts = [col.name]
            if col.type_name is not None:
                parts.append(col.type_name)
            if col.primary_key:
                parts.append("PRIMARY KEY")
            if col.unique:
                parts.append("UNIQUE")
            if col.not_null:
                parts.append("NOT NULL")
            if col.collation is not None:
                parts.append(f"COLLATE {col.collation}")
            defs.append(" ".join(parts))
        sql = f"CREATE TABLE {name}({', '.join(defs)})"
        if without_rowid:
            sql += " WITHOUT ROWID"
        if engine is not None:
            sql += f" ENGINE = {engine}"
        if inherits is not None:
            sql += f" INHERITS ({inherits.name})"

        model_columns = list(columns)
        if inherits is not None:
            # PostgreSQL merges same-named columns, parent's first.  The
            # parent's primary_key flag is preserved on the child model:
            # the child has no PK *constraint* (the Listing 15 caveat),
            # but the data generator uses the flag to bias child rows
            # toward parent-key collisions.
            merged = [ColumnModel(name=c.name, type_name=c.type_name,
                                  collation=c.collation,
                                  primary_key=c.primary_key)
                      for c in inherits.columns]
            names = {c.name for c in merged}
            merged.extend(c for c in columns if c.name not in names)
            model_columns = merged
        model = TableModel(name=name, columns=model_columns,
                           without_rowid=without_rowid, engine=engine,
                           inherits=inherits.name if inherits else None)
        return sql, model

    def _column(self, index: int) -> ColumnModel:
        type_name = self.rng.choice(self.dialect.column_types)
        collation = None
        if self.dialect.name == "sqlite" and self.rng.flip(0.3):
            # NOCASE weighted highest: the paper's collation bugs
            # (Listings 4, 7) clustered there.
            collation = self.rng.weighted_choice(
                ["NOCASE", "RTRIM", "BINARY"], [3.0, 2.0, 1.0])
        # SERIAL as a non-first column keeps inserts simple; allow rarely.
        if type_name == "SERIAL" and self.rng.flip(0.7):
            type_name = "INT"
        return ColumnModel(name=f"c{index}", type_name=type_name,
                           collation=collation,
                           unique=self.rng.flip(0.22),
                           not_null=self.rng.flip(0.08))

    # -- CREATE INDEX -------------------------------------------------------
    def create_index(self, table: TableModel) -> str:
        name = self.schema.fresh_index_name()
        unique = "UNIQUE " if self.rng.flip(0.25) else ""
        n_exprs = self.rng.int_between(1, 2)
        exprs = [self._indexed_expr(table) for _ in range(n_exprs)]
        sql = (f"CREATE {unique}INDEX {name} ON {table.name}"
               f"({', '.join(exprs)})")
        if self.dialect.supports_partial_indexes and self.rng.flip(0.3):
            column = self.rng.choice(table.columns)
            predicate = self.rng.choice([
                f"{column.name} NOT NULL"
                if self.dialect.name == "sqlite"
                else f"{column.name} IS NOT NULL",
                f"{column.name} IS NOT NULL",
            ])
            sql += f" WHERE {predicate}"
        return sql

    def _indexed_expr(self, table: TableModel) -> str:
        column = self.rng.choice(table.columns)
        kind = self.rng.random()
        bucket = column.type_bucket(self.dialect.name)
        # Strict dialects get type-matched index expressions so the
        # per-row index evaluation does not reject every later INSERT.
        strict = self.dialect.name == "postgres"
        if kind < 0.6 or not self.dialect.supports_expression_indexes:
            expr = column.name
        elif kind < 0.75 and (not strict or bucket == "number"):
            literal = render_literal(
                self.literals.typed_literal("number", 0.0).value,
                self.dialect.name)
            expr = f"({column.name} + {literal})"
        elif kind < 0.9 and (not strict or bucket == "text"):
            literal = render_literal(
                self.literals.typed_literal("text", 0.0).value,
                self.dialect.name)
            expr = f"({column.name} || {literal})"
        else:
            if strict:
                expr = (f"({column.name} AND {column.name})"
                        if bucket == "boolean" else column.name)
            else:
                literal = render_literal(
                    self.literals.typed_literal("text", 0.0).value,
                    self.dialect.name)
                expr = f"({column.name} LIKE {literal})"
        if self.dialect.supports_collate_in_index and self.rng.flip(0.4):
            collation = self.rng.weighted_choice(
                ["NOCASE", "RTRIM", "BINARY"], [3.0, 2.0, 1.0])
            expr += f" COLLATE {collation}"
        if self.rng.flip(0.15):
            expr += " DESC"
        return expr

    # -- CREATE VIEW ----------------------------------------------------------
    def create_view(self, table: TableModel) -> tuple[str, TableModel]:
        name = self.schema.fresh_view_name()
        n_cols = self.rng.int_between(1, len(table.columns))
        chosen = self.rng.sample(table.columns, n_cols)
        cols_sql = ", ".join(f"{table.name}.{c.name}" for c in chosen)
        sql = f"CREATE VIEW {name} AS SELECT {cols_sql} FROM {table.name}"
        model = TableModel(
            name=name,
            columns=[ColumnModel(name=c.name, type_name=c.type_name,
                                 collation=c.collation) for c in chosen],
            is_view=True)
        return sql, model

    # -- CREATE STATISTICS (postgres) -----------------------------------------
    def create_statistics(self, table: TableModel) -> str:
        name = f"s{self.schema.next_index_id}"
        self.schema.next_index_id += 1
        count = min(len(table.columns), 2)
        cols = self.rng.sample(table.columns, count)
        col_sql = ", ".join(c.name for c in cols)
        return f"CREATE STATISTICS {name} ON {col_sql} FROM {table.name}"
