"""Random database state generation — step 1 of the paper's approach.

Generates ``CREATE TABLE``/``INSERT`` plus the wider statement mix the
paper credits with exposing bugs: ``UPDATE``, ``DELETE``,
``ALTER TABLE``, ``CREATE INDEX``, ``CREATE VIEW``, DBMS-specific
maintenance (``REPAIR TABLE``/``CHECK TABLE`` for MySQL, ``DISCARD``/
``CREATE STATISTICS`` for PostgreSQL, ``VACUUM``/``REINDEX`` for SQLite
and PostgreSQL) and run-time options (``PRAGMA``/``SET``).
"""

from repro.stategen.actions import ActionGenerator, GeneratedStatement
from repro.stategen.data_gen import DataGenerator
from repro.stategen.schema_gen import SchemaGenerator

__all__ = [
    "ActionGenerator",
    "DataGenerator",
    "GeneratedStatement",
    "SchemaGenerator",
]
