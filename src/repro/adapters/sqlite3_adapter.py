"""Adapter for real SQLite via the stdlib ``sqlite3`` bindings.

This is the live-DBMS demonstration target: the same PQS loop that tests
MiniDB drives a production SQLite build here.  Absent a contemporary bug,
the containment oracle simply never fires — the examples use it to show
the tool running against a real engine, and the differential tests use it
to validate the oracle interpreter.
"""

from __future__ import annotations

import sqlite3

from repro.errors import DBError, IntegrityError
from repro.guidance.fingerprint import PlanStep, steps_from_sqlite_eqp
from repro.values import Value


class SQLite3Connection:
    """A :class:`~repro.adapters.base.DBMSConnection` over ``sqlite3``."""

    dialect = "sqlite"

    def __init__(self, path: str = ":memory:"):
        # Autocommit: the Python bindings' implicit BEGIN would otherwise
        # wrap generated statements in a transaction and break VACUUM.
        self._conn = sqlite3.connect(path, isolation_level=None)

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        try:
            cursor = self._conn.execute(sql)
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            message = str(exc)
            lowered = message.lower()
            if "malformed" in lowered or "disk image" in lowered:
                # Real corruption ("database disk image is malformed") —
                # the paper's motivating SQLite bug class.  Surfacing it
                # as IntegrityError lets the error oracle classify it as
                # always-a-bug rather than generic statement noise.
                raise IntegrityError(message) from exc
            raise DBError(message) from exc
        return [tuple(_lift(v) for v in row) for row in rows]

    def query_plan(self, sql: str) -> list[PlanStep]:
        """Plan steps via ``EXPLAIN QUERY PLAN``, tolerant of the detail
        format drift across SQLite versions (3.24's "SCAN TABLE t0" vs
        3.36+'s "SCAN t0" — the parsing lives in
        :func:`repro.guidance.fingerprint.parse_sqlite_eqp_detail`)."""
        try:
            cursor = self._conn.execute(f"EXPLAIN QUERY PLAN {sql}")
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            raise DBError(str(exc)) from exc
        # EQP rows are (id, parent, notused, detail); detail is last.
        return steps_from_sqlite_eqp(str(row[-1]) for row in rows)

    def close(self) -> None:
        self._conn.close()


def _lift(obj) -> Value:
    if obj is None:
        return Value.null()
    if isinstance(obj, int):
        return Value.integer(obj)
    if isinstance(obj, float):
        return Value.real(obj)
    if isinstance(obj, str):
        return Value.text(obj)
    if isinstance(obj, (bytes, memoryview)):
        return Value.blob(bytes(obj))
    raise DBError(f"unexpected sqlite3 value: {obj!r}")
