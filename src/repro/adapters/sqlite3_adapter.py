"""Adapter for real SQLite via the stdlib ``sqlite3`` bindings.

This is the live-DBMS demonstration target: the same PQS loop that tests
MiniDB drives a production SQLite build here.  Absent a contemporary bug,
the containment oracle simply never fires — the examples use it to show
the tool running against a real engine, and the differential tests use it
to validate the oracle interpreter.
"""

from __future__ import annotations

import sqlite3

from repro.errors import DBError, IntegrityError
from repro.guidance.fingerprint import PlanStep, steps_from_sqlite_eqp
from repro.multiplan.hints import PlannerHints
from repro.sqlast.indexed_by import force_index, force_no_index
from repro.values import Value


class SQLite3Connection:
    """A :class:`~repro.adapters.base.DBMSConnection` over ``sqlite3``."""

    dialect = "sqlite"

    def __init__(self, path: str = ":memory:"):
        # Autocommit: the Python bindings' implicit BEGIN would otherwise
        # wrap generated statements in a transaction and break VACUUM.
        self._conn = sqlite3.connect(path, isolation_level=None)

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        try:
            cursor = self._conn.execute(sql)
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            message = str(exc)
            lowered = message.lower()
            if "malformed" in lowered or "disk image" in lowered:
                # Real corruption ("database disk image is malformed") —
                # the paper's motivating SQLite bug class.  Surfacing it
                # as IntegrityError lets the error oracle classify it as
                # always-a-bug rather than generic statement noise.
                raise IntegrityError(message) from exc
            raise DBError(message) from exc
        return [tuple(_lift(v) for v in row) for row in rows]

    def query_plan(self, sql: str) -> list[PlanStep]:
        """Plan steps via ``EXPLAIN QUERY PLAN``, tolerant of the detail
        format drift across SQLite versions (3.24's "SCAN TABLE t0" vs
        3.36+'s "SCAN t0" — the parsing lives in
        :func:`repro.guidance.fingerprint.parse_sqlite_eqp_detail`)."""
        try:
            cursor = self._conn.execute(f"EXPLAIN QUERY PLAN {sql}")
            rows = cursor.fetchall()
        except sqlite3.Error as exc:
            raise DBError(str(exc)) from exc
        # EQP rows are (id, parent, notused, detail); detail is last.
        return steps_from_sqlite_eqp(str(row[-1]) for row in rows)

    def with_plan(self, sql: str, hints: PlannerHints,
                  ) -> tuple[list[tuple[Value, ...]], list[PlanStep]]:
        """Execute *sql* under the forced plan *hints* describe.

        Mapping onto sqlite's native knobs:

        * ``force_full_scan`` → ``NOT INDEXED`` on every table ref;
        * ``force_index``     → ``INDEXED BY`` on the owning table;
        * ``analyze=True``    → a transient ``ANALYZE`` inside a
          SAVEPOINT, rolled back after the query so the connection's
          statistics state is untouched (``analyze=False`` is a no-op:
          sqlite has no way to hide existing stats);
        * ``no_like_opt``     → documented no-op (sqlite's only LIKE
          knob, ``PRAGMA case_sensitive_like``, changes LIKE *semantics*
          rather than just the plan, so toggling it would make plans
          legitimately diverge).

        Like :meth:`query_plan`, a forced run is introspection, not part
        of the tested statement stream.
        """
        hints.validate()
        forced_sql = sql
        if hints.force_full_scan:
            forced_sql = force_no_index(sql)
        elif hints.force_index is not None:
            owner = self._index_owner(hints.force_index)
            if owner is None:
                raise DBError(f"no such index: {hints.force_index}")
            forced_sql = force_index(sql, owner, hints.force_index)
        # A generated schema can be one sqlite itself refuses to reparse
        # (e.g. an expression index that slipped a non-deterministic
        # function past CREATE): every statement here, ANALYZE and the
        # sqlite_master probes included, must surface as a typed DBError
        # so the oracle can count the plan as a forced failure.
        in_savepoint = False
        try:
            if hints.analyze:
                try:
                    self._conn.execute("SAVEPOINT pqs_multiplan")
                    in_savepoint = True
                    self._conn.execute("ANALYZE")
                except sqlite3.Error as exc:
                    raise DBError(str(exc)) from exc
            try:
                steps = self.query_plan(forced_sql)
                cursor = self._conn.execute(forced_sql)
                rows = cursor.fetchall()
            except sqlite3.Error as exc:
                raise DBError(str(exc)) from exc
            return ([tuple(_lift(v) for v in row) for row in rows],
                    steps)
        finally:
            if in_savepoint:
                try:
                    self._conn.execute("ROLLBACK TO pqs_multiplan")
                    self._conn.execute("RELEASE pqs_multiplan")
                except sqlite3.Error as exc:
                    raise DBError(str(exc)) from exc

    def _index_owner(self, index: str) -> str | None:
        try:
            cursor = self._conn.execute(
                "SELECT tbl_name FROM sqlite_master WHERE type = 'index' "
                "AND name = ? COLLATE NOCASE", (index,))
            row = cursor.fetchone()
        except sqlite3.Error as exc:
            raise DBError(str(exc)) from exc
        return str(row[0]) if row is not None else None

    def index_candidates(self, tables: list[str]) -> list[str]:
        """Explicit index names on *tables* (``sqlite_autoindex_*``
        excluded), sorted for deterministic enumeration."""
        wanted = {t.lower() for t in tables}
        try:
            cursor = self._conn.execute(
                "SELECT name, tbl_name FROM sqlite_master "
                "WHERE type = 'index'")
            found = cursor.fetchall()
        except sqlite3.Error as exc:
            raise DBError(str(exc)) from exc
        return sorted(
            str(name) for name, tbl in found
            if str(tbl).lower() in wanted
            and not str(name).startswith("sqlite_autoindex_"))

    def close(self) -> None:
        self._conn.close()


def _lift(obj) -> Value:
    if obj is None:
        return Value.null()
    if isinstance(obj, int):
        return Value.integer(obj)
    if isinstance(obj, float):
        return Value.real(obj)
    if isinstance(obj, str):
        return Value.text(obj)
    if isinstance(obj, (bytes, memoryview)):
        return Value.blob(bytes(obj))
    raise DBError(f"unexpected sqlite3 value: {obj!r}")
