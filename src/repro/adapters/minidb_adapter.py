"""Adapter for MiniDB engines (the offline stand-ins for MySQL/PostgreSQL
and for defect-injected SQLite)."""

from __future__ import annotations

from typing import Optional

from repro.guidance.fingerprint import PlanStep, steps_from_minidb
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine
from repro.minidb.parser import parse_statement
from repro.values import Value


class MiniDBConnection:
    """A :class:`~repro.adapters.base.DBMSConnection` over MiniDB."""

    def __init__(self, dialect: str = "sqlite",
                 bugs: Optional[BugRegistry] = None):
        self.engine = Engine(dialect, bugs=bugs)
        self.dialect = dialect

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        return self.engine.execute(sql).rows

    def query_plan(self, sql: str) -> list[PlanStep]:
        """Access-path steps for *sql* via MiniDB's EXPLAIN QUERY PLAN.

        Does not count toward ``statements_executed`` — introspection is
        not part of the tested statement stream.
        """
        result = self.engine.execute_statement(
            parse_statement(f"EXPLAIN QUERY PLAN {sql}"))
        return steps_from_minidb(result.python_rows())

    def close(self) -> None:  # MiniDB holds no external resources
        self.engine = None  # type: ignore[assignment]

    @property
    def statements_executed(self) -> int:
        return self.engine.statements_executed if self.engine else 0
