"""Adapter for MiniDB engines (the offline stand-ins for MySQL/PostgreSQL
and for defect-injected SQLite)."""

from __future__ import annotations

from typing import Optional

from repro.guidance.fingerprint import PlanStep, steps_from_minidb
from repro.minidb.bugs import BugRegistry
from repro.minidb.engine import Engine
from repro.minidb.parser import parse_statement
from repro.multiplan.hints import PlannerHints
from repro.values import Value


class MiniDBConnection:
    """A :class:`~repro.adapters.base.DBMSConnection` over MiniDB."""

    def __init__(self, dialect: str = "sqlite",
                 bugs: Optional[BugRegistry] = None):
        self.engine = Engine(dialect, bugs=bugs)
        self.dialect = dialect

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        return self.engine.execute(sql).rows

    def query_plan(self, sql: str) -> list[PlanStep]:
        """Access-path steps for *sql* via MiniDB's EXPLAIN QUERY PLAN.

        Does not count toward ``statements_executed`` — introspection is
        not part of the tested statement stream.
        """
        result = self.engine.execute_statement(
            parse_statement(f"EXPLAIN QUERY PLAN {sql}"))
        return steps_from_minidb(result.python_rows())

    def with_plan(self, sql: str, hints: PlannerHints,
                  ) -> tuple[list[tuple[Value, ...]], list[PlanStep]]:
        """Execute *sql* once under the forced plan *hints* describe.

        Like :meth:`query_plan`, a forced execution is *not* part of the
        tested statement stream: it does not count toward
        ``statements_executed``, and every piece of forcing state —
        ``engine.hints`` and any hint-synthesized ANALYZE flags — is
        restored before returning, so the unforced stream stays
        bit-identical whether or not forced runs happened in between.
        """
        hints.validate()
        engine = self.engine
        if hints.force_index is not None:
            # CatalogError("no such index: ...") for unknown names.
            engine.catalog.index(hints.force_index)
        saved_analyzed = {name: table.analyzed
                          for name, table in engine.catalog.tables.items()}
        try:
            if hints.analyze is not None:
                for name, table in engine.catalog.tables.items():
                    if hints.analyze and not saved_analyzed[name]:
                        engine.hint_analyzed = True
                    table.analyzed = hints.analyze
            engine.hints = hints
            steps = steps_from_minidb(engine.execute_statement(
                parse_statement(f"EXPLAIN QUERY PLAN {sql}")).python_rows())
            rows = engine.execute_statement(parse_statement(sql)).rows
            return rows, steps
        finally:
            engine.hints = None
            engine.hint_analyzed = False
            for name, table in engine.catalog.tables.items():
                if name in saved_analyzed:
                    table.analyzed = saved_analyzed[name]

    def index_candidates(self, tables: list[str]) -> list[str]:
        """Explicit index names on *tables* (implicit constraint-backing
        autoindexes excluded), sorted for deterministic enumeration."""
        names: set[str] = set()
        for table in tables:
            for index in self.engine.catalog.indexes_on(table):
                if not index.implicit:
                    names.add(index.name)
        return sorted(names)

    def close(self) -> None:  # MiniDB holds no external resources
        self.engine = None  # type: ignore[assignment]

    @property
    def statements_executed(self) -> int:
        return self.engine.statements_executed if self.engine else 0
