"""Deterministic fault injection for exercising the isolation harness.

A :class:`FaultPlan` maps global statement indexes to faults — the
failure modes a long-running fuzzing campaign must survive:

* ``crash``    — raise :class:`~repro.errors.DBCrash`.  Inside the
  subprocess worker this kills the child (the worker converts a
  simulated crash into real process death), exercising the crash oracle
  and the restart/replay machinery end-to-end;
* ``hang``     — sleep for ``hang_seconds`` before executing, tripping
  the parent's watchdog (:class:`~repro.errors.DBTimeout`);
* ``error``    — raise a transient :class:`~repro.errors.DBError`
  (default message mimics SQLite's ``disk I/O error``), feeding the
  error oracle;
* ``drop-row`` — execute normally but silently discard the last result
  row, the wrong-result shape the containment oracle exists to catch.

Schedules are **deterministic**: explicit ``*_at`` indexes plus a seeded
draw over ``horizon`` statements (same seed ⇒ same schedule).  Indexes
are *global across process restarts*: :class:`FaultyFactory` advertises
``accepts_offset`` so the subprocess harness can tell each new
incarnation how many fresh statements the campaign has already
attempted; replayed statements do not advance the counter.  A fault
therefore fires exactly once at its index instead of re-firing every
time the restored worker reaches the same local count.

The schedule is scoped to one *connection's* lifetime: a campaign that
opens a fresh connection per database round restarts the schedule each
round (deterministically — every round sees the same faults at the same
indexes), while restarts of the same connection resume mid-schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import DBCrash, DBError
from repro.values import Value

FAULT_KINDS = ("crash", "hang", "error", "drop-row")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic statement-index → fault schedule."""

    seed: int = 0
    crash_at: tuple[int, ...] = ()
    hang_at: tuple[int, ...] = ()
    error_at: tuple[int, ...] = ()
    drop_row_at: tuple[int, ...] = ()
    #: Seeded per-statement fault probabilities over ``horizon``.
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    drop_row_rate: float = 0.0
    horizon: int = 1000
    #: How long a hung statement sleeps before proceeding.
    hang_seconds: float = 3600.0
    error_message: str = "disk I/O error (injected transient fault)"
    #: index -> fault kind, derived in __post_init__.
    schedule: dict[int, str] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        schedule: dict[int, str] = {}
        rng = random.Random(self.seed)
        for index in range(self.horizon):
            draw = rng.random()
            for kind, rate in (("crash", self.crash_rate),
                               ("hang", self.hang_rate),
                               ("error", self.error_rate),
                               ("drop-row", self.drop_row_rate)):
                if draw < rate:
                    schedule[index] = kind
                    break
                draw -= rate
        # Explicit indexes override the seeded draw.
        for kind, indexes in (("crash", self.crash_at),
                              ("hang", self.hang_at),
                              ("error", self.error_at),
                              ("drop-row", self.drop_row_at)):
            for index in indexes:
                schedule[index] = kind
        object.__setattr__(self, "schedule", schedule)

    def action(self, index: int) -> Optional[str]:
        """The fault (if any) scheduled for global statement *index*."""
        return self.schedule.get(index)

    def fault_indexes(self, kind: str) -> list[int]:
        return sorted(i for i, k in self.schedule.items() if k == kind)


class FaultyConnection:
    """Wraps any adapter, injecting the plan's faults by statement index.

    ``offset`` seats the counter mid-schedule — the subprocess harness
    passes the campaign-global fresh-statement count so restarts resume
    the schedule where the previous incarnation left off.
    """

    def __init__(self, inner, plan: FaultPlan, offset: int = 0):
        self.inner = inner
        self.plan = plan
        self.dialect = inner.dialect
        self.statement_index = offset

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        index = self.statement_index
        self.statement_index += 1
        action = self.plan.action(index)
        if action == "crash":
            raise DBCrash(f"injected segfault at statement #{index}")
        if action == "hang":
            time.sleep(self.plan.hang_seconds)
        elif action == "error":
            raise DBError(self.plan.error_message)
        rows = self.inner.execute(sql)
        if action == "drop-row" and rows:
            return rows[:-1]
        return rows

    def execute_replay(self, sql: str) -> list[tuple[Value, ...]]:
        """State-restoration path: no faults, no schedule advance."""
        return self.inner.execute(sql)

    def query_plan(self, sql: str):
        """Plan introspection: faults target statements, not EXPLAIN,
        and the schedule does not advance."""
        return self._forward("query_plan", "query_plan introspection",
                             sql)

    def with_plan(self, sql: str, hints):
        """Forced-plan execution: introspection like ``query_plan`` —
        no fault firing, no schedule advance."""
        return self._forward("with_plan", "forced-plan execution",
                             sql, hints)

    def index_candidates(self, tables: list):
        """Index enumeration: introspection, no schedule advance."""
        return self._forward("index_candidates", "index enumeration",
                             tables)

    def _forward(self, hook: str, what: str, *args):
        fn = getattr(self.inner, hook, None)
        if fn is None:
            from repro.errors import UnsupportedError

            raise UnsupportedError(f"wrapped target offers no {what}")
        return fn(*args)

    def close(self) -> None:
        self.inner.close()


@dataclass(frozen=True)
class FaultyFactory:
    """Picklable factory shipping a fault-wrapped target to the worker."""

    inner_factory: Callable[[], Any]
    plan: FaultPlan

    #: Handshake hint: call with offset=<fresh statements attempted>.
    accepts_offset = True

    def __call__(self, offset: int = 0) -> FaultyConnection:
        return FaultyConnection(self.inner_factory(), self.plan,
                                offset=offset)
