"""The connection protocol every system under test implements."""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.errors import DBCrash, DBError, DBTimeout
from repro.values import Value


@runtime_checkable
class DBMSConnection(Protocol):
    """SQL in, rows out; uniform error surface.

    ``execute`` must raise :class:`repro.errors.DBError` (or a subclass)
    for engine-reported errors and :class:`repro.errors.DBCrash` for hard
    crashes — the two signals the error and crash oracles consume.

    Adapters *may* additionally offer plan introspection::

        def query_plan(self, sql: str) -> list[PlanStep]: ...

    returning :class:`repro.guidance.fingerprint.PlanStep` rows for a
    SELECT without executing it (MiniDB's ``EXPLAIN``, sqlite3's
    ``EXPLAIN QUERY PLAN``).  The hook is optional — plan-coverage
    guidance probes for it with ``getattr`` and degrades to passive
    mode when absent — so it is deliberately *not* part of this
    Protocol: an adapter without it is still a complete target.

    Two further optional hooks serve the multi-plan differential oracle
    (:mod:`repro.multiplan`), and follow the same rules as
    ``query_plan`` — probed with ``getattr``, never logged into the
    replay journal, never advancing a fault schedule::

        def with_plan(self, sql: str, hints: PlannerHints
                      ) -> tuple[list[tuple[Value, ...]], list[PlanStep]]: ...
        def index_candidates(self, tables: list[str]) -> list[str]: ...

    ``with_plan`` executes *sql* once under the forced plan described by
    :class:`repro.multiplan.hints.PlannerHints` and returns the rows
    plus the plan actually taken; all forcing state is restored before
    it returns, so the connection's unforced behaviour is untouched.
    ``index_candidates`` lists the explicit (non-automatic) index names
    on the given tables — the enumeration axis for forced-index plans.
    """

    #: Dialect name: 'sqlite' | 'mysql' | 'postgres'.
    dialect: str

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        """Execute one statement, returning fetched rows (possibly [])."""
        ...

    def close(self) -> None:
        ...


def execute_batch(connection: Any, sqls: list[str]
                  ) -> list[tuple[str, Any]]:
    """Run a statement batch through *connection*, outcome per statement.

    Uses the connection's native ``execute_many`` batch hook when it
    offers one (:class:`SubprocessConnection` ships the whole batch in a
    single pipe round-trip) and falls back to sequential ``execute``
    calls otherwise, so callers batch unconditionally against any
    adapter.

    Both paths share one contract — **stop at the first non-ok
    statement** — and return ``(kind, payload)`` pairs for the executed
    prefix of *sqls*: ``("ok", rows)``, ``("error", DBError)``,
    ``("crash", DBCrash)`` or ``("timeout", DBTimeout)``.  Statements
    after a failure were not executed; a caller that would have kept
    going statement-at-a-time resubmits the remainder, which makes the
    statement stream reaching the target byte-identical to sequential
    execution at every batch size.
    """
    native = getattr(connection, "execute_many", None)
    if native is not None:
        return native(sqls)
    outcomes: list[tuple[str, Any]] = []
    for sql in sqls:
        try:
            rows = connection.execute(sql)
        except DBCrash as crash:
            outcomes.append(("crash", crash))
            return outcomes
        except DBTimeout as timeout:
            outcomes.append(("timeout", timeout))
            return outcomes
        except DBError as error:
            outcomes.append(("error", error))
            return outcomes
        outcomes.append(("ok", rows))
    return outcomes
