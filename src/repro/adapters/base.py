"""The connection protocol every system under test implements."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.values import Value


@runtime_checkable
class DBMSConnection(Protocol):
    """SQL in, rows out; uniform error surface.

    ``execute`` must raise :class:`repro.errors.DBError` (or a subclass)
    for engine-reported errors and :class:`repro.errors.DBCrash` for hard
    crashes — the two signals the error and crash oracles consume.

    Adapters *may* additionally offer plan introspection::

        def query_plan(self, sql: str) -> list[PlanStep]: ...

    returning :class:`repro.guidance.fingerprint.PlanStep` rows for a
    SELECT without executing it (MiniDB's ``EXPLAIN``, sqlite3's
    ``EXPLAIN QUERY PLAN``).  The hook is optional — plan-coverage
    guidance probes for it with ``getattr`` and degrades to passive
    mode when absent — so it is deliberately *not* part of this
    Protocol: an adapter without it is still a complete target.
    """

    #: Dialect name: 'sqlite' | 'mysql' | 'postgres'.
    dialect: str

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        """Execute one statement, returning fetched rows (possibly [])."""
        ...

    def close(self) -> None:
        ...
