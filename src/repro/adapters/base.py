"""The connection protocol every system under test implements."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.values import Value


@runtime_checkable
class DBMSConnection(Protocol):
    """SQL in, rows out; uniform error surface.

    ``execute`` must raise :class:`repro.errors.DBError` (or a subclass)
    for engine-reported errors and :class:`repro.errors.DBCrash` for hard
    crashes — the two signals the error and crash oracles consume.
    """

    #: Dialect name: 'sqlite' | 'mysql' | 'postgres'.
    dialect: str

    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        """Execute one statement, returning fetched rows (possibly [])."""
        ...

    def close(self) -> None:
        ...
