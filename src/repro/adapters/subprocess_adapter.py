"""Fault-isolated execution: run any target connection in a child process.

The paper's crash oracle (§2, §3.4) presumes the tester *outlives* a
SEGFAULT of the system under test.  In-process adapters cannot provide
that: a real crash (or an infinite-loop query) takes the whole campaign
down with it.  :class:`SubprocessConnection` restores the paper's
process boundary in pure stdlib Python:

* the target connection runs in a **child process**
  (:mod:`repro.adapters.subprocess_worker`) and is driven over a
  length-prefixed tagged pipe protocol (:mod:`repro.adapters.wire`):
  pickle for control frames, a compact typed column-wise encoding for
  query-result replies when both ends negotiate it;
* :meth:`SubprocessConnection.execute_many` ships a whole **batch** of
  statements in one frame; the worker streams one outcome frame back
  per statement, so crash attribution (the first missing outcome), the
  per-statement watchdog, and replay-on-restart all keep working on
  batch boundaries exactly as they do statement-at-a-time;
* child death — a real segfault, an ``os._exit``, an OOM kill —
  surfaces as :class:`~repro.errors.DBCrash`, making the crash oracle
  real for live targets;
* a per-statement **watchdog deadline** kills a hung child and raises
  :class:`~repro.errors.DBTimeout`;
* after a crash or timeout the harness transparently **restarts** the
  worker and **replays** the log of previously-successful statements to
  restore database state, under a bounded retry budget with exponential
  backoff (:class:`~repro.errors.HarnessError` when exhausted).

Replay assumes the target executes statements deterministically — true
for SQLite, MiniDB and every fault-plan wrapper in this repo.  A
statement that crashed or timed out is *not* replayed: the next
incarnation resumes from the last known-good state, and the fault
schedule offset (see :mod:`repro.adapters.faults`) advances past it so a
deterministic fault does not re-fire forever.
"""

from __future__ import annotations

import os
import select
import signal
import struct
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.adapters import wire
from repro.errors import (
    CatalogError,
    ConstraintError,
    DBCrash,
    DBError,
    DBTimeout,
    HarnessError,
    IntegrityError,
    ParseError,
    TypeError_,
    UnsupportedError,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.telemetry import names as metric_names
from repro.values import Value

_HEADER = struct.Struct("!I")

#: DBError subclasses the worker may report by name.
_ERROR_TYPES = {cls.__name__: cls for cls in (
    DBError, ParseError, CatalogError, TypeError_, ConstraintError,
    IntegrityError, UnsupportedError, DBTimeout)}


def write_frame(stream, obj: Any, use_rowset: bool = False) -> None:
    """Write one length-prefixed tagged frame (shared with the worker)."""
    body = wire.dumps(obj, use_rowset)
    stream.write(_HEADER.pack(len(body)) + body)
    stream.flush()


def read_frame(stream) -> Any:
    """Blocking read of one frame (worker side; parent reads use select)."""
    header = _read_exact(stream, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    return wire.loads(_read_exact(stream, length))


def _read_exact(stream, n: int) -> bytes:
    parts = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            raise EOFError("pipe closed")
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)


class _DeadlineExceeded(Exception):
    """Internal: the watchdog deadline expired mid-read."""


class _WorkerDied(Exception):
    """Internal: the child process is gone (EOF / broken pipe)."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


@dataclass
class SubprocessConfig:
    """Knobs for the fault-isolation harness."""

    #: Watchdog deadline per statement, seconds; None disables it.
    statement_timeout: Optional[float] = 10.0
    #: Deadline for worker startup + handshake.
    startup_timeout: float = 30.0
    #: Consecutive failed restore attempts tolerated per recovery
    #: episode before :class:`~repro.errors.HarnessError`.
    max_restarts: int = 5
    #: Exponential backoff between failed restore attempts:
    #: ``backoff_base * backoff_factor ** (failures - 1)`` seconds.
    backoff_base: float = 0.05
    backoff_factor: float = 2.0


class SubprocessConnection:
    """A :class:`~repro.adapters.base.DBMSConnection` with a process moat.

    ``factory`` is any picklable zero-argument callable returning a
    connection (e.g. the :class:`SQLite3Connection` class itself, or a
    :class:`~repro.adapters.faults.FaultyFactory`).  A factory exposing
    ``accepts_offset = True`` is instead called with ``offset=<fresh
    statement count>`` so deterministic fault schedules keep their place
    across restarts.
    """

    def __init__(self, factory: Callable[[], Any],
                 config: Optional[SubprocessConfig] = None,
                 telemetry: Optional[Telemetry] = None):
        self.factory = factory
        self.config = config or SubprocessConfig()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.dialect = "sqlite"  # refined by the handshake
        self._proc: Optional[subprocess.Popen] = None
        self._log: list[str] = []
        #: Fresh (non-replay) statements attempted — the fault offset.
        self._fresh = 0
        t = self.telemetry
        self._metered = t.registry.enabled
        self._m_restarts = t.counter(metric_names.WORKER_RESTARTS)
        self._m_watchdog = t.counter(metric_names.WATCHDOG_KILLS)
        self._m_replay = t.histogram(metric_names.REPLAY_STATEMENTS,
                                     buckets=metric_names.COUNT_BUCKETS)
        self._m_roundtrip = t.histogram(metric_names.ROUNDTRIP_SECONDS)
        self._m_batch = t.histogram(metric_names.PIPE_BATCH_STATEMENTS,
                                    buckets=metric_names.COUNT_BUCKETS)
        self._m_bytes_out = t.counter(metric_names.PIPE_BYTES_SENT)
        self._m_bytes_in = t.counter(metric_names.PIPE_BYTES_RECEIVED)
        self._m_encode = t.histogram(metric_names.PIPE_ENCODE_SECONDS)
        self._m_decode = t.histogram(metric_names.PIPE_DECODE_SECONDS)
        #: Wire variant the worker agreed to (None = pickle-only).  The
        #: parent decodes both unconditionally; this only drives what
        #: the hello frame advertises.
        self.wire_encoding: Optional[str] = None
        self._offer_rowset = os.environ.get("REPRO_WIRE") != "pickle"
        self._started = False
        self._restore()

    # -- DBMSConnection -----------------------------------------------------
    def execute(self, sql: str) -> list[tuple[Value, ...]]:
        if self._proc is None:
            self._restore()
        self._fresh += 1
        t0 = time.monotonic() if self._metered else 0.0
        try:
            reply = self._request({"op": "execute", "sql": sql},
                                  self.config.statement_timeout)
        except _WorkerDied as died:
            raise DBCrash(died.message) from None
        except _DeadlineExceeded:
            self._kill()
            self._m_watchdog.inc()
            raise DBTimeout(
                f"statement exceeded {self.config.statement_timeout:.3g}s "
                f"watchdog deadline: {sql[:120]}") from None
        if self._metered:
            self._m_roundtrip.observe(time.monotonic() - t0)
        rows = self._interpret(reply)
        self._log.append(sql)
        return rows

    def execute_many(self, sqls: list[str]
                     ) -> list[tuple[str, Any]]:
        """Ship a batch of statements in one frame; stream outcomes back.

        Returns one ``(kind, payload)`` outcome per *executed* statement,
        in order: ``("ok", rows)``, ``("error", DBError)``,
        ``("crash", DBCrash)`` or ``("timeout", DBTimeout)``.  The worker
        stops at the first non-ok statement, so the result is a prefix of
        *sqls* whose last element may be the failure; statements after it
        were **never executed** (callers resubmit them if they want to
        continue, which is exactly what sequential ``execute`` calls
        would have done).

        Fault semantics match ``execute`` statement-for-statement: each
        outcome read gets its own watchdog deadline, a missing outcome
        attributes a worker death to the statement in flight, successful
        statements enter the replay log one by one, and the fault-
        schedule offset advances per statement attempted.
        """
        outcomes: list[tuple[str, Any]] = []
        if not sqls:
            return outcomes
        if self._proc is None:
            self._restore()
        self._m_batch.observe(len(sqls))
        try:
            self._send({"op": "execute_many", "sqls": list(sqls)})
        except _WorkerDied as died:
            self._fresh += 1
            outcomes.append(("crash", DBCrash(died.message)))
            return outcomes
        for sql in sqls:
            self._fresh += 1
            t0 = time.monotonic() if self._metered else 0.0
            try:
                reply = self._recv(self.config.statement_timeout)
            except EOFError:
                died = self._reap("read")
                outcomes.append(("crash", DBCrash(died.message)))
                return outcomes
            except _DeadlineExceeded:
                self._kill()
                self._m_watchdog.inc()
                outcomes.append(("timeout", DBTimeout(
                    f"statement exceeded "
                    f"{self.config.statement_timeout:.3g}s watchdog "
                    f"deadline: {sql[:120]}")))
                return outcomes
            if self._metered:
                self._m_roundtrip.observe(time.monotonic() - t0)
            if "ok" in reply:
                self._log.append(sql)
                outcomes.append(("ok", reply["ok"]))
                continue
            if "error" in reply:
                name, message = reply["error"]
                outcomes.append(
                    ("error", _ERROR_TYPES.get(name, DBError)(message)))
                return outcomes
            if "crash" in reply:
                message = reply["crash"]
                self._drain_dead_worker()
                outcomes.append(("crash", DBCrash(message)))
                return outcomes
            self._kill()
            if "fatal" in reply:
                raise HarnessError(
                    f"worker failed internally:\n{reply['fatal']}")
            raise HarnessError(f"unintelligible worker reply: {reply!r}")
        return outcomes

    def query_plan(self, sql: str) -> list:
        """Forward plan introspection to the worker's target connection.

        Lets plan-coverage guidance drive ``--isolate`` runs.  Unlike
        ``execute``, a successful introspection is *not* appended to the
        replay log (EXPLAIN mutates nothing) and does not advance the
        fault-schedule offset.
        """
        return self._introspect({"op": "query_plan", "sql": sql},
                                "plan introspection", sql)

    def with_plan(self, sql: str, hints) -> Any:
        """Forward a forced-plan execution to the worker's target.

        Follows the ``query_plan`` rules: the forced run is
        introspection, so it is *not* appended to the replay log and
        does not advance the fault-schedule offset — a restart replays
        exactly the statements the unforced stream executed.
        """
        return self._introspect({"op": "with_plan", "sql": sql,
                                 "hints": hints},
                                "forced-plan execution", sql)

    def index_candidates(self, tables: list) -> Any:
        """Forward index enumeration to the worker's target (same
        non-logging rules as ``query_plan``/``with_plan``)."""
        return self._introspect({"op": "index_candidates",
                                 "tables": list(tables)},
                                "index enumeration", repr(tables))

    def _introspect(self, message: dict, what: str, detail: str) -> Any:
        """Shared plumbing for non-logged introspection ops."""
        if self._proc is None:
            self._restore()
        try:
            reply = self._request(message, self.config.statement_timeout)
        except _WorkerDied as died:
            raise DBCrash(died.message) from None
        except _DeadlineExceeded:
            self._kill()
            self._m_watchdog.inc()
            raise DBTimeout(
                f"{what} exceeded {self.config.statement_timeout:.3g}s "
                f"watchdog deadline: {detail[:120]}") from None
        return self._interpret(reply)

    def close(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        try:
            write_frame(proc.stdin, {"op": "close"})
            proc.wait(timeout=5)
        except Exception:
            proc.kill()
            proc.wait()
        finally:
            _close_pipes(proc)

    # -- introspection ------------------------------------------------------
    @property
    def statements_replayed(self) -> int:
        """Length of the state-restoration log (successful statements)."""
        return len(self._log)

    @property
    def worker_pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    # -- recovery -----------------------------------------------------------
    def _restore(self) -> None:
        """(Re)start the worker and replay state, with bounded retries."""
        if self._started:
            # Anything past the constructor's initial spawn is a
            # restart — a crash or watchdog kill already happened.
            self._m_restarts.inc()
        failures = 0
        while True:
            try:
                self._spawn()
                self._replay()
                self._started = True
                return
            except (_WorkerDied, _DeadlineExceeded, EOFError,
                    OSError) as exc:
                self._kill()
                failures += 1
                if failures >= self.config.max_restarts:
                    raise HarnessError(
                        f"target did not survive {failures} restore "
                        f"attempt(s): {exc!r}") from None
                time.sleep(self.config.backoff_base *
                           self.config.backoff_factor ** (failures - 1))

    def _spawn(self) -> None:
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        self._proc = subprocess.Popen(
            [sys.executable, "-m", "repro.adapters.subprocess_worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, env=env)
        hello = {"op": "hello", "factory": self.factory,
                 "offset": self._fresh}
        if self._offer_rowset:
            hello["wire"] = [wire.ROWSET_NAME]
        reply = self._request(hello, self.config.startup_timeout)
        if not isinstance(reply, dict) or "dialect" not in reply:
            raise _WorkerDied(f"bad handshake reply: {reply!r}")
        self.dialect = reply["dialect"]
        self.wire_encoding = reply.get("wire")

    def _replay(self) -> None:
        if self._metered and self._started:
            self._m_replay.observe(len(self._log))
        for sql in self._log:
            reply = self._request({"op": "replay", "sql": sql},
                                  self.config.statement_timeout)
            if "ok" not in reply:
                # A statement that succeeded before now errors: the
                # target diverged — retrying cannot help.
                raise HarnessError(
                    f"state replay diverged on {sql[:120]!r}: {reply!r}")

    # -- protocol plumbing --------------------------------------------------
    def _request(self, message: dict, timeout: Optional[float]) -> Any:
        self._send(message)
        try:
            return self._recv(timeout)
        except EOFError:
            raise self._reap("read") from None

    def _send(self, message: dict) -> None:
        assert self._proc is not None
        if self._metered:
            t0 = time.monotonic()
            body = wire.dumps(message)
            self._m_encode.observe(time.monotonic() - t0)
            self._m_bytes_out.inc(_HEADER.size + len(body))
        else:
            body = wire.dumps(message)
        try:
            stdin = self._proc.stdin
            stdin.write(_HEADER.pack(len(body)) + body)
            stdin.flush()
        except (BrokenPipeError, OSError):
            raise self._reap("write") from None

    def _interpret(self, reply: Any) -> list[tuple[Value, ...]]:
        if "ok" in reply:
            return reply["ok"]
        if "error" in reply:
            name, message = reply["error"]
            raise _ERROR_TYPES.get(name, DBError)(message)
        if "crash" in reply:
            # The worker announced a simulated crash and is exiting; reap
            # it so the next execute() triggers restore.
            message = reply["crash"]
            self._drain_dead_worker()
            raise DBCrash(message)
        if "fatal" in reply:
            self._kill()
            raise HarnessError(f"worker failed internally:\n{reply['fatal']}")
        self._kill()
        raise HarnessError(f"unintelligible worker reply: {reply!r}")

    def _recv(self, timeout: Optional[float]) -> Any:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        header = self._read_deadline(_HEADER.size, deadline)
        (length,) = _HEADER.unpack(header)
        body = self._read_deadline(length, deadline)
        if not self._metered:
            return wire.loads(body)
        self._m_bytes_in.inc(_HEADER.size + length)
        t0 = time.monotonic()
        reply = wire.loads(body)
        self._m_decode.observe(time.monotonic() - t0)
        return reply

    def _read_deadline(self, n: int, deadline: Optional[float]) -> bytes:
        """Read exactly *n* bytes from the worker's stdout before *deadline*.

        Uses the raw file descriptor (never the buffered reader) so
        ``select`` sees exactly what has not been consumed.
        """
        assert self._proc is not None and self._proc.stdout is not None
        fd = self._proc.stdout.fileno()
        parts: list[bytes] = []
        got = 0
        while got < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise _DeadlineExceeded()
                ready, _, _ = select.select([fd], [], [], remaining)
                if not ready:
                    raise _DeadlineExceeded()
            chunk = os.read(fd, n - got)
            if not chunk:
                raise EOFError("worker closed the pipe")
            parts.append(chunk)
            got += len(chunk)
        return b"".join(parts)

    # -- worker lifecycle ---------------------------------------------------
    def _reap(self, during: str) -> _WorkerDied:
        """The child is gone; collect its exit status into a message."""
        proc, self._proc = self._proc, None
        code: Optional[int] = None
        if proc is not None:
            try:
                code = proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                code = proc.wait()
            _close_pipes(proc)
        return _WorkerDied(
            f"target worker died during {during} ({_describe_exit(code)})")

    def _drain_dead_worker(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        _close_pipes(proc)

    def _kill(self) -> None:
        proc, self._proc = self._proc, None
        if proc is None:
            return
        proc.kill()
        proc.wait()
        _close_pipes(proc)


def _close_pipes(proc: subprocess.Popen) -> None:
    for stream in (proc.stdin, proc.stdout):
        if stream is not None:
            try:
                stream.close()
            except OSError:
                pass


def _describe_exit(code: Optional[int]) -> str:
    if code is None:
        return "exit status unknown"
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:
            name = f"signal {-code}"
        return f"killed by {name}"
    return f"exit code {code}"
