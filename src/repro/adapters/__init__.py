"""Connections to systems under test.

PQS talks to every target through :class:`DBMSConnection` — SQL strings
in, rows of :class:`~repro.values.Value` out, :class:`~repro.errors
.DBError`/:class:`~repro.errors.DBCrash` on failure.  The oracle never
sees engine internals, so testing MiniDB and testing a real SQLite build
via the stdlib bindings are the same code path.

:class:`SubprocessConnection` adds the fault-isolation layer: it runs
any picklable connection factory in a child process, turning real
crashes into :class:`~repro.errors.DBCrash`, hangs into
:class:`~repro.errors.DBTimeout`, and recovering state by replay after
either.  :mod:`repro.adapters.faults` provides deterministic
crash/hang/error plans for exercising that machinery (and all three
oracles) on demand.
"""

from repro.adapters.base import DBMSConnection, execute_batch
from repro.adapters.faults import FaultPlan, FaultyConnection, FaultyFactory
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection
from repro.adapters.subprocess_adapter import (
    SubprocessConfig,
    SubprocessConnection,
)

__all__ = [
    "DBMSConnection",
    "execute_batch",
    "FaultPlan",
    "FaultyConnection",
    "FaultyFactory",
    "MiniDBConnection",
    "SQLite3Connection",
    "SubprocessConfig",
    "SubprocessConnection",
]
