"""Connections to systems under test.

PQS talks to every target through :class:`DBMSConnection` — SQL strings
in, rows of :class:`~repro.values.Value` out, :class:`~repro.errors
.DBError`/:class:`~repro.errors.DBCrash` on failure.  The oracle never
sees engine internals, so testing MiniDB and testing a real SQLite build
via the stdlib bindings are the same code path.
"""

from repro.adapters.base import DBMSConnection
from repro.adapters.minidb_adapter import MiniDBConnection
from repro.adapters.sqlite3_adapter import SQLite3Connection

__all__ = ["DBMSConnection", "MiniDBConnection", "SQLite3Connection"]
