"""Child-process entrypoint for :class:`SubprocessConnection`.

Runs one target connection and serves the pipe protocol:

* ``hello``   — unpickle the connection factory, instantiate the target
  (passing ``offset=`` when the factory advertises ``accepts_offset``),
  reply with the target's dialect and the wire encoding picked from the
  parent's advertised list (see :mod:`repro.adapters.wire`);
* ``execute`` — run one fresh statement; reply ``{"ok": rows}``,
  ``{"error": (type, message)}``, or — for a simulated
  :class:`~repro.errors.DBCrash` — announce ``{"crash": message}`` and
  then *die* (``os._exit(139)``, the shell's SIGSEGV convention), so a
  simulated crash and a real segfault look identical to the parent;
* ``execute_many`` — run a batch of fresh statements in order,
  streaming one outcome frame per statement; the batch stops at the
  first non-ok statement (the parent resubmits the rest if it wants to
  continue), so an interleaving of batches is statement-for-statement
  identical to the same statements sent one at a time.  A simulated
  crash mid-batch announces itself and dies exactly like ``execute``;
  a real kill simply truncates the outcome stream, and the parent
  attributes the death to the first statement without an outcome;
* ``replay``  — re-run a previously-successful statement during state
  restoration, bypassing fault injection when the target offers
  ``execute_replay``;
* ``query_plan`` / ``with_plan`` / ``index_candidates`` — optional
  introspection hooks, forwarded when the target offers them and
  answered with an ``UnsupportedError`` reply otherwise;
* ``close``   — close the target and exit 0.

Any non-DBError exception from the target is a tool bug: it is reported
as ``{"fatal": traceback}`` so the parent can raise
:class:`~repro.errors.HarnessError` instead of blaming the DBMS.
"""

from __future__ import annotations

import os
import sys
import traceback

from repro.adapters import wire
from repro.adapters.subprocess_adapter import read_frame, write_frame
from repro.errors import DBCrash, DBError

#: Exit status mimicking death by SIGSEGV (128 + 11).
CRASH_EXIT_CODE = 139


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    try:
        hello = read_frame(stdin)
    except EOFError:
        return 0
    factory = hello["factory"]
    try:
        if getattr(factory, "accepts_offset", False):
            connection = factory(offset=hello.get("offset", 0))
        else:
            connection = factory()
    except Exception:
        write_frame(stdout, {"fatal": traceback.format_exc()})
        return 1
    use_rowset = wire.ROWSET_NAME in hello.get("wire", ())
    greeting = {"dialect": getattr(connection, "dialect", "sqlite")}
    if use_rowset:
        greeting["wire"] = wire.ROWSET_NAME
    write_frame(stdout, greeting)
    while True:
        try:
            message = read_frame(stdin)
        except EOFError:
            return 0
        op = message.get("op")
        if op == "close":
            try:
                connection.close()
            except Exception:
                pass
            return 0
        if op == "execute_many":
            for sql in message["sqls"]:
                try:
                    rows = connection.execute(sql)
                except DBCrash as crash:
                    write_frame(stdout, {"crash": crash.message})
                    stdout.flush()
                    os._exit(CRASH_EXIT_CODE)
                except DBError as error:
                    # Stop at the first failure: the parent decides
                    # whether the remaining statements still run.
                    write_frame(stdout, {"error": (type(error).__name__,
                                                   error.message)})
                    break
                except Exception:
                    write_frame(stdout, {"fatal": traceback.format_exc()})
                    return 1
                else:
                    write_frame(stdout, {"ok": rows}, use_rowset)
            continue
        if op not in ("execute", "replay", "query_plan", "with_plan",
                      "index_candidates"):
            write_frame(stdout, {"fatal": f"unknown op: {op!r}"})
            return 1
        sql = message.get("sql", "")
        try:
            if op == "query_plan":
                plan_fn = getattr(connection, "query_plan", None)
                if plan_fn is None:
                    write_frame(stdout, {"error": (
                        "UnsupportedError",
                        "target offers no query_plan introspection")})
                    continue
                rows = plan_fn(sql)
            elif op == "with_plan":
                forced_fn = getattr(connection, "with_plan", None)
                if forced_fn is None:
                    write_frame(stdout, {"error": (
                        "UnsupportedError",
                        "target offers no forced-plan execution")})
                    continue
                rows = forced_fn(sql, message["hints"])
            elif op == "index_candidates":
                index_fn = getattr(connection, "index_candidates", None)
                if index_fn is None:
                    write_frame(stdout, {"error": (
                        "UnsupportedError",
                        "target offers no index enumeration")})
                    continue
                rows = index_fn(message["tables"])
            elif op == "replay" and hasattr(connection, "execute_replay"):
                rows = connection.execute_replay(sql)
            else:
                rows = connection.execute(sql)
        except DBCrash as crash:
            # Tell the parent why, then die the way a segfault dies:
            # abruptly, without cleanup, taking the process with it.
            write_frame(stdout, {"crash": crash.message})
            stdout.flush()
            os._exit(CRASH_EXIT_CODE)
        except DBError as error:
            write_frame(stdout,
                        {"error": (type(error).__name__, error.message)})
        except Exception:
            write_frame(stdout, {"fatal": traceback.format_exc()})
            return 1
        else:
            write_frame(stdout, {"ok": rows}, use_rowset)


if __name__ == "__main__":
    sys.exit(main())
