"""Compact binary wire encoding for the subprocess pipe protocol.

Every frame on the pipe is ``!I`` length prefix + one tag byte + payload:

* tag ``P`` — a pickled Python object.  Used for all control traffic
  (the hello handshake must carry an arbitrary picklable factory) and
  as the fallback for anything the rowset codec cannot express.
* tag ``R`` — a **rowset reply**: the ``{"ok": rows}`` shape that
  carries every query result from worker to parent, encoded
  column-wise (version byte, row/column counts, interned string table,
  null bitmap, then per-value tag + struct-packed payload).  This is
  the hot frame of a hunt — compact typed packing beats a pickled
  list-of-dataclasses several times over in bytes on the pipe.

Whether rowset frames are used at all is *negotiated*: the parent
advertises ``"wire": ["rowset-v1"]`` in its hello frame, the worker
echoes the variant it picked, and either side silently falls back to
pickle-only when the other stays quiet (``REPRO_WIRE=pickle`` in the
parent's environment suppresses the advertisement, which forces the
whole session onto pickle).  Decoders always accept both tags, so the
negotiation only controls what gets *produced*.

Encoding never fails: :func:`encode_rowset` returns ``None`` for
anything outside its model (ragged rows, non-:class:`Value` cells,
integers beyond 64 bits, text that is not UTF-8-encodable) and
:func:`dumps` falls back to pickle for that frame.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Optional

from repro.values import (
    FALSE,
    INT64_MAX,
    INT64_MIN,
    NULL,
    TRUE,
    SQLType,
    Value,
)

#: Version byte leading every rowset payload; decoders reject others.
WIRE_VERSION = 1

#: Negotiation token for this encoding (hello "wire" list entry).
ROWSET_NAME = "rowset-v1"

TAG_PICKLE = 0x50  # 'P'
TAG_ROWSET = 0x52  # 'R'

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

# Per-value type tags inside a rowset (NULL has no tag: it lives in the
# null bitmap and its payload slot is simply absent).
_V_INT = 0x01
_V_REAL = 0x02
_V_TEXT = 0x03
_V_BLOB = 0x04
_V_TRUE = 0x05
_V_FALSE = 0x06


def dumps(obj: Any, use_rowset: bool = False) -> bytes:
    """Encode one frame body (tag byte + payload)."""
    if use_rowset and type(obj) is dict and len(obj) == 1 and "ok" in obj:
        payload = encode_rowset(obj["ok"])
        if payload is not None:
            return bytes([TAG_ROWSET]) + payload
    return bytes([TAG_PICKLE]) + pickle.dumps(
        obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads(body: bytes) -> Any:
    """Decode one frame body produced by :func:`dumps`."""
    if not body:
        raise ValueError("empty wire frame")
    tag = body[0]
    if tag == TAG_ROWSET:
        return {"ok": decode_rowset(body[1:])}
    if tag == TAG_PICKLE:
        return pickle.loads(body[1:])
    raise ValueError(f"unknown wire tag {tag:#x}")


def _write_varint(out: bytearray, n: int) -> None:
    """Unsigned LEB128."""
    while n >= 0x80:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7


def encode_rowset(rows: Any) -> Optional[bytes]:
    """Column-wise encode a uniform list of :class:`Value` tuples.

    Returns ``None`` when *rows* falls outside the rowset model; the
    caller then pickles the frame instead.
    """
    if type(rows) is not list:
        return None
    nrows = len(rows)
    if nrows and type(rows[0]) is not tuple:
        return None
    ncols = len(rows[0]) if nrows else 0
    for row in rows:
        if type(row) is not tuple or len(row) != ncols:
            return None
    out = bytearray([WIRE_VERSION])
    _write_varint(out, nrows)
    _write_varint(out, ncols)
    # Interned string table: TEXT payloads repeat heavily (column values
    # drawn from small generator vocabularies), so each unique string is
    # shipped once and referenced by index.
    strings: dict[str, int] = {}
    for row in rows:
        for v in row:
            if type(v) is not Value:
                return None
            if v.t is SQLType.TEXT and v.v not in strings:
                strings[v.v] = len(strings)
    _write_varint(out, len(strings))
    for s in strings:
        try:
            raw = s.encode("utf-8")
        except UnicodeEncodeError:
            return None
        _write_varint(out, len(raw))
        out += raw
    # Null bitmap, column-major (bit set = NULL), matching the value
    # stream order below so decode is a single forward pass.
    ncells = nrows * ncols
    bitmap = bytearray((ncells + 7) // 8)
    bit = 0
    for col in range(ncols):
        for row in rows:
            if row[col].t is SQLType.NULL:
                bitmap[bit >> 3] |= 1 << (bit & 7)
            bit += 1
    out += bitmap
    for col in range(ncols):
        for row in rows:
            v = row[col]
            t = v.t
            if t is SQLType.NULL:
                continue
            if t is SQLType.INTEGER:
                payload = v.v
                if not (INT64_MIN <= payload <= INT64_MAX):
                    return None
                out.append(_V_INT)
                out += _I64.pack(payload)
            elif t is SQLType.REAL:
                out.append(_V_REAL)
                out += _F64.pack(v.v)
            elif t is SQLType.TEXT:
                out.append(_V_TEXT)
                _write_varint(out, strings[v.v])
            elif t is SQLType.BLOB:
                out.append(_V_BLOB)
                _write_varint(out, len(v.v))
                out += v.v
            elif t is SQLType.BOOLEAN:
                out.append(_V_TRUE if v.v else _V_FALSE)
            else:  # pragma: no cover - SQLType is closed
                return None
    return bytes(out)


def decode_rowset(buf: bytes) -> list[tuple[Value, ...]]:
    """Inverse of :func:`encode_rowset`."""
    if not buf or buf[0] != WIRE_VERSION:
        version = buf[0] if buf else None
        raise ValueError(f"unsupported rowset version {version!r}")
    nrows, pos = _read_varint(buf, 1)
    ncols, pos = _read_varint(buf, pos)
    nstrings, pos = _read_varint(buf, pos)
    strings: list[str] = []
    for _ in range(nstrings):
        length, pos = _read_varint(buf, pos)
        strings.append(buf[pos:pos + length].decode("utf-8"))
        pos += length
    ncells = nrows * ncols
    bitmap = buf[pos:pos + (ncells + 7) // 8]
    pos += len(bitmap)
    # Column-major fill into row-major output tuples.
    columns: list[list[Value]] = []
    bit = 0
    integer = Value.integer
    real = Value.real
    text = Value.text
    blob = Value.blob
    for _ in range(ncols):
        column: list[Value] = []
        for _ in range(nrows):
            if bitmap[bit >> 3] & (1 << (bit & 7)):
                bit += 1
                column.append(NULL)
                continue
            bit += 1
            tag = buf[pos]
            pos += 1
            if tag == _V_INT:
                column.append(integer(_I64.unpack_from(buf, pos)[0]))
                pos += 8
            elif tag == _V_REAL:
                column.append(real(_F64.unpack_from(buf, pos)[0]))
                pos += 8
            elif tag == _V_TEXT:
                index, pos = _read_varint(buf, pos)
                column.append(text(strings[index]))
            elif tag == _V_BLOB:
                length, pos = _read_varint(buf, pos)
                column.append(blob(buf[pos:pos + length]))
                pos += length
            elif tag == _V_TRUE:
                column.append(TRUE)
            elif tag == _V_FALSE:
                column.append(FALSE)
            else:
                raise ValueError(f"unknown rowset value tag {tag:#x}")
        columns.append(column)
    return [tuple(columns[c][r] for c in range(ncols))
            for r in range(nrows)]
