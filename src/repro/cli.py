"""The ``pqs`` command-line interface.

Subcommands:

* ``pqs hunt``   — run a bug-hunting campaign against defect-injected
  MiniDB (the offline analogue of the paper's evaluation runs);
* ``pqs sqlite`` — run the PQS loop against the real SQLite build
  shipped with Python;
* ``pqs bugs``   — list the injected-defect catalog and the paper bugs
  each entry models;
* ``pqs report`` — offline triage analytics over a hunt's artifacts
  (journal + event log + metrics snapshot → campaign digest);
* ``pqs optreport`` — diff two per-plan timing archives (``hunt
  --plan-timing --timing-archive``) into new / fixed / worsened
  planner regressions;
* ``pqs shell``  — a minimal interactive MiniDB shell, handy for
  replaying reduced test cases by hand.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaigns.campaign import Campaign, CampaignConfig
from repro.core.runner import PQSRunner, RunnerConfig
from repro.errors import DBCrash, DBError, PQSError
from repro.minidb.bugs import BUG_CATALOG, bugs_for_dialect


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pqs",
        description="Pivoted Query Synthesis — find logic bugs in "
                    "database engines (OSDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command")

    hunt = sub.add_parser("hunt", help="campaign against MiniDB with "
                                       "injected defects")
    hunt.add_argument("--dialect", default="sqlite",
                      choices=["sqlite", "mysql", "postgres"])
    hunt.add_argument("--databases", type=int, default=100)
    hunt.add_argument("--seed", type=int, default=0)
    hunt.add_argument("--bugs", default=None,
                      help="comma-separated defect ids (default: all "
                           "for the dialect)")
    hunt.add_argument("--no-reduce", action="store_true",
                      help="skip delta-debugging reduction")
    hunt.add_argument("--batch-size", type=int, default=16,
                      help="statements per pipe round-trip for "
                           "batchable work (1 = one statement per "
                           "round-trip; default: 16)")
    hunt.add_argument("--threads", type=int, default=1,
                      help="parallel campaign workers (default: 1)")
    hunt.add_argument("--journal", default=None, metavar="PATH",
                      help="write per-database results to a JSONL "
                           "journal as the hunt runs")
    hunt.add_argument("--resume", action="store_true",
                      help="continue an interrupted hunt from --journal")
    hunt.add_argument("--metrics", default=None, metavar="PATH",
                      help="write a JSON metrics snapshot (counters, "
                           "per-phase latency histograms, derived "
                           "throughput) when the hunt finishes; "
                           "PATH ending in .prom writes Prometheus "
                           "text format instead")
    hunt.add_argument("--trace", default=None, metavar="PATH",
                      help="write JSONL span trace events (one per "
                           "timed phase) as the hunt runs")
    hunt.add_argument("--guidance", action="store_true",
                      help="query-plan-guided generation: fingerprint "
                           "each query's plan and bias state generation "
                           "toward states that produced novel plans")
    hunt.add_argument("--multiplan", action="store_true",
                      help="cross-check every query across distinct "
                           "forced execution plans (full scan, forced "
                           "indexes, pre/post-ANALYZE) and report plans "
                           "that disagree on the row multiset")
    hunt.add_argument("--plan-timing", action="store_true",
                      help="time every distinct forced plan (min-of-k "
                           "re-executions) and flag queries whose "
                           "planner-chosen plan is slower than the best "
                           "forced alternative; requires --multiplan")
    hunt.add_argument("--timing-archive", default=None, metavar="PATH",
                      help="write the merged per-plan timing archive "
                           "(JSONL) when the hunt finishes; feed two "
                           "archives to pqs optreport to diff planner "
                           "regressions across campaigns")
    hunt.add_argument("--timing-repeats", type=int, default=3,
                      metavar="K",
                      help="timed re-executions per plan, best kept "
                           "(default: 3)")
    hunt.add_argument("--regression-ratio", type=float, default=1.5,
                      metavar="R",
                      help="flag a query when the unforced plan is at "
                           "least R times slower than the best forced "
                           "plan (default: 1.5)")
    hunt.add_argument("--plan-coverage", default=None, metavar="PATH",
                      help="write the distinct-plan coverage set (JSON) "
                           "when the hunt finishes; without --guidance "
                           "plans are observed passively")
    hunt.add_argument("--progress", type=float, default=0.0,
                      metavar="SECS",
                      help="print a live progress line (rounds, "
                           "reports, queries/s, ETA) to stderr every "
                           "SECS seconds")
    hunt.add_argument("--max-worker-restarts", type=int, default=2,
                      metavar="N",
                      help="restarts allowed per parallel worker slot "
                           "before it is retired (default: 2)")
    hunt.add_argument("--quarantine-threshold", type=int, default=3,
                      metavar="N",
                      help="failed attempts before a round is "
                           "quarantined instead of retried "
                           "(default: 3)")
    hunt.add_argument("--stall-timeout", type=float, default=0.0,
                      metavar="SECS",
                      help="steal a parallel worker's leased rounds "
                           "when its heartbeat goes stale this long "
                           "(default: 0 = disabled)")
    hunt.add_argument("--chaos-seed", type=int, default=None,
                      metavar="SEED",
                      help="inject a seeded fault schedule (worker "
                           "kills, transient failures, journal "
                           "corruption) into a parallel hunt — "
                           "exercises the supervision layer; results "
                           "must match an undisturbed run")
    hunt.add_argument("--serve", default=None, metavar="[HOST:]PORT",
                      help="serve a live status dashboard over HTTP "
                           "while the hunt runs: / (HTML), /status, "
                           "/metrics (Prometheus), /bugs, /coverage, "
                           "/plantime, /events; binds 127.0.0.1 unless "
                           "HOST is given, port 0 picks a free port")
    hunt.add_argument("--events", default=None, metavar="PATH",
                      help="write the unified campaign event log "
                           "(typed JSONL: round lifecycle, worker "
                           "lifecycle, chaos, bugs, plan novelty) "
                           "as the hunt runs; per-round events need "
                           "the round-queue path (--journal or "
                           "--threads)")
    hunt.set_defaults(handler=cmd_hunt)

    report = sub.add_parser(
        "report", help="offline triage analytics: digest a hunt's "
                       "journal (+ optional event log and metrics "
                       "snapshot) into a campaign report")
    report.add_argument("journal", help="campaign journal (JSONL)")
    report.add_argument("--events", default=None, metavar="PATH",
                        help="unified event log from hunt --events")
    report.add_argument("--metrics", default=None, metavar="PATH",
                        help="JSON metrics snapshot from hunt --metrics")
    report.add_argument("--json", action="store_true",
                        help="print the full report as JSON instead of "
                             "text")
    report.add_argument("--reduce", action="store_true",
                        help="delta-debug each finding's test case "
                             "before fingerprinting (slower, tighter "
                             "dedup)")
    report.add_argument("--history", default="results/history.jsonl",
                        metavar="PATH",
                        help="append a one-line summary here "
                             "(default: results/history.jsonl)")
    report.add_argument("--no-history", action="store_true",
                        help="skip the history append")
    report.set_defaults(handler=cmd_report)

    optreport = sub.add_parser(
        "optreport", help="diff two per-plan timing archives into "
                          "new / fixed / worsened planner regressions "
                          "(TAQO-style optimizer regression report)")
    optreport.add_argument("old", help="baseline timing archive (JSONL "
                                       "from hunt --timing-archive)")
    optreport.add_argument("new", help="candidate timing archive")
    optreport.add_argument("--ratio", type=float, default=1.5,
                           metavar="R",
                           help="slowdown at or above R counts as a "
                                "regression (default: 1.5)")
    optreport.add_argument("--worsen-margin", type=float, default=0.10,
                           metavar="M",
                           help="an ongoing regression is 'worsened' "
                                "when its slowdown grew by more than "
                                "this fraction (default: 0.10)")
    optreport.add_argument("--json", action="store_true",
                           help="print the full comparison as JSON "
                                "instead of text")
    optreport.set_defaults(handler=cmd_optreport)

    sqlite_cmd = sub.add_parser("sqlite", help="PQS against the real "
                                               "SQLite build")
    sqlite_cmd.add_argument("--databases", type=int, default=25)
    sqlite_cmd.add_argument("--seed", type=int, default=0)
    sqlite_cmd.add_argument("--isolate", action="store_true",
                            help="run SQLite in a crash-isolated child "
                                 "process (the paper's process moat)")
    sqlite_cmd.add_argument("--timeout", type=float, default=10.0,
                            metavar="SECONDS",
                            help="per-statement watchdog deadline with "
                                 "--isolate (default: 10)")
    sqlite_cmd.add_argument("--multiplan", action="store_true",
                            help="cross-check every query across "
                                 "distinct forced plans (INDEXED BY / "
                                 "NOT INDEXED / ANALYZE rewrites)")
    sqlite_cmd.add_argument("--plan-timing", action="store_true",
                            help="time every distinct forced plan and "
                                 "flag planner regressions; requires "
                                 "--multiplan")
    sqlite_cmd.set_defaults(handler=cmd_sqlite)

    bugs = sub.add_parser("bugs", help="list the injected-defect catalog")
    bugs.add_argument("--dialect", default=None,
                      choices=["sqlite", "mysql", "postgres"])
    bugs.set_defaults(handler=cmd_bugs)

    replay = sub.add_parser(
        "replay", help="replay a ;-separated SQL test case against "
                       "clean and defect-injected engines")
    replay.add_argument("path", help="file of SQL statements (the last "
                                     "one is the checked statement)")
    replay.add_argument("--dialect", default="sqlite",
                        choices=["sqlite", "mysql", "postgres"])
    replay.add_argument("--bugs", default=None,
                        help="comma-separated defect ids to enable "
                             "(default: all for the dialect)")
    replay.set_defaults(handler=cmd_replay)

    paper = sub.add_parser("paper", help="print the paper-artifact "
                                         "index (what reproduces what)")
    paper.set_defaults(handler=cmd_paper)

    shell = sub.add_parser("shell", help="interactive MiniDB shell")
    shell.add_argument("--dialect", default="sqlite",
                       choices=["sqlite", "mysql", "postgres"])
    shell.add_argument("--enable-bug", action="append", default=[],
                       help="defect id to inject (repeatable)")
    shell.set_defaults(handler=cmd_shell)
    return parser


def cmd_hunt(args) -> int:
    bug_ids = args.bugs.split(",") if args.bugs else None
    if args.resume and not args.journal:
        print("--resume requires --journal")
        return 2
    if args.chaos_seed is not None and args.threads <= 1:
        print("--chaos-seed requires --threads > 1 (chaos targets the "
              "supervised parallel fleet)")
        return 2
    if args.plan_timing and not args.multiplan:
        print("--plan-timing requires --multiplan (the timing collector "
              "rides inside the multi-plan oracle)")
        return 2
    if args.timing_archive and not args.plan_timing:
        print("--timing-archive requires --plan-timing")
        return 2
    telemetry, sink = _build_telemetry(args)
    observatory, server = _build_observatory(args, telemetry)
    reporter = None
    if args.progress > 0:
        from repro.telemetry import ProgressReporter

        total_rounds = args.databases * max(args.threads, 1)
        # The queue's exact settled counts beat registry counters
        # whenever a queue exists (always in parallel mode, where
        # workers count in private registries; and under work stealing,
        # where a duplicate re-run double-counts).  The observatory's
        # counts() falls through to (0, 0) without a queue, so only
        # hook it up when one will be attached.
        counts = None
        if observatory.enabled and (args.journal or args.threads > 1):
            counts = observatory.counts
        reporter = ProgressReporter(telemetry.registry, total_rounds,
                                    interval=args.progress,
                                    counts=counts).start()
    if getattr(args, "events", None) and not (args.journal
                                              or args.threads > 1):
        # The bulk serial path has no per-round boundary (sequential
        # RNG by design); only the round-queue path emits round events.
        print("[pqs] note: --events without --journal/--threads logs "
              "campaign lifecycle only (per-round events need the "
              "round-queue path)", file=sys.stderr)
    observatory.events.emit("campaign_start",
                            databases=args.databases * max(args.threads, 1),
                            threads=args.threads)
    try:
        if args.threads > 1:
            return _hunt_parallel(args, bug_ids, telemetry, observatory)
        config = CampaignConfig(
            dialect=args.dialect, seed=args.seed,
            databases=args.databases, bug_ids=bug_ids,
            reduce=not args.no_reduce,
            journal=args.journal, resume=args.resume,
            telemetry=telemetry,
            observe=observatory if observatory.enabled else None,
            guidance=args.guidance,
            plan_coverage=args.plan_coverage,
            quarantine_threshold=args.quarantine_threshold,
            multiplan=args.multiplan,
            plan_timing=args.plan_timing,
            timing_repeats=args.timing_repeats,
            regression_ratio=args.regression_ratio,
            timing_archive=args.timing_archive,
            batch_size=args.batch_size)
        result = Campaign(config).run()
    except PQSError as error:
        print(f"error: {error}")
        return 2
    finally:
        if reporter is not None:
            reporter.stop()
        observatory.events.emit("campaign_end")
        if server is not None:
            server.stop()
        observatory.events.close()
        if sink is not None:
            sink.close()
    _write_metrics(args, telemetry, result.stats)
    _print_hunt_stats(result.stats, telemetry,
                      coverage=result.plan_coverage,
                      recovery=result.recovery)
    _print_timing_archive(args, result.timing_archive)
    _print_quarantine(result.harness_reports())
    for report in result.reports:
        print(f"\n[{report.oracle.value}] {report.message} "
              f"(triage: {report.triage})")
        print(f"  defect: {', '.join(report.attributed_bugs)}")
        for statement in report.test_case.statements:
            print(f"    {statement};")
    print(f"\ndetected {len(result.detected_bug_ids)} distinct "
          f"defect(s) in {len(result.reports)} report(s)")
    return 0


def _hunt_parallel(args, bug_ids, telemetry, observatory) -> int:
    from repro.campaigns.parallel import (
        ParallelCampaign,
        ParallelCampaignConfig,
    )

    chaos = None
    if args.chaos_seed is not None:
        from repro.campaigns.chaos import ChaosPolicy

        chaos = ChaosPolicy(seed=args.chaos_seed)
    config = ParallelCampaignConfig(
        dialect=args.dialect, seed=args.seed, threads=args.threads,
        databases_per_thread=args.databases, bug_ids=bug_ids,
        reduce=not args.no_reduce, journal=args.journal,
        resume=args.resume,
        telemetry=(telemetry if telemetry.enabled else None),
        observe=observatory if observatory.enabled else None,
        guidance=args.guidance, plan_coverage=args.plan_coverage,
        max_worker_restarts=args.max_worker_restarts,
        stall_timeout=args.stall_timeout,
        quarantine_threshold=args.quarantine_threshold,
        multiplan=args.multiplan,
        plan_timing=args.plan_timing,
        timing_repeats=args.timing_repeats,
        regression_ratio=args.regression_ratio,
        timing_archive=args.timing_archive,
        batch_size=args.batch_size,
        chaos=chaos)
    result = ParallelCampaign(config).run()
    _write_metrics(args, telemetry, result.stats)
    _print_hunt_stats(result.stats, telemetry,
                      coverage=result.plan_coverage,
                      recovery=result.recovery)
    _print_timing_archive(args, result.timing_archive)
    for index, count in enumerate(result.per_thread_rounds):
        print(f"worker {index}: {count} round(s)")
    supervision = result.supervision
    if supervision.restarts or supervision.stalls:
        print(f"supervision: {supervision.restarts} restart(s), "
              f"{supervision.stalls} stall(s), "
              f"{supervision.backoff_seconds:.2f}s backoff")
    if chaos is not None:
        events = chaos.events
        print(f"chaos: {events.kills} kill(s), "
              f"{events.transients} transient(s), "
              f"{events.corruptions} corruption(s)")
    _print_quarantine(result.harness_reports())
    for summary in result.worker_errors:
        print(f"FAILED {summary}")
    print(f"\ndetected {len(result.detected_bug_ids)} distinct "
          f"defect(s) in {len(result.reports)} report(s) across "
          f"{args.threads} worker(s)")
    return 0


def _print_timing_archive(args, archive) -> None:
    if archive is None or not args.timing_archive:
        return
    print(f"timing archive: {args.timing_archive} "
          f"({len(archive)} query shape(s))")


def _print_quarantine(harness_reports: list[str]) -> None:
    if not harness_reports:
        return
    print(f"quarantined {len(harness_reports)} round(s) — harness "
          "availability failures, not DBMS findings:")
    for line in harness_reports:
        print(f"  {line}")


def _build_telemetry(args):
    """A Telemetry bundle for the hunt; null unless a flag asks for it.

    Returns ``(telemetry, sink)`` — the sink (when ``--trace`` is set)
    must be closed by the caller once the hunt ends.
    """
    from repro.telemetry import (
        NULL_TELEMETRY,
        JsonlSink,
        MetricsRegistry,
        NullTracer,
        Telemetry,
        Tracer,
    )

    wants = (getattr(args, "metrics", None)
             or getattr(args, "trace", None)
             or getattr(args, "progress", 0) > 0
             # --serve exposes /metrics, so serving implies counting.
             or getattr(args, "serve", None))
    if not wants:
        return NULL_TELEMETRY, None
    sink = None
    tracer = NullTracer()
    if getattr(args, "trace", None):
        sink = JsonlSink(args.trace)
        tracer = Tracer(sink)
    return Telemetry(registry=MetricsRegistry(), tracer=tracer), sink


def _build_observatory(args, telemetry):
    """An Observatory (+ started StatusServer) when ``--serve`` or
    ``--events`` asks for one; the null observatory otherwise.

    Returns ``(observatory, server)``; the server (when any) is already
    listening — its URL goes to *stderr* so stdout stays parseable.
    """
    from repro.observe import NULL_OBSERVATORY

    serve = getattr(args, "serve", None)
    events_path = getattr(args, "events", None)
    if not serve and not events_path:
        return NULL_OBSERVATORY, None
    from repro.observe import (
        EventLog,
        Observatory,
        StatusServer,
        campaign_id,
        parse_address,
    )
    from repro.telemetry import JsonlSink

    events_sink = JsonlSink(events_path) if events_path else None
    campaign = campaign_id(args.dialect, args.seed)
    events = EventLog(campaign, sink=events_sink)
    observatory = Observatory(
        campaign=campaign, dialect=args.dialect, seed=args.seed,
        total_rounds=args.databases * max(args.threads, 1),
        events=events,
        registry=(telemetry.registry if telemetry.registry.enabled
                  else None))
    server = None
    if serve:
        host, port = parse_address(serve)
        server = StatusServer(observatory, host, port).start()
        print(f"[pqs] status server listening on {server.url}",
              file=sys.stderr)
    return observatory, server


def cmd_report(args) -> int:
    import json

    from repro.observe import (
        append_history,
        build_report,
        load_history,
        render_report,
        render_trend,
    )

    reduce_fn = _report_reducer(args) if args.reduce else None
    try:
        report = build_report(args.journal, events_path=args.events,
                              metrics_path=args.metrics,
                              reduce_fn=reduce_fn)
    except PQSError as error:
        print(f"error: {error}")
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
        # Trend over *prior* campaigns only — this report's own line is
        # appended below, after the comparison it is being compared to.
        if args.history:
            trend = render_trend(load_history(args.history))
            if trend:
                print()
                print(trend)
    if not args.no_history and args.history:
        line = append_history(args.history, report)
        print(f"\nappended to {args.history}: "
              f"{json.dumps(line, sort_keys=True)}")
    return 0


def _report_reducer(args):
    """A TestCase→TestCase reducer for ``pqs report --reduce``, built
    from the journal header's own dialect and defect set."""
    from repro.campaigns.journal import CampaignJournal
    from repro.campaigns.replay import DifferentialReplayer
    from repro.core.reducer import TestCaseReducer
    from repro.errors import ReductionError
    from repro.minidb.bugs import BugRegistry, bugs_for_dialect

    header = CampaignJournal(args.journal).read_header()
    dialect = header.get("dialect", "sqlite")
    bug_ids = header.get("bug_ids") or [
        b.bug_id for b in bugs_for_dialect(dialect)]
    replayer = DifferentialReplayer(dialect, BugRegistry(set(bug_ids)))
    reducer = TestCaseReducer(replayer.manifests)

    def reduce_case(case):
        try:
            return reducer.reduce(case)
        except ReductionError:
            return case

    return reduce_case


def _write_metrics(args, telemetry, stats) -> None:
    if not getattr(args, "metrics", None) \
            or not telemetry.registry.enabled:
        return
    import json

    path = args.metrics
    if path.endswith(".prom"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(telemetry.registry.to_prometheus())
        return
    document = {
        "snapshot": telemetry.registry.snapshot(),
        "derived": {
            "seconds": stats.seconds,
            "queries_per_second": stats.queries_per_second,
            "statements_per_second": stats.statements_per_second,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _print_hunt_stats(stats, telemetry=None, coverage=None,
                      recovery=None) -> None:
    line = (f"statements={stats.statements} "
            f"queries={stats.queries} "
            f"expected-errors={stats.expected_errors} "
            f"timeouts={stats.timeouts}")
    if stats.quarantined_rounds:
        line += f" quarantined={stats.quarantined_rounds}"
    print(line)
    if stats.multiplan_queries or stats.multiplan_forced_failures:
        print(f"multiplan: {stats.multiplan_queries} queries "
              f"cross-checked over {stats.multiplan_plans} plan "
              f"executions, {stats.multiplan_divergences} "
              f"divergence(s), {stats.multiplan_forced_failures} "
              f"forced-plan failure(s)")
    _print_plantime_stats(stats)
    if recovery is not None and not recovery.clean:
        print(f"journal recovery: {recovery.corrupt_lines} corrupt "
              f"line(s) skipped, {recovery.duplicate_rounds} duplicate "
              f"round(s) deduplicated")
    if coverage is not None:
        novel_rounds = 0
        if telemetry is not None and telemetry.registry.enabled:
            from repro.telemetry import names as metric_names

            novel_rounds = telemetry.counter(
                metric_names.GUIDANCE_NOVEL_ROUNDS).value
        line = f"plan coverage: {coverage.distinct} distinct plan(s)"
        if novel_rounds:
            line += f", {novel_rounds} round(s) with novelty"
        print(line)
    executions = stats.statements + stats.queries
    if stats.seconds > 0 and executions:
        print(f"throughput: {stats.queries_per_second:,.1f} queries/s, "
              f"{stats.statements_per_second:,.1f} statements/s "
              f"over {stats.seconds:.2f}s of hunting")
        timeout_rate = 100.0 * stats.timeouts / executions
        expected_rate = 100.0 * stats.expected_errors / executions
        print(f"rates: {expected_rate:.1f}% expected errors, "
              f"{timeout_rate:.2f}% timeouts")
    if telemetry is not None and telemetry.registry.enabled:
        from repro.telemetry import names as metric_names

        phases = [
            (i.labels.get("phase"), i)
            for i in telemetry.registry.instruments()
            if i.name == metric_names.PHASE_SECONDS and i.count]
        for phase, histogram in sorted(phases):
            print(f"  phase {phase}: n={histogram.count} "
                  f"mean={histogram.mean * 1e3:.2f}ms "
                  f"p95={histogram.percentile(95) * 1e3:.2f}ms")


def _print_plantime_stats(stats) -> None:
    if not stats.plantime_queries:
        return
    print(f"plan timing: {stats.plantime_queries} queries timed, "
          f"{len(stats.plan_regressions)} planner regression(s)")
    worst = sorted(stats.plan_regressions,
                   key=lambda r: -r.get("slowdown", 0.0))[:3]
    for regression in worst:
        print(f"  {regression.get('slowdown', 0):.2f}x slower than "
              f"best forced plan: {regression.get('sql', '?')}")


def cmd_optreport(args) -> int:
    import json

    from repro.plantime import (
        TimingArchive,
        compare_archives,
        render_optreport,
    )

    try:
        old = TimingArchive.load(args.old)
        new = TimingArchive.load(args.new)
    except PQSError as error:
        print(f"error: {error}")
        return 2
    comparison = compare_archives(old, new, ratio=args.ratio,
                                  worsen_margin=args.worsen_margin)
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(render_optreport(comparison))
    # Exit 1 when the candidate archive introduced or worsened a
    # regression — lets CI gate on planner quality like a test.
    regressed = comparison["new"] or comparison["worsened"]
    return 1 if regressed else 0


def cmd_sqlite(args) -> int:
    from repro.adapters.sqlite3_adapter import SQLite3Connection
    from repro.core.error_oracle import SQLITE3_DOCUMENTED_QUIRKS

    factory = SQLite3Connection
    if args.isolate:
        from repro.adapters.subprocess_adapter import (
            SubprocessConfig,
            SubprocessConnection,
        )

        harness_config = SubprocessConfig(
            statement_timeout=args.timeout)

        def factory() -> SubprocessConnection:
            return SubprocessConnection(SQLite3Connection,
                                        harness_config)

    if args.plan_timing and not args.multiplan:
        print("--plan-timing requires --multiplan")
        return 2
    runner = PQSRunner(factory,
                       RunnerConfig(dialect="sqlite", seed=args.seed,
                                    multiplan=args.multiplan,
                                    plan_timing=args.plan_timing,
                                    documented_quirks=SQLITE3_DOCUMENTED_QUIRKS))
    stats = runner.run(args.databases)
    print(f"databases={stats.databases} statements={stats.statements} "
          f"queries={stats.queries} timeouts={stats.timeouts} "
          f"findings={len(stats.reports)}")
    if stats.multiplan_queries or stats.multiplan_forced_failures:
        print(f"multiplan: {stats.multiplan_queries} queries "
              f"cross-checked over {stats.multiplan_plans} plan "
              f"executions, {stats.multiplan_divergences} "
              f"divergence(s), {stats.multiplan_forced_failures} "
              f"forced-plan failure(s)")
    _print_plantime_stats(stats)
    for report in stats.reports:
        print(f"\n[{report.oracle.value}] {report.message}")
        print(report.test_case.render())
    if not stats.reports:
        print("no findings — the production engine passed.")
    return 0 if not stats.reports else 1


def cmd_bugs(args) -> int:
    bugs = (bugs_for_dialect(args.dialect) if args.dialect
            else list(BUG_CATALOG.values()))
    for bug in bugs:
        print(f"{bug.bug_id}")
        print(f"    dialect: {bug.dialect}  oracle: {bug.oracle}  "
              f"component: {bug.component}  triage: {bug.triage}")
        print(f"    models: {bug.paper_ref}")
        print(f"    {bug.description}")
    print(f"\n{len(bugs)} defect(s)")
    return 0


def cmd_paper(_args) -> int:
    from repro.paper import format_index

    print(format_index())
    return 0


def cmd_replay(args) -> int:
    from repro.campaigns.replay import DifferentialReplayer
    from repro.core.reports import TestCase
    from repro.minidb.bugs import BugRegistry, bugs_for_dialect

    with open(args.path) as handle:
        text = handle.read()
    statements = [s.strip() for s in text.split(";") if s.strip()]
    if not statements:
        print("no statements in file")
        return 2
    case = TestCase(statements=statements, dialect=args.dialect)
    bug_ids = (args.bugs.split(",") if args.bugs
               else [b.bug_id for b in bugs_for_dialect(args.dialect)])
    replayer = DifferentialReplayer(args.dialect,
                                    BugRegistry(set(bug_ids)))
    manifests = replayer.manifests(case)
    print(f"statements: {len(statements)}")
    print(f"manifests (buggy vs clean engines disagree): {manifests}")
    if manifests:
        attributed = replayer.attribute(case)
        print("attributed defects:")
        for bug_id in attributed:
            print(f"    {bug_id}: {BUG_CATALOG[bug_id].paper_ref}")
        return 1
    return 0


def cmd_shell(args) -> int:
    from repro.minidb.bugs import BugRegistry
    from repro.minidb.engine import Engine

    engine = Engine(args.dialect,
                    bugs=BugRegistry(set(args.enable_bug)))
    print(f"MiniDB shell ({args.dialect}); end statements with Enter, "
          "Ctrl-D to exit")
    while True:
        try:
            line = input("minidb> ").strip()
        except EOFError:
            print()
            return 0
        if not line:
            continue
        if line.lower() in ("quit", "exit", ".q"):
            return 0
        try:
            result = engine.execute(line.rstrip(";"))
        except DBCrash as crash:
            print(f"CRASH: {crash.message} (engine process gone; "
                  "restarting)")
            engine = Engine(args.dialect,
                            bugs=BugRegistry(set(args.enable_bug)))
            continue
        except DBError as error:
            print(f"error: {error.message}")
            continue
        if result.columns:
            print("  " + " | ".join(result.columns))
        for row in result.python_rows():
            print("  " + " | ".join(repr(v) for v in row))


if __name__ == "__main__":
    sys.exit(main())
