"""The single-file HTML dashboard served at ``/``.

One self-contained page — inline CSS, inline JS, no external assets, no
build step — that polls ``/status``, ``/bugs``, ``/plantime``, and
``/events`` every two seconds and renders a progress bar, worker-health
table, bug list, a planner panel (multi-plan oracle activity plus the
optimizer observatory's worst regressions), and event tail.  Kept
deliberately boring: the dashboard must work from
``curl -o - | browser`` on an air-gapped hunt box.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pqs hunt</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         background: #111418; color: #d6dbe1; margin: 2rem; }
  h1 { font-size: 1.1rem; color: #7fd1b9; }
  h2 { font-size: 0.95rem; color: #8ab4f8; margin-top: 1.5rem; }
  .bar { background: #22262c; border-radius: 4px; height: 14px;
         overflow: hidden; max-width: 40rem; }
  .bar > div { background: #7fd1b9; height: 100%; width: 0; }
  .bar > div.q { background: #e0a458; }
  table { border-collapse: collapse; margin-top: 0.5rem; }
  td, th { border: 1px solid #2c313a; padding: 2px 10px;
           font-size: 0.85rem; text-align: left; }
  #events { max-height: 18rem; overflow-y: auto; font-size: 0.8rem;
            background: #15181d; padding: 0.5rem; max-width: 60rem; }
  .muted { color: #707a86; }
  .bug { color: #e06c75; }
</style>
</head>
<body>
<h1 id="title">pqs hunt</h1>
<div class="bar"><div id="done"></div></div>
<p id="summary" class="muted">connecting&hellip;</p>
<h2>workers</h2>
<table id="workers"><tbody></tbody></table>
<h2>bugs</h2>
<table id="bugs"><tbody></tbody></table>
<h2>planner</h2>
<p id="planner" class="muted">inactive</p>
<table id="regressions"><tbody></tbody></table>
<h2>events</h2>
<div id="events"></div>
<script>
"use strict";
function cell(text, cls) {
  const td = document.createElement("td");
  td.textContent = text;
  if (cls) td.className = cls;
  return td;
}
function fill(tableId, header, rows) {
  const body = document.querySelector("#" + tableId + " tbody");
  body.replaceChildren();
  const head = document.createElement("tr");
  header.forEach(h => {
    const th = document.createElement("th");
    th.textContent = h;
    head.appendChild(th);
  });
  body.appendChild(head);
  rows.forEach(cols => {
    const tr = document.createElement("tr");
    cols.forEach(c => tr.appendChild(cell(String(c))));
    body.appendChild(tr);
  });
}
async function tick() {
  try {
    const status = await (await fetch("/status")).json();
    const rounds = status.rounds || {};
    const total = rounds.total || 0;
    const done = (rounds.completed || 0) + (rounds.quarantined || 0);
    document.getElementById("title").textContent =
      "pqs hunt \\u2014 " + (status.campaign || "?");
    const pct = total ? Math.min(100 * done / total, 100) : 0;
    document.getElementById("done").style.width = pct.toFixed(1) + "%";
    const tp = status.throughput || {};
    const bits = [
      done + "/" + total + " rounds (" + pct.toFixed(0) + "%)",
      "leased " + (rounds.leased || 0),
      "quarantined " + (rounds.quarantined || 0),
      (tp.queries || 0) + " queries",
    ];
    if (tp.queries_per_second !== undefined)
      bits.push(tp.queries_per_second + " q/s");
    if (status.eta_seconds !== undefined)
      bits.push("ETA " + Math.round(status.eta_seconds) + "s");
    if (status.finished) bits.push("FINISHED");
    document.getElementById("summary").textContent = bits.join(" | ");
    fill("workers", ["slot", "worker", "heartbeat age (s)", "restarts"],
         (status.workers || []).map(w =>
           [w.slot, w.worker, w.heartbeat_age_seconds ?? "-",
            w.restarts ?? 0]));
    const bugs = (await (await fetch("/bugs")).json()).bugs || [];
    fill("bugs", ["round", "oracle", "fingerprint", "statements"],
         bugs.map(b => [b.round, b.oracle, b.fingerprint,
                        (b.test_case.statements || []).length]));
    const mp = status.multiplan || {};
    const pt = await (await fetch("/plantime")).json();
    const planBits = [];
    if (mp.active)
      planBits.push("multiplan: " + (mp.queries || 0) + " queries, " +
        (mp.divergences || 0) + " divergences, " +
        (mp.forced_failures || 0) + " forced failures");
    if (pt.tracked)
      planBits.push("timing: " + (pt.queries_timed || 0) +
        " queries timed, " + (pt.regressions || 0) + " regressions");
    document.getElementById("planner").textContent =
      planBits.length ? planBits.join(" | ") : "inactive";
    fill("regressions", ["shape", "slowdown", "query"],
         (pt.worst || []).map(r =>
           [r.shape, (r.slowdown || 0).toFixed(2) + "x", r.sql]));
    const events =
      (await (await fetch("/events?limit=50")).json()).events || [];
    const pane = document.getElementById("events");
    pane.replaceChildren();
    events.slice().reverse().forEach(e => {
      const line = document.createElement("div");
      if (e.kind === "bug_found") line.className = "bug";
      const where = e.round !== undefined ? " r" + e.round : "";
      const who = e.worker !== undefined ? " w" + e.worker : "";
      line.textContent = "[" + (e.t ?? 0).toFixed(2) + "] " + e.kind +
        where + who;
      pane.appendChild(line);
    });
  } catch (err) {
    document.getElementById("summary").textContent =
      "poll failed: " + err;
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
