"""The unified campaign event log: one typed, correlated JSONL stream.

A long-running hunt already leaves three artifacts — the journal (what
each round produced), the span trace (how long each phase took), and
the metrics snapshot (how much of everything happened).  What was
missing is the *narrative*: which worker leased which round when, what
failed and why, where chaos struck, when a bug surfaced.  The event log
is that narrative, and it shares correlation keys with the other
artifacts so they all join:

* ``campaign`` — the campaign id (``<dialect>-s<seed>``), identical in
  every event of a run;
* ``round`` / ``round_seed`` — the round index and its derived seed,
  exactly the ``index``/``seed`` fields of journal lines and the
  ``round``/``round_seed`` context attributes of trace spans;
* ``worker`` — the executor incarnation id, the same id the supervisor
  maps to a logical slot.

One event per line, JSON, append-only (:class:`JsonlSink` compatible);
``seq`` is a campaign-wide monotonic emission counter and ``t`` is
monotonic seconds since the log was born, so one process's stream is
totally ordered even when workers interleave.

**Determinism.**  Emission *order* across workers is scheduling — two
runs of the same campaign under different thread counts or chaos
schedules interleave differently.  What is deterministic is the
*outcome sub-stream*: :func:`merge_events` re-orders any collection of
per-worker or per-process streams by a canonical schedule-independent
key, and :func:`deterministic_view` projects the merged stream down to
the events (and fields) that depend only on the campaign definition —
round completions, quarantines, bugs — which the tests assert are
bit-identical across thread counts and chaos schedules (plan novelty is
worker-relative per event; its schedule-free invariant is the union,
:func:`novel_fingerprints`).

The log is **observation only**: nothing in it feeds back into
generation, so a campaign with the log on is statement-for-statement
identical to one without (asserted by the chaos acceptance tests).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Iterable, Optional

#: The event vocabulary.  The rank is the canonical tiebreak order for
#: events of one round when streams are merged: a round is leased, may
#: fail, then completes or is quarantined; bugs and plan novelty hang
#: off the completion.
KIND_RANK = {
    "campaign_start": 0,
    "worker_start": 1,
    "round_leased": 2,
    "chaos_transient": 3,
    "round_failed": 4,
    "worker_death": 5,
    "worker_stalled": 6,
    "worker_restart": 7,
    "worker_retired": 8,
    "chaos_corruption": 9,
    "round_completed": 10,
    "bug_found": 11,
    "plan_novel": 12,
    "round_quarantined": 13,
    "campaign_end": 14,
}

#: Kinds whose occurrence and payload depend only on the campaign
#: definition (seed, dialect, round set), never on scheduling or chaos
#: — the sub-stream :func:`deterministic_view` keeps.  ``plan_novel``
#: is deliberately absent: novelty is judged against the *worker-local*
#: seen-set, so which round an event credits depends on scheduling.
#: Only the union of its fingerprints is schedule-free — use
#: :func:`novel_fingerprints` for that invariant.
DETERMINISTIC_KINDS = ("round_completed", "bug_found",
                       "round_quarantined")

#: Schedule-independent payload fields per deterministic kind (``kind``,
#: ``campaign``, ``round``, ``round_seed`` are always kept; ``worker``,
#: ``seq``, ``t``, ``wall`` and timing attrs never are).
_DETERMINISTIC_ATTRS = {
    "round_completed": ("statements", "queries", "pivots",
                        "expected_errors", "timeouts", "reports"),
    "bug_found": ("oracle", "message", "ordinal"),
    "round_quarantined": ("error",),
}


def campaign_id(dialect: str, seed: int) -> str:
    """The canonical campaign correlation id: seeded, human-readable."""
    return f"{dialect}-s{seed}"


class EventLog:
    """Thread-safe, bounded-memory event stream for one campaign.

    Every event lands in a ring buffer (the ``/events`` endpoint's
    tail) and, when a sink is attached, is appended to it as one JSON
    line.  The sink only needs ``write(dict)``/``close()`` — the
    tracer's :class:`~repro.telemetry.tracer.JsonlSink` fits.
    """

    enabled = True

    def __init__(self, campaign: str = "", sink=None,
                 capacity: int = 4096):
        self.campaign = campaign
        self.sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        self._origin = time.monotonic()
        self._wall_anchor = time.time() - self._origin
        self._ring: deque = deque(maxlen=max(capacity, 1))

    # -- emission -----------------------------------------------------------
    def emit(self, kind: str, round: Optional[int] = None,
             worker: Optional[int] = None,
             round_seed: Optional[int] = None, **attrs) -> dict:
        """Record one event; returns the event dict that was written."""
        now = time.monotonic()
        event: dict = {"kind": kind, "campaign": self.campaign}
        if round is not None:
            event["round"] = round
        if round_seed is not None:
            event["round_seed"] = round_seed
        if worker is not None:
            event["worker"] = worker
        clean = {k: v for k, v in attrs.items() if v is not None}
        if clean:
            event["attrs"] = clean
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            event["t"] = round_t(now - self._origin)
            event["wall"] = round_t(self._wall_anchor + now)
            self._ring.append(event)
            sink = self.sink
        if sink is not None:
            sink.write(event)
        return event

    # -- reading ------------------------------------------------------------
    def tail(self, limit: int = 100) -> list[dict]:
        """The most recent *limit* events, oldest first."""
        with self._lock:
            events = list(self._ring)
        if limit <= 0:
            return []
        return events[-limit:]

    def events(self) -> list[dict]:
        """Everything still in the ring buffer, oldest first."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return self._seq

    def close(self) -> None:
        with self._lock:
            sink, self.sink = self.sink, None
        if sink is not None:
            sink.close()


class NullEventLog:
    """Shared no-op log — the default when observability is off."""

    enabled = False
    campaign = ""
    sink = None

    def emit(self, kind: str, round: Optional[int] = None,
             worker: Optional[int] = None,
             round_seed: Optional[int] = None, **attrs) -> dict:
        return {}

    def tail(self, limit: int = 100) -> list[dict]:
        return []

    def events(self) -> list[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def close(self) -> None:
        pass


#: The library-wide disabled default.
NULL_EVENTS = NullEventLog()


def round_t(value: float) -> float:
    return round(value, 6)


# -- offline stream algebra ---------------------------------------------------
def load_events(path: str) -> list[dict]:
    """Events from a JSONL file, skipping unparseable lines (the log is
    observability, not ground truth — a torn tail must not fail
    triage)."""
    events: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(data, dict) and "kind" in data:
                events.append(data)
    return events


def merge_events(*streams: Iterable[dict]) -> list[dict]:
    """Merge per-worker/per-process streams into one canonical order.

    The sort key is built from schedule-independent fields first —
    (has-round, round index, kind rank, intra-round ordinal) — with the
    per-stream emission ``seq`` only as the final tiebreak, so events
    that *are* deterministic always land in the same relative order no
    matter how many workers produced them or how chaos reshuffled the
    scheduling.  Events without a round (worker lifecycle) sort after
    all rounds, by kind rank then seq.
    """
    merged = [event for stream in streams for event in stream]
    merged.sort(key=_canonical_key)
    return merged


def _canonical_key(event: dict) -> tuple:
    round_index = event.get("round")
    attrs = event.get("attrs", {})
    return (
        0 if round_index is not None else 1,
        round_index if round_index is not None else -1,
        KIND_RANK.get(event.get("kind"), 99),
        attrs.get("ordinal", -1),
        attrs.get("attempt", -1),
        event.get("seq", -1),
    )


def deterministic_view(events: Iterable[dict]) -> list[dict]:
    """The schedule-independent projection of a (merged) stream.

    Keeps only :data:`DETERMINISTIC_KINDS`, drops the fields whose
    values depend on scheduling (``worker``, ``seq``, ``t``, ``wall``,
    timing attrs), and deduplicates — a stolen lease can complete twice
    across two streams, but the projection, like the journal, keeps one.
    Two runs of the same campaign produce bit-identical views whatever
    the thread count or chaos schedule.
    """
    view: list[dict] = []
    seen: set[str] = set()
    for event in merge_events(events):
        kind = event.get("kind")
        if kind not in DETERMINISTIC_KINDS:
            continue
        projected: dict = {"kind": kind,
                           "campaign": event.get("campaign", "")}
        for field in ("round", "round_seed"):
            if field in event:
                projected[field] = event[field]
        attrs = event.get("attrs", {})
        kept = {k: attrs[k] for k in _DETERMINISTIC_ATTRS[kind]
                if k in attrs}
        if kept:
            projected["attrs"] = kept
        key = json.dumps(projected, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        view.append(projected)
    return view


def novel_fingerprints(events: Iterable[dict]) -> list[str]:
    """The union of ``plan_novel`` fingerprints, sorted.

    Per-event novelty is worker-relative (see
    :data:`DETERMINISTIC_KINDS`), but every plan any round discovers is
    novel for *some* worker under *some* schedule, so the union is the
    campaign's distinct-plan set — schedule-independent, and identical
    to the merged coverage the journal rebuilds.
    """
    fingerprints: set[str] = set()
    for event in events:
        if event.get("kind") == "plan_novel":
            fingerprints.update(
                event.get("attrs", {}).get("fingerprints", ()))
    return sorted(fingerprints)
