"""The observatory: one read-side hub over a live campaign's state.

The status server, the progress line, and the final report all want the
same answers — how far along is the hunt, who is healthy, what did it
find — but the authoritative sources are scattered: the
:class:`~repro.campaigns.scheduler.RoundQueue` knows exact settled
counts (the *only* live source in parallel mode, where workers count in
private registries merged after the join), the supervisor's heartbeat
map knows worker liveness, the metrics registry knows throughput, and
the plan-coverage set knows novelty.  :class:`Observatory` holds weak
references to whichever of those a campaign attaches and computes
consistent read-only views on demand.

Strictly read-side: the observatory never mutates campaign state, takes
only the locks the underlying structures already take for any reader,
and is therefore safe to poll from an HTTP thread while the hunt runs.
The disabled default is :data:`NULL_OBSERVATORY`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.observe.events import NULL_EVENTS, EventLog


class Observatory:
    """Aggregates live campaign state for status readers."""

    enabled = True

    def __init__(self, campaign: str = "", dialect: str = "",
                 seed: int = 0, total_rounds: int = 0,
                 events: Optional[EventLog] = None, registry=None):
        self.campaign = campaign
        self.dialect = dialect
        self.seed = seed
        self.total_rounds = total_rounds
        self.events = events if events is not None else NULL_EVENTS
        self.registry = registry
        self._queue = None
        self._heartbeats: Optional[dict] = None
        self._supervision = None
        self._coverage = None
        self._start = time.monotonic()
        self._finished: Optional[float] = None

    # -- attachment (called once each by the campaign layers) ---------------
    def attach_queue(self, queue) -> None:
        self._queue = queue

    def attach_heartbeats(self, heartbeats: dict) -> None:
        self._heartbeats = heartbeats

    def attach_supervision(self, report) -> None:
        self._supervision = report

    def attach_coverage(self, coverage) -> None:
        self._coverage = coverage

    def mark_finished(self) -> None:
        self._finished = time.monotonic()

    # -- views ---------------------------------------------------------------
    def counts(self) -> tuple[int, int]:
        """(completed, quarantined) — exact queue bookkeeping, the
        :class:`~repro.telemetry.progress.ProgressReporter` ``counts``
        hook."""
        if self._queue is None:
            return 0, 0
        snapshot = self._queue.counts()
        return snapshot["completed"], snapshot["quarantined"]

    def status(self) -> dict:
        """The ``/status`` document: rounds, workers, throughput, ETA."""
        elapsed = (self._finished or time.monotonic()) - self._start
        status: dict = {
            "campaign": self.campaign,
            "dialect": self.dialect,
            "seed": self.seed,
            "elapsed_seconds": round(elapsed, 3),
            "finished": self._finished is not None,
            "events": len(self.events),
        }
        status["rounds"] = self._round_counts()
        done = (status["rounds"]["completed"]
                + status["rounds"]["quarantined"])
        total = status["rounds"]["total"]
        status["throughput"] = self._throughput(done, elapsed)
        if total and done and not status["finished"]:
            remaining = max(total - done, 0)
            status["eta_seconds"] = round(remaining * elapsed / done, 3)
        status["workers"] = self._worker_health()
        status["multiplan"] = self.multiplan()
        return status

    def _round_counts(self) -> dict:
        if self._queue is not None:
            return self._queue.counts()
        # No queue attached (plain single-process hunt): fall back to
        # the shared registry's round counter, which that mode updates
        # live.
        completed = 0
        if self.registry is not None:
            from repro.telemetry import names
            completed = int(self.registry.value(names.ROUNDS))
        total = self.total_rounds
        if total:
            completed = min(completed, total)
        return {"total": total, "completed": completed,
                "quarantined": 0, "leased": 0,
                "pending": max(total - completed, 0)}

    def _throughput(self, done: int, elapsed: float) -> dict:
        throughput = {
            "rounds_per_second": round(done / elapsed, 4)
            if elapsed > 0 else 0.0,
        }
        if self.registry is not None:
            from repro.telemetry import names
            queries = int(self.registry.value(names.QUERIES))
            statements = int(self.registry.value(names.STATEMENTS))
            throughput["queries"] = queries
            throughput["statements"] = statements
            if elapsed > 0:
                throughput["queries_per_second"] = round(
                    queries / elapsed, 2)
        return throughput

    def _worker_health(self) -> list[dict]:
        if self._heartbeats is None:
            return []
        now = time.monotonic()
        slots = {}
        if self._supervision is not None:
            slots = dict(self._supervision.worker_slots)
        workers = []
        # Report the *latest* incarnation per logical slot; earlier
        # worker ids in the heartbeat map are dead history.
        latest: dict[int, int] = {}
        for worker_id in self._heartbeats:
            slot = slots.get(worker_id, worker_id)
            if worker_id >= latest.get(slot, -1):
                latest[slot] = worker_id
        for slot in sorted(latest):
            worker_id = latest[slot]
            beat = self._heartbeats.get(worker_id)
            entry = {"slot": slot, "worker": worker_id,
                     "heartbeat_age_seconds":
                         round(now - beat, 3) if beat else None}
            workers.append(entry)
        if self._supervision is not None:
            for entry in workers:
                entry["restarts"] = sum(
                    1 for wid, slot in slots.items()
                    if slot == entry["slot"]) - 1
        return workers

    def bugs(self) -> list[dict]:
        """The ``/bugs`` document: raw findings journaled so far, as
        :meth:`~repro.core.reports.BugReport.to_json` dicts tagged with
        their round and content fingerprint."""
        if self._queue is None:
            return []
        found = []
        for record in self._queue.records_in_order():
            for report in record.reports:
                entry = report.to_json()
                entry["round"] = record.index
                entry["fingerprint"] = report.fingerprint()
                found.append(entry)
        return found

    def coverage(self) -> dict:
        """The ``/coverage`` document: plan-coverage summary."""
        if self._coverage is None:
            return {"tracked": False}
        return {"tracked": True,
                "distinct_plans": len(self._coverage)}

    def supervision(self) -> dict:
        if self._supervision is None:
            return {}
        report = self._supervision
        return {"restarts": report.restarts, "stalls": report.stalls,
                "backoff_seconds": round(report.backoff_seconds, 3),
                "worker_deaths": len(report.failures),
                "aborted": report.aborted}

    def multiplan(self) -> dict:
        """Live multi-plan oracle activity: exact queue-record fold when
        a queue is attached, shared-registry counters otherwise (plain
        single-process hunts, where the runner updates them live)."""
        queries = divergences = failures = 0
        if self._queue is not None:
            for record in self._queue.records_in_order():
                outcome = getattr(record, "multiplan", {})
                queries += outcome.get("queries", 0)
                divergences += outcome.get("divergences", 0)
                failures += outcome.get("forced_failures", 0)
        elif self.registry is not None:
            from repro.telemetry import names
            queries = int(self.registry.value(names.MULTIPLAN_QUERIES))
            divergences = int(
                self.registry.value(names.MULTIPLAN_DIVERGENCES))
            failures = int(
                self.registry.value(names.MULTIPLAN_FORCED_FAILURES))
        return {"active": queries > 0, "queries": queries,
                "divergences": divergences,
                "forced_failures": failures}

    def plantime(self) -> dict:
        """The ``/plantime`` document: optimizer-observatory activity —
        timed query count and the worst planner regressions seen so far
        (exact from journaled rounds when a queue is attached, counter
        fallback otherwise)."""
        timed = 0
        regressions: list[dict] = []
        if self._queue is not None:
            for record in self._queue.records_in_order():
                outcome = getattr(record, "plantime", {})
                timed += outcome.get("timed", 0)
                regressions.extend(outcome.get("regressions", ()))
        elif self.registry is not None:
            # Counters carry counts only; the per-regression records
            # live in journal rounds, which this mode does not have.
            from repro.telemetry import names
            timed = int(self.registry.value(names.PLANTIME_QUERIES))
            count = int(self.registry.value(names.PLANTIME_REGRESSIONS))
            if timed == 0 and count == 0:
                return {"tracked": False}
            return {"tracked": True, "queries_timed": timed,
                    "regressions": count, "worst": []}
        if timed == 0 and not regressions:
            return {"tracked": False}
        worst = sorted(regressions,
                       key=lambda r: (-r.get("slowdown", 0.0),
                                      r.get("shape", "")))[:10]
        return {"tracked": True, "queries_timed": timed,
                "regressions": len(regressions), "worst": worst}


class NullObservatory:
    """Shared disabled observatory — every attach/read is a no-op."""

    enabled = False
    campaign = ""
    dialect = ""
    seed = 0
    total_rounds = 0
    events = NULL_EVENTS
    registry = None

    def attach_queue(self, queue) -> None:
        pass

    def attach_heartbeats(self, heartbeats: dict) -> None:
        pass

    def attach_supervision(self, report) -> None:
        pass

    def attach_coverage(self, coverage) -> None:
        pass

    def mark_finished(self) -> None:
        pass

    def counts(self) -> tuple[int, int]:
        return 0, 0

    def status(self) -> dict:
        return {}

    def bugs(self) -> list[dict]:
        return []

    def coverage(self) -> dict:
        return {}

    def supervision(self) -> dict:
        return {}

    def multiplan(self) -> dict:
        return {}

    def plantime(self) -> dict:
        return {}


#: The library-wide disabled default.
NULL_OBSERVATORY = NullObservatory()
