"""Campaign observability: event log, status service, triage analytics.

The observe package is the read side of a hunt.  Three pieces:

* :mod:`repro.observe.events` — the unified structured event log, one
  seeded JSONL stream of typed events sharing ``campaign``/``round``/
  ``round_seed``/``worker`` correlation keys with the journal and the
  span tracer;
* :mod:`repro.observe.observatory` + :mod:`repro.observe.server` — a
  live aggregation hub and the zero-dependency stdlib HTTP status
  service (``hunt --serve``) over it;
* :mod:`repro.observe.report` — offline triage analytics
  (``pqs report``): journal + event log + metrics snapshot in, a
  deduplicated bug digest and a ``results/history.jsonl`` line out.

Everything here is off by default and **observation-only**: no code
path in this package feeds back into generation, and the chaos
acceptance tests pin that a fully-observed campaign produces
bit-identical journals and reports to an unobserved one.
"""

from repro.observe.events import (
    DETERMINISTIC_KINDS,
    KIND_RANK,
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    campaign_id,
    deterministic_view,
    load_events,
    merge_events,
    novel_fingerprints,
)
from repro.observe.observatory import (
    NULL_OBSERVATORY,
    NullObservatory,
    Observatory,
)
from repro.observe.report import (
    append_history,
    build_report,
    history_line,
    load_history,
    render_report,
    render_trend,
)
from repro.observe.server import StatusServer, parse_address

__all__ = [
    "DETERMINISTIC_KINDS",
    "KIND_RANK",
    "NULL_EVENTS",
    "NULL_OBSERVATORY",
    "EventLog",
    "NullEventLog",
    "NullObservatory",
    "Observatory",
    "StatusServer",
    "append_history",
    "build_report",
    "campaign_id",
    "deterministic_view",
    "history_line",
    "load_events",
    "load_history",
    "merge_events",
    "novel_fingerprints",
    "parse_address",
    "render_report",
    "render_trend",
]
