"""A zero-dependency HTTP status service for a running hunt.

``hunt --serve [HOST:]PORT`` starts a :class:`StatusServer` — a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon thread — exposing
read-only views of the campaign's :class:`~repro.observe.observatory.
Observatory`:

========== ==================================================== =========
endpoint   contents                                             format
========== ==================================================== =========
``/``      self-contained polling dashboard                     HTML
``/status`` rounds leased/completed/quarantined, worker health, JSON
           throughput and ETA
``/metrics`` the live metrics registry                          Prometheus
           (plain single-process hunts update it per round;       text
           parallel workers merge theirs after the join)
``/bugs``  raw findings journaled so far                        JSON
``/coverage`` plan-coverage summary                             JSON
``/plantime`` optimizer observatory: timed queries and worst    JSON
           planner regressions (``--plan-timing``)
``/events`` bounded tail of the unified event log               JSON
           (``?limit=N``, default 100, max the ring capacity)
========== ==================================================== =========

The server is strictly an *observer*: handlers only call the
observatory's read-side views, so serving cannot perturb the statement
stream — the chaos acceptance tests run a full campaign with the server
live and assert bit-identical journals.  Binding ``127.0.0.1`` by
default keeps an unattended hunt from listening on the network
unannounced; port 0 asks the OS for a free port (tests use this).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.errors import PQSError
from repro.observe.dashboard import DASHBOARD_HTML
from repro.observe.observatory import Observatory


def parse_address(spec: str, default_host: str = "127.0.0.1",
                  ) -> tuple[str, int]:
    """``[HOST:]PORT`` → (host, port); bare port binds loopback."""
    spec = spec.strip()
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        host, port_text = default_host, spec
    if not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise PQSError(f"--serve: invalid address {spec!r} "
                       f"(expected [HOST:]PORT)")
    if not 0 <= port <= 65535:
        raise PQSError(f"--serve: port {port} out of range")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against ``server.observatory``."""

    #: Stop BaseHTTPRequestHandler from logging every poll to stderr —
    #: the progress line owns that channel.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        observatory: Observatory = self.server.observatory
        try:
            if route == "/":
                self._reply(200, DASHBOARD_HTML,
                            "text/html; charset=utf-8")
            elif route == "/status":
                status = observatory.status()
                status["supervision"] = observatory.supervision()
                self._json(status)
            elif route == "/metrics":
                registry = observatory.registry
                text = registry.to_prometheus() if registry is not None \
                    else ""
                self._reply(200, text,
                            "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/bugs":
                self._json({"bugs": observatory.bugs()})
            elif route == "/coverage":
                self._json(observatory.coverage())
            elif route == "/plantime":
                self._json(observatory.plantime())
            elif route == "/events":
                query = parse_qs(parsed.query)
                try:
                    limit = int(query.get("limit", ["100"])[0])
                except ValueError:
                    limit = 100
                self._json({"events": observatory.events.tail(limit)})
            else:
                self._json({"error": f"no such endpoint: {route}"},
                           status=404)
        except BrokenPipeError:
            pass
        except Exception as exc:  # noqa: BLE001 - a status poll must
            # never take down the hunt; report the error to the poller.
            try:
                self._json({"error": f"{type(exc).__name__}: {exc}"},
                           status=500)
            except OSError:
                pass

    # -- response plumbing ---------------------------------------------------
    def _json(self, payload: dict, status: int = 200) -> None:
        self._reply(status, json.dumps(payload, indent=2),
                    "application/json")

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(data)


class StatusServer:
    """Owns the HTTP server thread for one campaign.

    Usable as a context manager; :meth:`stop` is idempotent.  The bound
    port is available as :attr:`port` after :meth:`start` (useful with
    port 0).
    """

    def __init__(self, observatory: Observatory,
                 host: str = "127.0.0.1", port: int = 0):
        self.observatory = observatory
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "StatusServer":
        if self._httpd is not None:
            return self
        try:
            httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        except OSError as exc:
            raise PQSError(
                f"--serve: cannot bind {self.host}:{self.port}: {exc}")
        httpd.daemon_threads = True
        httpd.observatory = self.observatory
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="pqs-status-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
