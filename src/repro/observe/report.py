"""Campaign triage analytics: digest the artifacts into one report.

``pqs report`` joins the three artifacts a hunt leaves behind — the
checksummed journal (authoritative results), the unified event log
(narrative), and the metrics snapshot (distributions) — into a single
campaign digest:

* **bugs**, deduplicated by reduced-testcase content fingerprint
  (:meth:`~repro.core.reports.BugReport.fingerprint` — the same defect
  rediscovered by ten rounds is one line with ten sightings), grouped
  by detecting oracle and, for error-oracle findings, by the erroring
  statement's kind;
* a **phase-latency table** from the metrics snapshot's
  ``pqs_phase_seconds`` histograms;
* **worker and quarantine health** from the event log and journal;
* **plan-coverage growth** — distinct fingerprints after each round,
  reconstructed from the journal's per-round novelty lists.

Everything is computed offline from files: the journal is loaded
fingerprint-free (:meth:`~repro.campaigns.journal.CampaignJournal
.load_any`), so a report can be cut for any journal without knowing how
the campaign was configured.  :func:`append_history` adds one summary
line per report to ``results/history.jsonl`` — the long-memory file
that lets hunt N be compared against hunts 1..N-1.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Optional

from repro.campaigns.journal import CampaignJournal
from repro.observe.events import campaign_id, load_events
from repro.telemetry import names as metric_names
from repro.telemetry.registry import MetricsRegistry

#: Event kinds folded into the health section, in display order.
_HEALTH_KINDS = ("worker_start", "worker_death", "worker_restart",
                 "worker_stalled", "worker_retired", "round_failed",
                 "chaos_transient", "chaos_corruption")


def statement_kind(sql: str) -> str:
    """The leading keyword of a statement — the error-grouping axis."""
    stripped = sql.strip()
    return stripped.split(None, 1)[0].upper() if stripped else "?"


def build_report(journal_path: str,
                 events_path: Optional[str] = None,
                 metrics_path: Optional[str] = None,
                 reduce_fn=None) -> dict:
    """The full campaign digest, as a JSON-safe dict.

    ``reduce_fn`` (TestCase → TestCase), when given, shrinks each
    finding's test case before fingerprinting — two raw findings that
    reduce to the same statements then collapse into one bug.
    """
    header, state = CampaignJournal(journal_path).load_any()
    dialect = header.get("dialect", "?")
    seed = header.get("seed", 0)
    report: dict = {
        "campaign": campaign_id(dialect, seed),
        "dialect": dialect,
        "seed": seed,
        "journal": journal_path,
    }
    records = [state.rounds[i] for i in sorted(state.rounds)]
    quarantined = [state.quarantined[i]
                   for i in sorted(state.quarantined)]
    report["rounds"] = {
        "configured": header.get("databases", 0),
        "completed": len(records),
        "quarantined": len(quarantined),
        "corrupt_journal_lines": state.recovery.corrupt_lines,
        "duplicate_journal_rounds": state.recovery.duplicate_rounds,
    }
    report["totals"] = _totals(records)
    report["bugs"] = _dedupe_bugs(records, reduce_fn)
    report["by_oracle"] = _count_by(report["bugs"], "oracle")
    report["by_error_kind"] = _count_by(
        [b for b in report["bugs"] if b["oracle"] == "error"],
        "statement_kind")
    report["quarantine"] = [
        {"round": q.index, "seed": q.seed, "attempts": q.attempts,
         "error": q.error} for q in quarantined]
    report["coverage_growth"] = _coverage_growth(records)
    multiplan = _multiplan_section(records)
    if multiplan:
        report["multiplan"] = multiplan
    plantime = _plantime_section(records)
    if plantime:
        report["plantime"] = plantime
    if events_path and os.path.exists(events_path):
        report["health"] = _health_from_events(load_events(events_path))
    if metrics_path and os.path.exists(metrics_path):
        report["phases"] = _phase_table(metrics_path)
    return report


def _totals(records) -> dict:
    totals = {"statements": 0, "queries": 0, "pivots": 0,
              "expected_errors": 0, "timeouts": 0, "seconds": 0.0,
              "raw_findings": 0}
    for record in records:
        totals["statements"] += record.statements
        totals["queries"] += record.queries
        totals["pivots"] += record.pivots
        totals["expected_errors"] += record.expected_errors
        totals["timeouts"] += record.timeouts
        totals["seconds"] += record.seconds
        totals["raw_findings"] += len(record.reports)
    totals["seconds"] = round(totals["seconds"], 3)
    return totals


def _dedupe_bugs(records, reduce_fn=None) -> list[dict]:
    """Distinct findings by content fingerprint, first sighting first."""
    bugs: dict[str, dict] = {}
    for record in records:
        for raw in record.reports:
            report = raw
            if reduce_fn is not None:
                report = replace(raw, test_case=reduce_fn(raw.test_case))
            key = report.fingerprint()
            entry = bugs.get(key)
            if entry is None:
                final = report.test_case.statements[-1] \
                    if report.test_case.statements else ""
                bugs[key] = {
                    "fingerprint": key,
                    "oracle": report.oracle.value,
                    "statement_kind": statement_kind(final),
                    "loc": report.test_case.loc,
                    "message": report.message,
                    "first_round": record.index,
                    "first_seed": report.seed,
                    "sightings": 1,
                    "rounds": [record.index],
                }
            else:
                entry["sightings"] += 1
                if record.index not in entry["rounds"]:
                    entry["rounds"].append(record.index)
    return sorted(bugs.values(),
                  key=lambda b: (b["first_round"], b["fingerprint"]))


def _count_by(entries, field: str) -> dict:
    counts: dict[str, int] = {}
    for entry in entries:
        counts[entry[field]] = counts.get(entry[field], 0) + 1
    return dict(sorted(counts.items()))


def _coverage_growth(records, points: int = 10) -> list[dict]:
    """Distinct plan fingerprints after each round, decimated to at
    most *points* samples (plus the final total)."""
    seen: set[str] = set()
    growth: list[tuple[int, int]] = []
    for record in records:
        for fingerprint, _example in record.plans:
            seen.add(fingerprint)
        growth.append((record.index, len(seen)))
    if not growth or not seen:
        return []
    stride = max(len(growth) // points, 1)
    sampled = growth[::stride]
    if sampled[-1] != growth[-1]:
        sampled.append(growth[-1])
    return [{"round": index, "distinct_plans": count}
            for index, count in sampled]


def _multiplan_section(records) -> Optional[dict]:
    """Multi-plan triage: findings grouped by the diverging
    plan-fingerprint pair (deviant plan vs. a plan that agreed with the
    arbiter), plus the plans-per-query distribution accumulated from
    the journal's per-round multiplan outcomes."""
    pairs: dict[str, int] = {}
    findings = 0
    plans: dict[str, int] = {}
    for record in records:
        outcome = getattr(record, "multiplan", {}) or {}
        for count, n in (outcome.get("plans") or {}).items():
            plans[str(count)] = plans.get(str(count), 0) + int(n)
        for report in record.reports:
            if report.oracle.value != "multiplan":
                continue
            findings += 1
            results = report.plan_results or []
            deviant = sorted({entry.get("fingerprint", "?")
                              for entry in results
                              if entry.get("deviant")})
            agreed = sorted({entry.get("fingerprint", "?")
                             for entry in results
                             if not entry.get("deviant")})
            for bad in (deviant or ["?"]):
                for good in (agreed or ["?"]):
                    key = f"{bad}<->{good}"
                    pairs[key] = pairs.get(key, 0) + 1
    if not findings and not plans:
        return None
    return {
        "findings": findings,
        "by_plan_pair": dict(sorted(pairs.items(),
                                    key=lambda kv: (-kv[1], kv[0]))),
        "plans_per_query": {key: plans[key]
                            for key in sorted(plans, key=int)},
    }


def _plantime_section(records) -> Optional[dict]:
    """Planner quality: total timed queries plus the worst planner
    regressions, deduplicated by query shape (the same shape flagged in
    ten rounds is one line carrying its worst slowdown)."""
    timed = 0
    by_shape: dict[str, dict] = {}
    for record in records:
        outcome = getattr(record, "plantime", {}) or {}
        timed += outcome.get("timed", 0)
        for regression in outcome.get("regressions", ()):
            shape = regression.get("shape", "?")
            known = by_shape.get(shape)
            if known is None:
                by_shape[shape] = {
                    "shape": shape,
                    "sql": regression.get("sql", ""),
                    "slowdown": regression.get("slowdown", 0.0),
                    "sightings": 1,
                }
            else:
                known["sightings"] += 1
                if regression.get("slowdown", 0.0) > known["slowdown"]:
                    known["slowdown"] = regression["slowdown"]
                    known["sql"] = regression.get("sql", known["sql"])
    if not timed and not by_shape:
        return None
    worst = sorted(by_shape.values(),
                   key=lambda r: (-r["slowdown"], r["shape"]))[:10]
    return {"queries_timed": timed,
            "regressed_shapes": len(by_shape),
            "worst": worst}


def _health_from_events(events) -> dict:
    counts = {kind: 0 for kind in _HEALTH_KINDS}
    for event in events:
        kind = event.get("kind")
        if kind in counts:
            counts[kind] += 1
    return {kind: count for kind, count in counts.items() if count}


def _phase_table(metrics_path: str) -> list[dict]:
    with open(metrics_path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    # ``hunt --metrics`` wraps the registry dump in a document with a
    # ``snapshot`` key; accept both shapes.
    if isinstance(snapshot.get("snapshot"), dict):
        snapshot = snapshot["snapshot"]
    registry = MetricsRegistry.from_snapshot(snapshot)
    table = []
    for instrument in registry.instruments():
        if instrument.name != metric_names.PHASE_SECONDS \
                or instrument.kind != "histogram":
            continue
        if instrument.count == 0:
            continue
        table.append({
            "phase": instrument.labels.get("phase", "?"),
            "count": instrument.count,
            "mean_ms": round(instrument.mean * 1000, 3),
            "p50_ms": round(instrument.percentile(50) * 1000, 3),
            "p99_ms": round(instrument.percentile(99) * 1000, 3),
        })
    order = {phase: i for i, phase in enumerate(metric_names.PHASES)}
    table.sort(key=lambda row: order.get(row["phase"], 99))
    return table


# -- rendering ---------------------------------------------------------------
def render_report(report: dict) -> str:
    """Human-readable text rendering of :func:`build_report`."""
    lines = [f"campaign {report['campaign']} "
             f"(dialect={report['dialect']}, seed={report['seed']})"]
    rounds = report["rounds"]
    lines.append(
        f"rounds: {rounds['completed']}/{rounds['configured']} completed"
        f", {rounds['quarantined']} quarantined")
    if rounds["corrupt_journal_lines"] or rounds["duplicate_journal_rounds"]:
        lines.append(
            f"journal recovery: {rounds['corrupt_journal_lines']} corrupt"
            f" line(s), {rounds['duplicate_journal_rounds']} duplicate(s)")
    totals = report["totals"]
    lines.append(
        f"totals: {totals['statements']} stmts, {totals['queries']} "
        f"queries, {totals['raw_findings']} raw finding(s) in "
        f"{totals['seconds']}s busy time")
    lines.append("")
    bugs = report["bugs"]
    lines.append(f"distinct bugs: {len(bugs)}"
                 + (f"  (by oracle: {_fmt_counts(report['by_oracle'])})"
                    if bugs else ""))
    for bug in bugs:
        lines.append(
            f"  {bug['fingerprint']}  {bug['oracle']:<9} "
            f"{bug['statement_kind']:<8} loc={bug['loc']:<3} "
            f"sightings={bug['sightings']}  first round "
            f"{bug['first_round']} (seed {bug['first_seed']})")
    if report["by_error_kind"]:
        lines.append("error-oracle bugs by statement kind: "
                     + _fmt_counts(report["by_error_kind"]))
    if report["quarantine"]:
        lines.append("")
        lines.append(f"quarantined rounds: {len(report['quarantine'])}")
        for entry in report["quarantine"]:
            lines.append(f"  round {entry['round']} after "
                         f"{entry['attempts']} attempt(s): "
                         f"{entry['error']}")
    health = report.get("health")
    if health:
        lines.append("")
        lines.append("fleet health: " + _fmt_counts(health))
    phases = report.get("phases")
    if phases:
        lines.append("")
        lines.append(f"{'phase':<14}{'count':>8}{'mean ms':>10}"
                     f"{'p50 ms':>10}{'p99 ms':>10}")
        for row in phases:
            lines.append(f"{row['phase']:<14}{row['count']:>8}"
                         f"{row['mean_ms']:>10}{row['p50_ms']:>10}"
                         f"{row['p99_ms']:>10}")
    multiplan = report.get("multiplan")
    if multiplan:
        lines.append("")
        lines.append(f"multiplan findings: {multiplan['findings']}")
        for pair, count in multiplan["by_plan_pair"].items():
            lines.append(f"  plan pair {pair}: {count} finding(s)")
        if multiplan["plans_per_query"]:
            lines.append("plans per query: " + ", ".join(
                f"{plans}->{queries}" for plans, queries
                in multiplan["plans_per_query"].items()))
    plantime = report.get("plantime")
    if plantime:
        lines.append("")
        lines.append(
            f"planner quality: {plantime['queries_timed']} queries "
            f"timed, {plantime['regressed_shapes']} regressed shape(s)")
        for entry in plantime["worst"]:
            lines.append(
                f"  {entry['shape']}  {entry['slowdown']:.2f}x slower "
                f"than best forced plan "
                f"(sightings={entry['sightings']})  {entry['sql']}")
    growth = report.get("coverage_growth")
    if growth:
        lines.append("")
        lines.append("plan coverage growth: "
                     + " -> ".join(f"r{g['round']}:{g['distinct_plans']}"
                                   for g in growth))
    return "\n".join(lines)


def _fmt_counts(counts: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in counts.items())


def history_line(report: dict) -> dict:
    """The one-line summary appended to ``results/history.jsonl``."""
    seconds = report["totals"]["seconds"]
    queries = report["totals"]["queries"]
    line = {
        "campaign": report["campaign"],
        "dialect": report["dialect"],
        "seed": report["seed"],
        "rounds_completed": report["rounds"]["completed"],
        "rounds_quarantined": report["rounds"]["quarantined"],
        "statements": report["totals"]["statements"],
        "queries": queries,
        "raw_findings": report["totals"]["raw_findings"],
        "distinct_bugs": len(report["bugs"]),
        "by_oracle": report["by_oracle"],
        "seconds": seconds,
        "queries_per_second":
            round(queries / seconds, 2) if seconds > 0 else 0.0,
    }
    plantime = report.get("plantime")
    if plantime:
        line["plan_regressions"] = plantime["regressed_shapes"]
    return line


def append_history(path: str, report: dict) -> dict:
    """Append this campaign's summary line to the history file."""
    line = history_line(report)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return line


def load_history(path: str) -> list[dict]:
    """All parseable history lines, oldest first.  Tolerant by design:
    the history file is long-memory across tool versions, so malformed
    lines are skipped and missing keys are the reader's problem."""
    if not os.path.exists(path):
        return []
    lines: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if isinstance(parsed, dict):
                lines.append(parsed)
    return lines


def render_trend(lines: list[dict], limit: int = 8) -> str:
    """A short cross-campaign trend over the most recent history lines:
    distinct bugs and throughput per campaign, oldest of the window
    first.  Lines predating the throughput stamp render as ``?``."""
    if not lines:
        return ""
    window = lines[-limit:]
    out = [f"history trend ({len(window)} of {len(lines)} campaign(s)):"]
    bugs_series = []
    qps_series = []
    for line in window:
        bugs_series.append(str(line.get("distinct_bugs", "?")))
        qps = line.get("queries_per_second")
        qps_series.append("?" if qps is None else f"{qps:g}")
        campaign = line.get("campaign", "?")
        rounds = line.get("rounds_completed", "?")
        bugs = line.get("distinct_bugs", "?")
        qps_text = "?" if qps is None else f"{qps:g} q/s"
        out.append(f"  {campaign}: {rounds} rounds, {bugs} distinct "
                   f"bug(s), {qps_text}")
    out.append("  distinct bugs: " + " -> ".join(bugs_series))
    out.append("  queries/s:     " + " -> ".join(qps_series))
    return "\n".join(out)
