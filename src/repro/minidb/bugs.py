"""Injectable defects modeled on the paper's reported bugs.

The paper's evaluation counts *real* (then-unknown) bugs in SQLite, MySQL
and PostgreSQL.  Offline we need ground truth, so MiniDB ships a registry
of defects that can be switched on individually.  Each defect:

* is modeled on a concrete bug/listing from the paper (``paper_ref``);
* lives in the engine layer where the real bug lived (``component``:
  planner, optimizer, executor, constraint, storage, maintenance);
* is detectable by exactly the oracle class the paper attributes to it
  (``oracle``: contains / error / crash).

The campaign harness (:mod:`repro.campaigns`) enables a dialect's defects,
runs PQS, and scores detections against this catalog — regenerating the
paper's Tables 2 and 3 and Figures 2 and 3 as measurable quantities.

``triage`` records how the upstream developers resolved the modeled bug,
which drives Table 2's status taxonomy: ``fixed`` (code fix), ``verified``
(confirmed, no fix at reporting time), ``docs`` (documentation fix, counted
as a true bug in the paper), ``intended`` (works-as-intended, a false
positive).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class InjectedBug:
    bug_id: str
    dialect: str                  # sqlite | mysql | postgres
    oracle: str                   # contains | error | crash
    component: str                # planner | optimizer | executor | ...
    description: str
    paper_ref: str
    triage: str = "fixed"


BUG_CATALOG: dict[str, InjectedBug] = {bug.bug_id: bug for bug in [
    # ----------------------------------------------------------- SQLite --
    InjectedBug(
        "sqlite-partial-index-is-not", "sqlite", "contains", "planner",
        "The planner assumes `c IS NOT <literal>` implies `c NOT NULL` and "
        "uses a partial index filtered on `c NOT NULL`, silently dropping "
        "rows whose c is NULL.",
        "Listing 1 (critical, latent since 2013)"),
    InjectedBug(
        "sqlite-nocase-unique-without-rowid", "sqlite", "contains",
        "constraint",
        "On WITHOUT ROWID tables, a NOCASE-collated index wrongly "
        "deduplicates case-variant keys, making one of the rows "
        "unreachable by scans.",
        "Listing 4 (severe, latent since 2013)"),
    InjectedBug(
        "sqlite-rtrim-compare", "sqlite", "contains", "executor",
        "RTRIM collation is implemented as 'ignore all trailing AND "
        "leading spaces', so comparisons against padded strings "
        "mis-evaluate and rows are not fetched.",
        "Listing 5 (important, 11 years old)"),
    InjectedBug(
        "sqlite-skip-scan-distinct", "sqlite", "contains", "planner",
        "After ANALYZE, DISTINCT queries take a skip-scan path that "
        "deduplicates on the indexed prefix instead of the full row.",
        "Listing 6 (severe)"),
    InjectedBug(
        "sqlite-like-affinity-opt", "sqlite", "contains", "optimizer",
        "The LIKE optimization rewrites `c LIKE 'lit'` (no wildcards) to "
        "an equality with numeric affinity applied, missing exact string "
        "matches stored in INT-affinity columns.",
        "Listing 7 (minor, one of 4 LIKE-optimization bugs)"),
    InjectedBug(
        "sqlite-rename-expr-index", "sqlite", "error", "catalog",
        "ALTER TABLE RENAME COLUMN does not rewrite expression indexes, "
        "leaving the schema referring to a nonexistent column; the next "
        "statement touching the index reports a malformed schema.",
        "Listing 8 (led SQLite to disallow double-quoted strings in "
        "indexes)"),
    InjectedBug(
        "sqlite-case-sensitive-like-index", "sqlite", "error",
        "maintenance",
        "An index on a LIKE expression becomes inconsistent with the "
        "schema once PRAGMA case_sensitive_like is toggled; VACUUM then "
        "fails with a malformed-schema error.",
        "Listing 9 (resolved as a documented design defect)", "docs"),
    InjectedBug(
        "sqlite-real-pk-corrupt", "sqlite", "error", "storage",
        "UPDATE OR REPLACE on a REAL PRIMARY KEY leaves a stale index "
        "entry behind; the next SELECT DISTINCT through the index reports "
        "'database disk image is malformed'.",
        "Listing 10 (severe, introduced 2015)"),
    InjectedBug(
        "sqlite-reindex-unique", "sqlite", "error", "maintenance",
        "A buggy collation-aware insert path lets duplicate keys into a "
        "UNIQUE index; REINDEX detects them and fails with 'UNIQUE "
        "constraint failed'.",
        "§4.4 error-oracle bugs (6 found via REINDEX)"),
    # Optimizer defects visible only under forced plans: the unforced
    # planner never takes the affected path, so the pivot-containment
    # oracle cannot see them — only the multi-plan differential oracle
    # (repro.multiplan), which diffs forced executions, can.
    InjectedBug(
        "sqlite-forced-index-fencepost", "sqlite", "multiplan", "storage",
        "An INDEXED BY cursor stops one entry short of the index's end, "
        "so the key-largest row vanishes from forced index scans while "
        "planner-chosen scans return it.",
        "Multi-plan execution oracle (PAPERS.md: Context-Sensitive "
        "Instantiation and Multi-Plan Execution)"),
    InjectedBug(
        "sqlite-stale-stats-join", "sqlite", "multiplan", "planner",
        "Planning with statistics that no ANALYZE gathered makes the "
        "join reorderer treat cross products as already equi-joined, "
        "dropping row pairs whose lead columns collide.",
        "Multi-plan execution oracle (PAPERS.md: Context-Sensitive "
        "Instantiation and Multi-Plan Execution)"),
    InjectedBug(
        "sqlite-like-prefix-range", "sqlite", "multiplan", "optimizer",
        "On forced-index plans the LIKE optimization turns `c LIKE "
        "'prefix%'` into a range whose upper bound increments the "
        "prefix's first character instead of its last, matching a "
        "superset of rows.",
        "Multi-plan execution oracle (PAPERS.md: Context-Sensitive "
        "Instantiation and Multi-Plan Execution)"),
    InjectedBug(
        "sqlite-alter-add-crash", "sqlite", "crash", "catalog",
        "ALTER TABLE ADD COLUMN on a WITHOUT ROWID table that has an "
        "expression index dereferences a stale schema pointer "
        "(simulated SEGFAULT).",
        "§4.2 (2 SQLite crash bugs)"),
    # ------------------------------------------------------------ MySQL --
    InjectedBug(
        "mysql-memory-engine-join", "mysql", "contains", "executor",
        "Scans of MEMORY-engine tables clamp negative integers to zero, "
        "so joins comparing across engines drop qualifying rows.",
        "Listing 11 (5 bugs involving non-default engines)"),
    InjectedBug(
        "mysql-unsigned-cast-compare", "mysql", "contains", "executor",
        "CAST(x AS UNSIGNED) results are compared using signed semantics, "
        "inverting comparisons against large unsigned values.",
        "§4.5 unsigned-integer bugs (4 found)"),
    InjectedBug(
        "mysql-nullsafe-range", "mysql", "contains", "optimizer",
        "`col <=> constant` with a constant outside the column type's "
        "range is folded to NULL instead of FALSE, so NOT(...) no longer "
        "selects NULL rows.",
        "Listing 12 (fixed for 8.0.18)"),
    InjectedBug(
        "mysql-double-negation", "mysql", "contains", "optimizer",
        "The optimizer cancels NOT(NOT x) to x, which is wrong for "
        "non-boolean integers: NOT(NOT 123) is 1, not 123.",
        "Listing 13 (duplicate; fixed in an unreleased version)",
        "duplicate"),
    InjectedBug(
        "mysql-text-double-bool", "mysql", "contains", "executor",
        "TEXT values used in a boolean context are truncated to integers "
        "before the zero test, so '0.5' evaluates to FALSE.",
        "§4.5 value-range bugs (fixed in 8.0.17)"),
    InjectedBug(
        "mysql-check-table-crash", "mysql", "crash", "maintenance",
        "CHECK TABLE ... FOR UPGRADE on a table with an expression index "
        "hits a race window in the index rebuild (simulated SEGFAULT; "
        "CVE-2019-2879 analogue).",
        "Listing 14 (CVE-2019-2879, CVSS 4.9)"),
    InjectedBug(
        "mysql-repair-memory-error", "mysql", "error", "maintenance",
        "REPAIR TABLE on a MEMORY-engine table reports 'Incorrect key "
        "file' although nothing is corrupted.",
        "§4.3 (REPAIR TABLE / CHECK TABLE statements were error prone)"),
    InjectedBug(
        "mysql-set-option-error", "mysql", "error", "options",
        "SET GLOBAL key_cache_division_limit = 100 fails with 'Incorrect "
        "arguments to SET'.",
        "Listing 3 (single-statement bug)"),
    # --------------------------------------------------------- Postgres --
    InjectedBug(
        "pg-inherit-groupby", "postgres", "contains", "executor",
        "GROUP BY trusts the parent's PRIMARY KEY as a grouping key even "
        "though inherited child tables do not respect it, merging rows "
        "that differ in non-key columns.",
        "Listing 15 (the one fixed PostgreSQL containment bug)"),
    InjectedBug(
        "pg-stats-bitmap-error", "postgres", "error", "planner",
        "With extended statistics analyzed and an expression index "
        "present, boolean-expression WHERE clauses fail with 'negative "
        "bitmapset member not allowed'.",
        "Listing 16 (crash variants reported independently via SQLsmith)"),
    InjectedBug(
        "pg-index-null-error", "postgres", "error", "storage",
        "An index built while a concurrent snapshot held a NULL value "
        "retains a NULL entry; later comparisons probing the index fail "
        "with 'found unexpected null value in index'.",
        "Listing 17 (multithreaded bug class, 4 reported)"),
    InjectedBug(
        "pg-vacuum-int-overflow", "postgres", "error", "maintenance",
        "VACUUM FULL evaluates deferred expression-index entries and "
        "fails with 'integer out of range' for values near INT_MAX.",
        "Listing 18 (closed as working-as-intended)", "intended"),
    InjectedBug(
        "pg-statistics-crash", "postgres", "crash", "planner",
        "A SELECT combining extended statistics with a `(x AND x) OR "
        "FALSE IS TRUE` pattern dereferences a negative bitmap member "
        "(simulated SEGFAULT; duplicate of the bitmapset bug).",
        "§4.6 duplicates (crash variants of Listing 16)", "duplicate"),
]}


def bugs_for_dialect(dialect: str) -> list[InjectedBug]:
    return [bug for bug in BUG_CATALOG.values() if bug.dialect == dialect]


class BugRegistry:
    """The set of injected defects currently enabled in an engine."""

    def __init__(self, enabled: set[str] | None = None):
        self.enabled: set[str] = set()
        for bug_id in enabled or ():
            self.enable(bug_id)

    @classmethod
    def all_for(cls, dialect: str) -> "BugRegistry":
        """Registry with every defect of *dialect* switched on."""
        return cls({bug.bug_id for bug in bugs_for_dialect(dialect)})

    def enable(self, bug_id: str) -> None:
        if bug_id not in BUG_CATALOG:
            raise KeyError(f"unknown bug id: {bug_id}")
        self.enabled.add(bug_id)

    def disable(self, bug_id: str) -> None:
        self.enabled.discard(bug_id)

    def on(self, bug_id: str) -> bool:
        """Is *bug_id* enabled?  The engine's injection points call this."""
        return bug_id in self.enabled

    def __iter__(self):
        return iter(sorted(self.enabled))

    def __len__(self) -> int:
        return len(self.enabled)
