"""The SELECT pipeline: scan → join → filter → group → project → distinct
→ compound → order → limit.

Execution is naive nested-loop/materialize-everything — the paper sizes
databases at 10–30 rows precisely so that query evaluation cost stays
trivial — but it is a *real* pipeline: rows flow from access paths chosen
by the planner, through the engine-side evaluator, into result sets.
Several injected defects live here (MEMORY-engine scans, inherited
GROUP BY, skip-scan DISTINCT, stale-index detection).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError, DBCrash, DBError, IntegrityError, UnsupportedError
from repro.interp.base import EvalError
from repro.interp.mysql_sem import to_number as mysql_to_number
from repro.minidb import statements as st
from repro.minidb.catalog import Table
from repro.minidb.planner import AccessPath, Scope, bind, choose_path, rewrite
from repro.sqlast.nodes import ColumnNode, Expr, FunctionNode, LiteralNode, walk
from repro.sqlast.render import render_expr
from repro.sqlast.transform import transform
from repro.values import NULL, SQLType, Value, int_or_real

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Engine, ResultSet

#: Function names that are aggregates (MIN/MAX only in their 1-arg form).
ALWAYS_AGGREGATE = frozenset({"COUNT", "SUM", "AVG", "TOTAL"})


def is_aggregate_call(node: Expr) -> bool:
    if not isinstance(node, FunctionNode):
        return False
    if node.name.upper() in ALWAYS_AGGREGATE:
        return True
    return node.name.upper() in ("MIN", "MAX") and len(node.args) == 1


@dataclass
class SourceRow:
    """One joined row: qualified-name environment plus per-table rowids."""

    env: dict[str, Value]
    tables: dict[str, int] = field(default_factory=dict)


class SelectExecutor:
    """Executes one (bound) SELECT statement against an engine."""

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.catalog = engine.catalog
        self.bugs = engine.bugs
        self.dialect = engine.dialect
        self.interp = engine.interp
        self.semantics = engine.semantics
        # Resolved once per statement: consulted per joined row otherwise.
        self._memory_clamp = engine.bugs.on("mysql-memory-engine-join")

    # -- public entry -----------------------------------------------------
    def execute(self, select: st.Select) -> "ResultSet":
        from repro.minidb.engine import ResultSet

        columns, rows = self._run(select)
        return ResultSet(columns=columns, rows=rows)

    def explain(self, select: st.Select,
                ) -> list[tuple[str, str, Optional[str], str]]:
        """Access-path rows for *select* without scanning any data.

        Mirrors the planning half of :meth:`_run` (scope → bind →
        rewrite → choose_path) so EXPLAIN always reports the path the
        executor would take, then renders each path as a
        ``(table, kind, index, detail)`` row.  Planning-time *defect*
        checks are deliberately skipped: EXPLAIN inspects the plan, it
        does not trigger the modeled bugs.
        """
        steps: list[tuple[str, str, Optional[str], str]] = []
        self._explain_into(select, steps)
        return steps

    def _explain_into(self, select: st.Select,
                      steps: list[tuple[str, str, Optional[str], str]],
                      ) -> None:
        scope_tables = self._scope_tables(select)
        scope = Scope(scope_tables, self.dialect)
        bound = self._bind_select(select, scope)
        hints = self.engine.hints
        where = None
        rewrite_tags: list[str] = []
        if bound.where is not None:
            where = rewrite(bound.where, self.dialect, self.bugs, scope,
                            hints)
            rewrite_tags = self._rewrite_tags(bound.where, where)
        for visible, table in scope_tables[:len(bound.tables)]:
            indexes = self.catalog.indexes_on(table.name)
            if self.dialect == "postgres" and \
                    self.catalog.has_table(table.name) and \
                    self.catalog.children_of(table.name):
                indexes = []
            path = choose_path(table, where, indexes, bound.distinct,
                               self.bugs, hints)
            steps.append(self._plan_step(visible, path))
        for join, (visible, table) in zip(
                select.joins, scope_tables[len(bound.tables):]):
            steps.append((visible, "full-scan", None,
                          f"{join.kind.lower()} join"))
        for tag in rewrite_tags:
            steps.append(("-", "rewrite", None, tag))
        if bound.compound is not None:
            kind, rhs = bound.compound
            steps.append(("-", "compound", None, kind.lower()))
            self._explain_into(rhs, steps)

    @staticmethod
    def _plan_step(visible: str,
                   path: AccessPath) -> tuple[str, str, Optional[str], str]:
        index = path.index
        tags = []
        if index is not None:
            if index.is_partial:
                tags.append("partial")
            if index.is_expression_index:
                tags.append("expression")
            if index.unique:
                tags.append("unique")
            if any(e.collation for e in index.exprs):
                tags.append("collated")
            if any(e.descending for e in index.exprs):
                tags.append("desc")
            if index.implicit:
                tags.append("implicit")
        detail = " ".join(tags)
        if path.reason:
            detail = f"{detail} ({path.reason})" if detail \
                else f"({path.reason})"
        return (visible, path.kind,
                index.name if index is not None else None, detail)

    @staticmethod
    def _rewrite_tags(before: Expr, after: Expr) -> list[str]:
        """Which optimizer rewrites fired between *before* and *after*.

        Detected structurally (operator-count deltas) so EXPLAIN output —
        and therefore plan fingerprints — distinguishes states where a
        rewrite such as the LIKE-affinity optimization kicked in.
        """
        from repro.sqlast.nodes import BinaryNode, BinaryOp, UnaryNode, UnaryOp

        def counts(expr: Expr) -> tuple[int, int, int]:
            like = nots = nullsafe = 0
            for node in walk(expr):
                if isinstance(node, BinaryNode):
                    if node.op is BinaryOp.LIKE:
                        like += 1
                    elif node.op is BinaryOp.NULL_SAFE_EQ:
                        nullsafe += 1
                elif isinstance(node, UnaryNode) and \
                        node.op is UnaryOp.NOT:
                    nots += 1
            return like, nots, nullsafe

        b, a = counts(before), counts(after)
        tags = []
        if a[0] < b[0]:
            tags.append("like-opt")
        if a[1] < b[1]:
            tags.append("not-not-opt")
        if a[2] < b[2]:
            tags.append("nullsafe-fold")
        return tags

    def _run(self, select: st.Select) -> tuple[list[str], list[tuple]]:
        scope_tables = self._scope_tables(select)
        scope = Scope(scope_tables, self.dialect)
        bound = self._bind_select(select, scope)
        self._planning_defect_checks(bound, scope_tables)

        where = None
        if bound.where is not None:
            where = rewrite(bound.where, self.dialect, self.bugs, scope,
                            self.engine.hints)

        skip_scan_index = None
        source_rows: list[SourceRow] = []
        if scope_tables:
            source_rows, skip_scan_index = self._from_rows(
                bound, scope_tables, where)
        else:
            source_rows = [SourceRow(env={})]

        if where is not None:
            source_rows = self._filter(where, source_rows)

        columns, projected = self._project(bound, source_rows)

        if bound.distinct:
            projected = self._distinct(projected, source_rows,
                                       skip_scan_index)

        if bound.compound is not None:
            kind, rhs = bound.compound
            rhs_columns, rhs_rows = self._run(rhs)
            if len(rhs_columns) != len(columns):
                raise DBError("SELECTs to the left and right of "
                              f"{kind} do not have the same number of "
                              "result columns")
            projected = self._combine(kind, projected, rhs_rows)

        if bound.order_by:
            projected = self._order(bound, projected, source_rows)

        if bound.limit is not None:
            projected = self._limit(bound, projected)
        return columns, projected

    # -- FROM clause -----------------------------------------------------------
    def _scope_tables(self, select: st.Select) -> list[tuple[str, Table]]:
        names = list(select.tables) + [j.table for j in select.joins]
        out: list[tuple[str, Table]] = []
        for name in names:
            out.append((name, self.engine.resolve_relation(name)))
        return out

    def _bind_select(self, select: st.Select, scope: Scope) -> st.Select:
        bound = st.Select(
            items=[st.SelectItem(
                expr=bind(item.expr, scope) if item.expr else None,
                star_table=item.star_table, alias=item.alias)
                for item in select.items],
            tables=select.tables,
            joins=[st.JoinClause(kind=j.kind, table=j.table,
                                 on=bind(j.on, scope) if j.on else None)
                   for j in select.joins],
            where=bind(select.where, scope) if select.where else None,
            group_by=[bind(e, scope) for e in select.group_by],
            having=bind(select.having, scope) if select.having else None,
            order_by=[st.OrderItem(expr=bind(o.expr, scope),
                                   descending=o.descending)
                      for o in select.order_by],
            limit=select.limit, offset=select.offset,
            distinct=select.distinct, compound=select.compound)
        return bound

    def _from_rows(self, select: st.Select,
                   scope_tables: list[tuple[str, Table]],
                   where: Optional[Expr],
                   ) -> tuple[list[SourceRow], Optional[object]]:
        """Scan + join all FROM sources into combined rows."""
        skip_scan_index = None
        plain = scope_tables[:len(select.tables)]
        combined: list[SourceRow] = [SourceRow(env={})]
        stale_join = len(plain) >= 2 \
            and self.bugs.on("sqlite-stale-stats-join") \
            and self.engine.hint_analyzed
        prev: Optional[tuple[str, Table]] = None
        for visible, table in plain:
            indexes = self.catalog.indexes_on(table.name)
            if self.dialect == "postgres" and \
                    self.catalog.has_table(table.name) and \
                    self.catalog.children_of(table.name):
                # A parent's indexes do not cover inherited child rows;
                # an inheritance scan must walk the heap of every table.
                indexes = []
            path = choose_path(table, where, indexes, select.distinct,
                               self.bugs, self.engine.hints)
            if path.kind == "skip-scan":
                skip_scan_index = path.index
            scanned = self._scan(visible, table, path)
            if prev is None:
                # First source: merging each row with the empty seed row
                # only copied dicts; the scanned rows already carry the
                # full env (and _scan always returns a fresh list).
                combined = scanned
            elif stale_join:
                # Defect (sqlite-stale-stats-join): statistics that no
                # ANALYZE gathered make the join reorderer believe the
                # tables were already equi-joined, so the cross product
                # drops pairs whose lead columns collide.  Fires only
                # under hint-synthesized stats (engine.hint_analyzed).
                combined = [
                    self._merge(a, b)
                    for a in combined for b in scanned
                    if not self._stale_join_collision(a, prev, b,
                                                      (visible, table))]
            else:
                combined = [self._merge(a, b)
                            for a in combined for b in scanned]
            prev = (visible, table)
        for join, (visible, table) in zip(
                select.joins, scope_tables[len(select.tables):]):
            scanned = self._scan(visible, table,
                                 AccessPath("full-scan", table.name))
            combined = self._join(combined, scanned, join, visible, table)
        return combined, skip_scan_index

    def _scan(self, visible: str, table: Table,
              path: AccessPath) -> list[SourceRow]:
        # Full scans are pure functions of table contents, so their
        # SourceRow lists are shared across queries until the next
        # write (the engine clears the cache on any non-SELECT).  The
        # list container is copied both ways — callers may hand the
        # list onward — but the SourceRows themselves are shared: no
        # pipeline stage mutates env/tables in place (merges, LEFT-join
        # padding and the MEMORY clamp all copy first).  Index and
        # skip scans stay uncached: their row order depends on index
        # entries and defect state, not just the heap.
        cacheable = path.kind == "full-scan"
        if cacheable:
            key = (table.name, visible)
            cached = self.engine._scan_cache.get(key)
            if cached is not None:
                return list(cached)
        rows = self.engine.scan_rows(table, path)
        out = []
        # All rows of one relation share the same key set in the same
        # insertion order (every construction path — INSERT, UPDATE's
        # dict(row), ADD/RENAME COLUMN backfills, view materialization,
        # inheritance projection — walks the column list uniformly), so
        # the qualified-name keys are computed once per scan.
        keys: Optional[list[str]] = None
        for rowid, row in rows:
            if keys is None or len(keys) != len(row):
                keys = [f"{visible}.{col}" for col in row]
            out.append(SourceRow(env=dict(zip(keys, row.values())),
                                 tables={visible: rowid}))
        if cacheable and self.engine._scan_caching:
            self.engine._scan_cache[key] = list(out)
        return out

    def _stale_join_collision(self, a: SourceRow,
                              prev_vt: tuple[str, Table], b: SourceRow,
                              cur_vt: tuple[str, Table]) -> bool:
        prev_visible, prev_table = prev_vt
        cur_visible, cur_table = cur_vt
        if not prev_table.columns or not cur_table.columns:
            return False
        av = a.env.get(f"{prev_visible}.{prev_table.columns[0].name}")
        bv = b.env.get(f"{cur_visible}.{cur_table.columns[0].name}")
        if av is None or bv is None or av.is_null or bv.is_null:
            return False
        try:
            return self.semantics.values_equal(av, bv) is True
        except EvalError:
            return False

    @staticmethod
    def _merge(a: SourceRow, b: SourceRow) -> SourceRow:
        env = dict(a.env)
        env.update(b.env)
        tables = dict(a.tables)
        tables.update(b.tables)
        return SourceRow(env=env, tables=tables)

    def _join(self, left: list[SourceRow], right: list[SourceRow],
              join: st.JoinClause, visible: str,
              table: Table) -> list[SourceRow]:
        out: list[SourceRow] = []
        null_env = {f"{visible}.{col}": NULL
                    for col in table.column_names()}
        on = join.on
        if on is None or self._memory_clamp:
            test = None
        else:
            on_fn = self.interp.compile(on)
            to_bool = self.semantics.to_bool

            def test(merged: SourceRow) -> bool:
                try:
                    return to_bool(on_fn(merged.env)) is True
                except EvalError as exc:
                    raise DBError(str(exc)) from exc
        for lrow in left:
            matched = False
            for rrow in right:
                merged = self._merge(lrow, rrow)
                if on is None or \
                        (test(merged) if test is not None
                         else self._eval_bool_where(on, merged) is True):
                    matched = True
                    out.append(merged)
            if join.kind == "LEFT" and not matched:
                padded = SourceRow(env=dict(lrow.env),
                                   tables=dict(lrow.tables))
                padded.env.update(null_env)
                out.append(padded)
        return out

    # -- evaluation ------------------------------------------------------------
    def _eval(self, expr: Expr, row: SourceRow) -> Value:
        try:
            return self.interp.evaluate(expr, row.env)
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    def _eval_bool_where(self, expr: Expr, row: SourceRow):
        env = row.env
        if self._memory_clamp:
            env = self._memory_clamped(env, row)
        try:
            return self.interp.semantics.to_bool(
                self.interp.evaluate(expr, env))
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    def _filter(self, where: Expr,
                source_rows: list[SourceRow]) -> list[SourceRow]:
        """WHERE filter over the joined rows.

        Row-by-row semantics are unchanged — the first erroring row still
        raises — but the expression compiles once and the per-row path
        skips re-resolving the defect flag and bound methods.
        """
        if self._memory_clamp:
            return [row for row in source_rows
                    if self._eval_bool_where(where, row) is True]
        predicate = self.interp.compile(where)
        to_bool = self.semantics.to_bool
        try:
            return [row for row in source_rows
                    if to_bool(predicate(row.env)) is True]
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    def _memory_clamped(self, env: dict[str, Value],
                        row: SourceRow) -> dict[str, Value]:
        """Defect: MEMORY-engine scans clamp negative ints to 0 during
        predicate evaluation (paper Listing 11 analogue)."""
        memory_tables = {visible for visible in row.tables
                         if self._is_memory(visible)}
        if not memory_tables:
            return env
        clamped = dict(env)
        for key, value in env.items():
            table = key.split(".", 1)[0]
            if (table in memory_tables and value.t is SQLType.INTEGER
                    and int(value.v) < 0):
                clamped[key] = Value.integer(0)
        return clamped

    def _is_memory(self, visible: str) -> bool:
        try:
            table = self.catalog.table(visible)
        except CatalogError:
            return False
        return (table.engine or "").upper() == "MEMORY"

    # -- projection -------------------------------------------------------------
    def _project(self, select: st.Select, rows: list[SourceRow],
                 ) -> tuple[list[str], list[tuple]]:
        has_aggregate = any(
            item.expr is not None and any(is_aggregate_call(n)
                                          for n in walk(item.expr))
            for item in select.items)
        if select.group_by or has_aggregate:
            return self._project_grouped(select, rows)
        columns = self._output_columns(select, rows)
        # Compile each select item once; rows then evaluate closures
        # directly (same left-to-right order, same first-error-raises).
        compiled = [None if item.expr is None
                    else self.interp.compile(item.expr)
                    for item in select.items]
        out = []
        try:
            if None not in compiled:
                for row in rows:
                    env = row.env
                    out.append(tuple(fn(env) for fn in compiled))
            else:
                for row in rows:
                    values: list[Value] = []
                    for item, fn in zip(select.items, compiled):
                        if fn is None:
                            values.extend(
                                self._star_values(item, row, select))
                        else:
                            values.append(fn(row.env))
                    out.append(tuple(values))
        except EvalError as exc:
            raise DBError(str(exc)) from exc
        return columns, out

    def _output_columns(self, select: st.Select,
                        rows: list[SourceRow]) -> list[str]:
        columns: list[str] = []
        for item in select.items:
            if item.expr is None:
                columns.extend(self._star_names(item, select))
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnNode):
                columns.append(item.expr.column)
            else:
                columns.append(render_expr(item.expr))
        return columns

    def _star_tables(self, item: st.SelectItem,
                     select: st.Select) -> list[str]:
        if item.star_table is not None:
            return [item.star_table]
        return list(select.tables) + [j.table for j in select.joins]

    def _star_names(self, item: st.SelectItem,
                    select: st.Select) -> list[str]:
        names = []
        for visible in self._star_tables(item, select):
            table = self.engine.resolve_relation(visible)
            names.extend(table.column_names())
        return names

    def _star_values(self, item: st.SelectItem, row: SourceRow,
                     select: st.Select) -> list[Value]:
        values = []
        for visible in self._star_tables(item, select):
            table = self.engine.resolve_relation(visible)
            for col in table.column_names():
                values.append(row.env.get(f"{visible}.{col}", NULL))
        return values

    # -- grouping / aggregates ------------------------------------------------
    def _project_grouped(self, select: st.Select, rows: list[SourceRow],
                         ) -> tuple[list[str], list[tuple]]:
        columns = self._output_columns(select, rows)
        for item in select.items:
            if item.expr is None:
                raise UnsupportedError(
                    "star projection with aggregates is not supported")
        groups = self._group(select, rows)
        out: list[tuple] = []
        for group_rows in groups:
            if select.having is not None:
                keep = self.semantics.to_bool(
                    self._eval_aggregate_expr(select.having, group_rows))
                if keep is not True:
                    continue
            values = tuple(self._eval_aggregate_expr(item.expr, group_rows)
                           for item in select.items if item.expr is not None)
            out.append(values)
        return columns, out

    def _group(self, select: st.Select,
               rows: list[SourceRow]) -> list[list[SourceRow]]:
        if not select.group_by:
            # Aggregates with no GROUP BY: one group over all rows.
            return [rows] if rows else [[]]
        group_exprs = list(select.group_by)
        if self.bugs.on("pg-inherit-groupby"):
            group_exprs = self._inherit_groupby_defect(select, group_exprs)
        compiled = [self.interp.compile(e) for e in group_exprs]
        canon = self._canon
        keyed: dict[tuple, list[SourceRow]] = {}
        try:
            for row in rows:
                env = row.env
                key = tuple(canon(fn(env)) for fn in compiled)
                keyed.setdefault(key, []).append(row)
        except EvalError as exc:
            raise DBError(str(exc)) from exc
        return list(keyed.values())

    def _inherit_groupby_defect(self, select: st.Select,
                                group_exprs: list[Expr]) -> list[Expr]:
        """Defect: when grouping a table with inheritance children, trust
        the parent's PRIMARY KEY and group by the PK columns only
        (paper Listing 15)."""
        for name in select.tables:
            if not self.catalog.has_table(name):
                continue
            table = self.catalog.table(name)
            if not self.catalog.children_of(name) or not table.pk_columns:
                continue
            pk = {c.lower() for c in table.pk_columns}
            grouped = {e.column.lower() for e in group_exprs
                       if isinstance(e, ColumnNode)}
            if pk <= grouped:
                return [e for e in group_exprs
                        if isinstance(e, ColumnNode)
                        and e.column.lower() in pk]
        return group_exprs

    def _canon(self, v: Value):
        """Hashable canonical form implementing grouping equality."""
        if v.t is SQLType.NULL:
            return ("null",)
        if v.is_numeric:
            num = int(v.v) if v.t is not SQLType.REAL else float(v.v)
            if isinstance(num, float) and num == int(num):
                num = int(num)
            if isinstance(v.v, bool):
                num = int(v.v)
            return ("num", num)
        if v.t is SQLType.TEXT:
            text = str(v.v)
            if self.dialect == "mysql":
                text = text.lower()
            return ("text", text)
        return ("blob", bytes(v.v))

    def _eval_aggregate_expr(self, expr: Expr,
                             group_rows: list[SourceRow]) -> Value:
        """Evaluate an expression that may contain aggregate calls by
        substituting each aggregate with its computed literal."""
        if is_aggregate_call(expr):
            # The overwhelmingly common shape (`COUNT(*)`, `SUM(c)`, ...):
            # no substitution or re-walk needed.
            return self._aggregate(expr, group_rows)

        def visit(node: Expr) -> Optional[Expr]:
            if is_aggregate_call(node):
                return LiteralNode(self._aggregate(node, group_rows))
            return None

        substituted = transform(expr, visit)
        env = group_rows[0].env if group_rows else {}
        try:
            # One-shot tree: evaluate without entering the compile memo
            # (each group builds fresh nodes, which would thrash it).
            return self.interp.evaluate_uncached(substituted, env)
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    def _aggregate(self, call: FunctionNode,
                   group_rows: list[SourceRow]) -> Value:
        name = call.name.upper()
        if name == "COUNT" and not call.args:
            return Value.integer(len(group_rows))
        arg = call.args[0]
        arg_fn = self.interp.compile(arg)
        try:
            values = [arg_fn(row.env) for row in group_rows]
        except EvalError as exc:
            raise DBError(str(exc)) from exc
        present = [v for v in values if not v.is_null]
        if name == "COUNT":
            return Value.integer(len(present))
        if name == "TOTAL":
            return Value.real(sum(self._as_number(v) for v in present))
        if name in ("SUM", "AVG"):
            if not present:
                return NULL
            numbers = [self._as_number(v) for v in present]
            total = sum(numbers)
            if name == "AVG":
                return Value.real(float(total) / len(numbers))
            if any(isinstance(n, float) for n in numbers):
                return Value.real(float(total))
            return int_or_real(int(total))
        if name in ("MIN", "MAX"):
            if not present:
                return NULL
            best = present[0]
            for v in present[1:]:
                cmp = self._compare_values(v, best)
                if (name == "MIN" and cmp < 0) or (name == "MAX" and cmp > 0):
                    best = v
            return best
        raise UnsupportedError(f"unknown aggregate: {name}")

    def _as_number(self, v: Value) -> int | float:
        if self.dialect == "sqlite":
            from repro.interp.sqlite_sem import to_numeric

            num = to_numeric(v)
        elif self.dialect == "mysql":
            from repro.interp.mysql_sem import to_number

            num = to_number(v)
        else:
            if v.t is SQLType.INTEGER:
                num = int(v.v)
            elif v.t is SQLType.REAL:
                num = float(v.v)
            else:
                raise DBError(f"function sum/avg requires numeric input, "
                              f"not {v.t.value}")
        assert num is not None
        return num

    def _compare_values(self, a: Value, b: Value) -> int:
        if self.dialect == "sqlite":
            from repro.interp.sqlite_sem import storage_compare

            return storage_compare(a, b)
        if a.is_null and b.is_null:
            return 0
        if a.is_null:
            return -1
        if b.is_null:
            return 1
        if self.dialect == "mysql":
            return self.semantics._cmp(a, b)
        try:
            return self.semantics._cmp(a, b)
        except EvalError as exc:
            raise DBError(str(exc)) from exc

    # -- distinct / compound / order / limit -------------------------------------
    def _distinct(self, projected: list[tuple], source: list[SourceRow],
                  skip_scan_index) -> list[tuple]:
        if skip_scan_index is not None and source and \
                len(source) == len(projected):
            # Defect path (sqlite-skip-scan-distinct): deduplicate on the
            # index's leading expression instead of the projected row.
            lead = skip_scan_index.exprs[0].expr
            seen_keys = []
            out = []
            for row, src in zip(projected, source):
                try:
                    key = self._eval(self._rebind_lead(lead, src), src)
                except DBError:
                    key = NULL
                if any(self.semantics.values_equal(key, s)
                       for s in seen_keys):
                    continue
                seen_keys.append(key)
                out.append(row)
            return out
        return self._dedup(projected)

    def _rebind_lead(self, lead: Expr, src: SourceRow) -> Expr:
        table = next(iter(src.tables), "")

        def visit(node: Expr) -> Optional[Expr]:
            if isinstance(node, ColumnNode) and not node.table:
                return ColumnNode(table=table, column=node.column)
            return None

        return transform(lead, visit)

    def _rows_equal(self, a: tuple, b: tuple) -> bool:
        return len(a) == len(b) and all(
            self.semantics.values_equal(x, y) for x, y in zip(a, b))

    # Row deduplication (DISTINCT/UNION/INTERSECT/EXCEPT) hash-buckets
    # candidate rows before confirming with the dialect's values_equal.
    # Soundness needs only "equal values => equal key" — key collisions
    # between unequal values merely grow a bucket, and the pairwise
    # confirmation inside a bucket reproduces the historical
    # order-dependent scan exactly (including non-transitive numeric
    # equality: huge ints that compare equal to a float share its key).
    # MySQL's equality coerces across storage classes (TEXT '1' equals
    # INTEGER 1), so no type-segregated key exists — it keeps the
    # pairwise scan.

    def _value_key(self, v: Value):
        t = v.t
        if self.dialect == "mysql":
            # MySQL equality coerces across storage classes through
            # ``to_number`` (TEXT '1' = INTEGER 1; BLOB b'1' = INTEGER 1
            # via the decoded text) and compares TEXT×TEXT without case.
            # Every equal pair therefore shares a numeric image:
            # case-folded-equal texts have identical numeric prefixes,
            # and blob↔anything equality goes through the same text.
            # Collisions (e.g. all non-numeric texts keying 0.0) are
            # performance-only — the bucket confirms pairwise.
            if t is SQLType.NULL:
                return ("null",)
            num = mysql_to_number(v)
            try:
                f = float(num)
            except OverflowError:
                return ("big", num)
            if f != f:
                return ("nan",)
            return f
        if t is SQLType.NULL:
            return ("null",)
        if t is SQLType.TEXT:
            # sqlite/pg row equality uses BINARY collation: exact text.
            return str(v.v)
        if t is SQLType.BLOB:
            return bytes(v.v)
        if t is SQLType.BOOLEAN and self.dialect == "postgres":
            # PG booleans only ever equal other booleans.
            return ("bool", bool(v.v))
        # Numbers (and sqlite booleans, which debooleanize): equality
        # implies equal float images, NaN equals NaN.
        num = int(v.v) if t is SQLType.BOOLEAN else v.v
        try:
            f = float(num)
        except OverflowError:
            return ("big", num)
        if f != f:
            return ("nan",)
        return f

    def _row_key(self, row: tuple) -> tuple:
        return tuple(self._value_key(v) for v in row)

    def _dedup(self, rows: list[tuple]) -> list[tuple]:
        out: list[tuple] = []
        buckets: dict[tuple, list[tuple]] = {}
        for row in rows:
            key = self._row_key(row)
            kept = buckets.get(key)
            if kept is None:
                buckets[key] = [row]
                out.append(row)
            elif not any(self._rows_equal(row, k) for k in kept):
                kept.append(row)
                out.append(row)
        return out

    def _membership_index(self, rows: list[tuple],
                          ) -> dict[tuple, list[tuple]]:
        index: dict[tuple, list[tuple]] = {}
        for row in rows:
            index.setdefault(self._row_key(row), []).append(row)
        return index

    def _combine(self, kind: str, left: list[tuple],
                 right: list[tuple]) -> list[tuple]:
        if kind == "UNION ALL":
            return left + right
        if kind == "UNION":
            return self._dedup(left + right)
        if kind not in ("INTERSECT", "EXCEPT"):
            raise UnsupportedError(f"unsupported compound operator: {kind}")
        want = kind == "INTERSECT"
        rindex = self._membership_index(right)
        matching = []
        for row in left:
            candidates = rindex.get(self._row_key(row), ())
            if any(self._rows_equal(row, r)
                   for r in candidates) is want:
                matching.append(row)
        return self._dedup(matching)

    def _order(self, select: st.Select, projected: list[tuple],
               source: list[SourceRow]) -> list[tuple]:
        # ORDER BY over projected rows: when the source rows are still
        # 1:1 with projected rows we can evaluate arbitrary expressions;
        # otherwise (post-DISTINCT/aggregate) only ordinal references and
        # output columns order deterministically — MiniDB sorts by the
        # projected tuple in that case.
        if source and len(source) == len(projected) and \
                not select.group_by and not select.distinct \
                and select.compound is None:
            compiled = [self.interp.compile(item.expr)
                        for item in select.order_by]
            keyed = []
            try:
                for row, src in zip(projected, source):
                    env = src.env
                    key = tuple(fn(env) for fn in compiled)
                    keyed.append((key, row))
            except EvalError as exc:
                raise DBError(str(exc)) from exc
            keyed.sort(key=functools.cmp_to_key(
                lambda a, b: self._order_cmp(a[0], b[0], select.order_by)))
            return [row for _, row in keyed]
        ordered = list(projected)
        ordered.sort(key=functools.cmp_to_key(
            lambda a, b: self._tuple_cmp(a, b)))
        return ordered

    def _order_cmp(self, a: tuple, b: tuple,
                   items: list[st.OrderItem]) -> int:
        for av, bv, item in zip(a, b, items):
            cmp = self._null_aware_cmp(av, bv)
            if cmp != 0:
                return -cmp if item.descending else cmp
        return 0

    def _tuple_cmp(self, a: tuple, b: tuple) -> int:
        for av, bv in zip(a, b):
            cmp = self._null_aware_cmp(av, bv)
            if cmp != 0:
                return cmp
        return 0

    def _null_aware_cmp(self, a: Value, b: Value) -> int:
        if a.is_null and b.is_null:
            return 0
        if a.is_null:
            # SQLite and MySQL order NULLs first; PostgreSQL orders last.
            return 1 if self.dialect == "postgres" else -1
        if b.is_null:
            return -1 if self.dialect == "postgres" else 1
        try:
            return self._compare_values(a, b)
        except DBError:
            return 0

    def _limit(self, select: st.Select,
               projected: list[tuple]) -> list[tuple]:
        limit = self._int_const(select.limit)
        offset = 0
        if select.offset is not None:
            offset = max(0, self._int_const(select.offset))
        if limit < 0:
            return projected[offset:]
        return projected[offset:offset + limit]

    def _int_const(self, expr: Expr) -> int:
        value = self._eval(expr, SourceRow(env={}))
        if value.t is not SQLType.INTEGER:
            raise DBError("LIMIT/OFFSET must be an integer")
        return int(value.v)

    # -- injected planning-time defects ----------------------------------------
    def _planning_defect_checks(
            self, select: st.Select,
            scope_tables: list[tuple[str, Table]]) -> None:
        where = select.where
        for visible, table in scope_tables:
            if self.bugs.on("pg-stats-bitmap-error") and where is not None:
                if self._has_statistics(table) and table.analyzed and \
                        self._has_expression_index(table) and \
                        self._has_boolean_combination(where):
                    raise DBError("negative bitmapset member not allowed")
            if self.bugs.on("pg-statistics-crash") and where is not None:
                if self._has_statistics(table) and \
                        self._has_is_true_over_or(where):
                    raise DBCrash("server process terminated by signal 11")
            if self.bugs.on("pg-index-null-error") and where is not None:
                tainted = self._tainted_index_column(table)
                if tainted and self._compares_column(where, visible,
                                                     tainted[0]):
                    raise DBError('found unexpected null value in index '
                                  f'"{tainted[1]}"')
            if self.bugs.on("sqlite-rename-expr-index"):
                for index in self.catalog.indexes_on(table.name):
                    missing = self._index_missing_column(index, table)
                    if missing:
                        raise IntegrityError(
                            f"malformed database schema ({index.name}) - "
                            f"no such column: {missing}")

    def _has_statistics(self, table: Table) -> bool:
        return any(s.table.lower() == table.name.lower()
                   for s in self.catalog.statistics.values())

    def _has_expression_index(self, table: Table) -> bool:
        return any(idx.is_expression_index
                   for idx in self.catalog.indexes_on(table.name))

    @staticmethod
    def _has_boolean_combination(where: Expr) -> bool:
        from repro.sqlast.nodes import BinaryNode

        return any(isinstance(n, BinaryNode) and n.op.is_logical
                   for n in walk(where))

    @staticmethod
    def _has_is_true_over_or(where: Expr) -> bool:
        from repro.sqlast.nodes import BinaryNode, BinaryOp, PostfixNode, PostfixOp

        for node in walk(where):
            if isinstance(node, PostfixNode) and node.op in (
                    PostfixOp.IS_TRUE, PostfixOp.IS_NOT_FALSE):
                if any(isinstance(k, BinaryNode)
                       and k.op in (BinaryOp.OR, BinaryOp.AND)
                       for k in walk(node.operand)):
                    return True
        return False

    def _tainted_index_column(self,
                              table: Table) -> Optional[tuple[str, str]]:
        for index in self.catalog.indexes_on(table.name):
            if getattr(index, "null_tainted", False):
                lead = index.exprs[0].expr
                if isinstance(lead, ColumnNode):
                    return lead.column, index.name
        return None

    @staticmethod
    def _compares_column(where: Expr, visible: str, column: str) -> bool:
        from repro.sqlast.nodes import BinaryNode

        for node in walk(where):
            if isinstance(node, BinaryNode) and node.op.is_comparison:
                for side in (node.left, node.right):
                    if isinstance(side, ColumnNode) and \
                            side.column.lower() == column.lower():
                        return True
        return False

    @staticmethod
    def _index_missing_column(index, table: Table) -> Optional[str]:
        for indexed in index.exprs:
            for node in walk(indexed.expr):
                if isinstance(node, ColumnNode) and \
                        not table.has_column(node.column):
                    return node.column
        if index.where is not None:
            for node in walk(index.where):
                if isinstance(node, ColumnNode) and \
                        not table.has_column(node.column):
                    return node.column
        return None
