"""Schema objects: columns, tables, indexes, views, and the catalog.

The catalog is deliberately explicit — every piece of state the engine
needs to execute statements lives here or in the per-table storage, and
the ``sqlite_master`` / ``information_schema`` emulation in the engine is
generated from it (the paper notes SQLancer queries schema state from the
DBMS rather than tracking it; our adapters do the same through these
virtual tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError
from repro.interp.base import affinity_of_type_name
from repro.minidb.statements import IndexedExpr, Select
from repro.sqlast.nodes import Expr

#: MySQL-style column type ranges: name -> (min, max) for signed variants.
MYSQL_INT_RANGES = {
    "TINYINT": (-128, 127),
    "SMALLINT": (-32768, 32767),
    "INT": (-(2**31), 2**31 - 1),
    "INTEGER": (-(2**31), 2**31 - 1),
    "BIGINT": (-(2**63), 2**63 - 1),
}


@dataclass
class Column:
    name: str
    type_name: Optional[str]
    not_null: bool = False
    collation: Optional[str] = None
    default: Optional[Expr] = None
    primary_key: bool = False
    unique: bool = False

    @property
    def affinity(self) -> Optional[str]:
        """SQLite type affinity; ``None`` when no type was declared."""
        if self.type_name is None:
            return None
        return affinity_of_type_name(self.type_name)

    @property
    def mysql_base_type(self) -> str:
        """Normalized MySQL type name (without UNSIGNED), default INT."""
        if not self.type_name:
            return "INT"
        words = self.type_name.upper().split()
        return words[0]

    @property
    def mysql_unsigned(self) -> bool:
        return bool(self.type_name) and "UNSIGNED" in self.type_name.upper()


@dataclass
class Index:
    name: str
    table: str
    exprs: list[IndexedExpr]
    unique: bool = False
    where: Optional[Expr] = None
    #: True for the implicit index backing a PRIMARY KEY/UNIQUE constraint.
    implicit: bool = False
    #: Entries: list of (key_tuple, rowid).  Key tuples hold Value objects.
    entries: list = field(default_factory=list)
    #: Value of PRAGMA case_sensitive_like when the index was created
    #: (sqlite; consulted by the case-sensitive-like VACUUM defect).
    created_csl: int = 0
    #: Set when the index was built over a column with NULL history while
    #: the pg-index-null-error defect is active.
    null_tainted: bool = False

    @property
    def is_partial(self) -> bool:
        return self.where is not None

    @property
    def is_expression_index(self) -> bool:
        from repro.sqlast.nodes import CollateNode, ColumnNode

        def base(expr):
            while isinstance(expr, CollateNode):
                expr = expr.operand
            return expr

        return any(not isinstance(base(e.expr), ColumnNode)
                   for e in self.exprs)


@dataclass
class Table:
    name: str
    columns: list[Column]
    without_rowid: bool = False
    engine: Optional[str] = None          # mysql storage engine
    inherits: Optional[str] = None        # postgres parent table
    pk_columns: list[str] = field(default_factory=list)
    #: rowid -> {column_name: Value}; insertion-ordered dict.
    rows: dict = field(default_factory=dict)
    next_rowid: int = 1
    analyzed: bool = False                # has ANALYZE gathered statistics
    #: Per-column SERIAL sequence counters (postgres).
    serials: dict = field(default_factory=dict)
    #: column -> True once the column has ever held NULL (pg defect input).
    ever_null: dict = field(default_factory=dict)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise CatalogError(f"no such column: {self.name}.{name}")

    def has_column(self, name: str) -> bool:
        return any(col.name.lower() == name.lower() for col in self.columns)

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]


@dataclass
class View:
    name: str
    select: Select


@dataclass
class Statistics:
    name: str
    table: str
    columns: list[str]


class Catalog:
    """All schema objects in one database."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, Index] = {}
        self.views: dict[str, View] = {}
        self.statistics: dict[str, Statistics] = {}

    # -- lookups -------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def has_view(self, name: str) -> bool:
        return name.lower() in self.views

    def view(self, name: str) -> View:
        try:
            return self.views[name.lower()]
        except KeyError:
            raise CatalogError(f"no such view: {name}") from None

    def index(self, name: str) -> Index:
        try:
            return self.indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"no such index: {name}") from None

    def indexes_on(self, table: str) -> list[Index]:
        return [idx for idx in self.indexes.values()
                if idx.table.lower() == table.lower()]

    def children_of(self, table: str) -> list[Table]:
        """Tables that INHERIT from *table* (postgres)."""
        return [t for t in self.tables.values()
                if t.inherits and t.inherits.lower() == table.lower()]

    # -- mutation ------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self.tables or key in self.views:
            raise CatalogError(f"table {table.name} already exists")
        self.tables[key] = table

    def add_view(self, view: View) -> None:
        key = view.name.lower()
        if key in self.tables or key in self.views:
            raise CatalogError(f"view {view.name} already exists")
        self.views[key] = view

    def add_index(self, index: Index) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {index.name} already exists")
        self.indexes[key] = index

    def drop_table(self, name: str, if_exists: bool) -> bool:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return False
            raise CatalogError(f"no such table: {name}")
        if self.children_of(name):
            raise CatalogError(
                f"cannot drop table {name}: other tables inherit from it")
        del self.tables[key]
        for idx_name in [n for n, idx in self.indexes.items()
                         if idx.table.lower() == key]:
            del self.indexes[idx_name]
        for stat_name in [n for n, stat in self.statistics.items()
                          if stat.table.lower() == key]:
            del self.statistics[stat_name]
        return True

    def drop_index(self, name: str, if_exists: bool) -> bool:
        key = name.lower()
        index = self.indexes.get(key)
        if index is None:
            if if_exists:
                return False
            raise CatalogError(f"no such index: {name}")
        if index.implicit:
            raise CatalogError(
                f"index {name} is backing a constraint and cannot be "
                f"dropped")
        del self.indexes[key]
        return True

    def drop_view(self, name: str, if_exists: bool) -> bool:
        key = name.lower()
        if key not in self.views:
            if if_exists:
                return False
            raise CatalogError(f"no such view: {name}")
        del self.views[key]
        return True

    def rename_table(self, old: str, new: str) -> None:
        table = self.table(old)
        if self.has_table(new) or self.has_view(new):
            raise CatalogError(f"there is already a table named {new}")
        del self.tables[old.lower()]
        table.name = new
        self.tables[new.lower()] = table
        for idx in self.indexes.values():
            if idx.table.lower() == old.lower():
                idx.table = new

    def all_relation_names(self) -> list[str]:
        """Tables and views, in creation order (for sqlite_master)."""
        return ([t.name for t in self.tables.values()]
                + [v.name for v in self.views.values()])
