"""Name binding, optimizer rewrites, and access-path selection.

This is where most of the paper's SQLite bugs lived — "a number of bugs
could be traced back to incorrect optimizations" (§4.4) — and therefore
where most of MiniDB's injected optimizer defects hook in:

* ``sqlite-like-affinity-opt`` — the LIKE-to-equality rewrite with numeric
  affinity (paper Listing 7);
* ``mysql-double-negation`` — NOT(NOT x) cancellation (Listing 13);
* ``mysql-nullsafe-range`` — out-of-range ``<=>`` folding (Listing 12);
* ``sqlite-partial-index-is-not`` — unsound partial-index implication
  (Listing 1);
* ``sqlite-skip-scan-distinct`` — skip-scan for DISTINCT after ANALYZE
  (Listing 6).

Binding resolves column names against the FROM scope and annotates
``ColumnNode`` with the column's affinity and collation so the engine-side
evaluator applies the same conversion rules the oracle interpreter does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError, DBError
from repro.minidb.bugs import BugRegistry
from repro.minidb.catalog import MYSQL_INT_RANGES, Index, Table
from repro.sqlast.nodes import (
    BinaryNode,
    BinaryOp,
    ColumnNode,
    Expr,
    LiteralNode,
    PostfixNode,
    PostfixOp,
    UnaryNode,
    UnaryOp,
    walk,
)
from repro.sqlast.transform import transform
from repro.values import NULL, SQLType

if TYPE_CHECKING:  # pragma: no cover
    from repro.multiplan.hints import PlannerHints


class Scope:
    """The tables visible to an expression, for column resolution."""

    def __init__(self, tables: list[tuple[str, Table]], dialect: str):
        self.tables = tables
        self.dialect = dialect

    def resolve(self, node: ColumnNode) -> ColumnNode:
        candidates = []
        for visible_name, table in self.tables:
            if node.table and node.table.lower() != visible_name.lower():
                continue
            if table.has_column(node.column):
                candidates.append((visible_name, table))
        if not candidates:
            raise CatalogError(f"no such column: "
                               f"{node.table + '.' if node.table else ''}"
                               f"{node.column}")
        if len(candidates) > 1:
            raise CatalogError(f"ambiguous column name: {node.column}")
        visible_name, table = candidates[0]
        column = table.column(node.column)
        affinity = column.affinity if self.dialect == "sqlite" else None
        return ColumnNode(table=visible_name, column=column.name,
                          collation=column.collation, affinity=affinity)


def bind(expr: Expr, scope: Scope) -> Expr:
    """Resolve and annotate all column references in *expr*."""

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, ColumnNode):
            return scope.resolve(node)
        return None

    return transform(expr, visit)


# ---------------------------------------------------------------------------
# Optimizer rewrites
# ---------------------------------------------------------------------------

def rewrite(expr: Expr, dialect: str, bugs: BugRegistry,
            scope: Optional[Scope] = None,
            hints: Optional["PlannerHints"] = None) -> Expr:
    """Apply the optimizer's expression rewrites (defects included).

    ``hints`` (multi-plan forcing) gates the LIKE-optimization family:
    ``no_like_opt`` suppresses it entirely, and the injected
    ``sqlite-like-prefix-range`` defect fires only on a forced-index
    plan — so the unforced statement stream is bit-identical whether or
    not the multiplan subsystem exists.
    """

    def visit(node: Expr) -> Optional[Expr]:
        if dialect == "mysql":
            out = _mysql_rewrites(node, bugs, scope)
            if out is not None:
                return out
        if dialect == "sqlite":
            out = _sqlite_rewrites(node, bugs, hints)
            if out is not None:
                return out
        return None

    return transform(expr, visit)


def _mysql_rewrites(node: Expr, bugs: BugRegistry,
                    scope: Optional[Scope]) -> Optional[Expr]:
    if bugs.on("mysql-double-negation"):
        # Defect: NOT(NOT x) -> x, valid for booleans only; for 123 the
        # correct value of NOT(NOT 123) is 1 (Listing 13).
        if (isinstance(node, UnaryNode) and node.op is UnaryOp.NOT
                and isinstance(node.operand, UnaryNode)
                and node.operand.op is UnaryOp.NOT):
            return node.operand.operand
    if bugs.on("mysql-nullsafe-range") and scope is not None:
        # Defect: `col <=> out_of_range_constant` folds to NULL instead
        # of FALSE, so a wrapping NOT() stops selecting NULL rows
        # (Listing 12).
        if (isinstance(node, BinaryNode)
                and node.op is BinaryOp.NULL_SAFE_EQ):
            folded = _fold_out_of_range_nullsafe(node, scope)
            if folded is not None:
                return folded
    return None


def _fold_out_of_range_nullsafe(node: BinaryNode,
                                scope: Scope) -> Optional[Expr]:
    column, literal = None, None
    if isinstance(node.left, ColumnNode) and isinstance(node.right,
                                                        LiteralNode):
        column, literal = node.left, node.right
    elif isinstance(node.right, ColumnNode) and isinstance(node.left,
                                                           LiteralNode):
        column, literal = node.right, node.left
    if column is None or literal is None:
        return None
    if literal.value.t is not SQLType.INTEGER:
        return None
    for visible_name, table in scope.tables:
        if visible_name.lower() != column.table.lower():
            continue
        col = table.column(column.column)
        base = col.mysql_base_type
        if base not in MYSQL_INT_RANGES or col.mysql_unsigned:
            return None
        lo, hi = MYSQL_INT_RANGES[base]
        if not (lo <= int(literal.value.v) <= hi):
            return LiteralNode(NULL)
    return None


def _sqlite_rewrites(node: Expr, bugs: BugRegistry,
                     hints: Optional["PlannerHints"] = None,
                     ) -> Optional[Expr]:
    no_like_opt = hints is not None and hints.no_like_opt
    if bugs.on("sqlite-like-prefix-range") and not no_like_opt \
            and hints is not None and hints.force_index:
        # Defect: on a forced-index plan, `col LIKE 'prefix%'` is
        # rewritten into an index-friendly range whose upper bound
        # increments the *first* character of the prefix instead of the
        # last — 'ab%' becomes ['ab','bb') rather than ['ab','ac'), a
        # strict superset, so extra rows appear only under INDEXED BY.
        if (isinstance(node, BinaryNode) and node.op is BinaryOp.LIKE
                and isinstance(node.left, ColumnNode)
                and isinstance(node.right, LiteralNode)
                and node.right.value.t is SQLType.TEXT):
            bounds = _buggy_prefix_bounds(str(node.right.value.v))
            if bounds is not None:
                from repro.values import Value

                lower, upper = bounds
                return BinaryNode(
                    BinaryOp.AND,
                    BinaryNode(BinaryOp.GE, node.left,
                               LiteralNode(Value(SQLType.TEXT, lower))),
                    BinaryNode(BinaryOp.LT, node.left,
                               LiteralNode(Value(SQLType.TEXT, upper))))
    if bugs.on("sqlite-like-affinity-opt") and not no_like_opt:
        # Defect: `col LIKE 'literal'` with no wildcards is rewritten to
        # an equality after forcing the pattern through numeric
        # conversion — losing exact text matches stored in numeric-
        # affinity columns (Listing 7).
        if (isinstance(node, BinaryNode) and node.op is BinaryOp.LIKE
                and isinstance(node.left, ColumnNode)
                and node.left.affinity in ("INTEGER", "REAL", "NUMERIC")
                and isinstance(node.right, LiteralNode)
                and node.right.value.t is SQLType.TEXT
                and not _has_like_wildcards(str(node.right.value.v))):
            from repro.sqlast.nodes import CastNode

            return BinaryNode(BinaryOp.EQ, node.left,
                              CastNode(node.right, "NUMERIC"))
    return None


def _has_like_wildcards(pattern: str) -> bool:
    return "%" in pattern or "_" in pattern


def _buggy_prefix_bounds(pattern: str) -> Optional[tuple[str, str]]:
    """``(lower, wrong_upper)`` for a pure prefix pattern, else None.

    Applies only to ``prefix%`` — a non-empty literal prefix followed by
    exactly one trailing ``%`` and no other wildcards.
    """
    if not pattern.endswith("%"):
        return None
    prefix = pattern[:-1]
    if not prefix or _has_like_wildcards(prefix):
        return None
    first = prefix[0]
    if ord(first) >= 0x10FFFF:
        return None
    # The correct rewrite increments the prefix's *last* character; the
    # defect increments the first.
    return prefix, chr(ord(first) + 1) + prefix[1:]


# ---------------------------------------------------------------------------
# Access-path selection
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class AccessPath:
    """How the executor reaches the rows of one table.

    ``reason`` is the planner's one-line justification; it feeds EXPLAIN
    output and plan fingerprints but never influences execution.
    """

    kind: str                       # 'full-scan' | 'index-scan' | 'skip-scan'
    table: str
    index: Optional[Index] = None
    reason: str = ""
    #: True when a multiplan hint (not the planner's own rules) chose
    #: this path — the trigger for the forced-index injected defects.
    forced: bool = False


def choose_path(table: Table, where: Optional[Expr],
                indexes: list[Index], distinct: bool,
                bugs: BugRegistry,
                hints: Optional["PlannerHints"] = None) -> AccessPath:
    """Pick the access path for *table* under predicate *where*.

    The sound rules are conservative: a partial index is usable only when
    the WHERE clause *contains the index predicate verbatim* as a
    conjunct; a full index is usable when the predicate references its
    leading expression.  The injected planner defects relax these rules
    exactly the way the modeled SQLite bugs did.

    ``hints`` overrides the rules: ``force_full_scan`` pins every table
    to a sequential scan, and ``force_index`` pins the index's *owning*
    table to an index scan (other tables plan normally), mirroring
    sqlite's ``NOT INDEXED`` / ``INDEXED BY``.  Like sqlite, a forced
    partial index whose predicate the WHERE clause does not imply is an
    error ("no query solution") rather than a silent wrong plan.
    """
    if hints is not None:
        if hints.force_full_scan:
            return AccessPath("full-scan", table.name,
                              reason="hint: NOT INDEXED", forced=True)
        if hints.force_index:
            wanted = hints.force_index.lower()
            for index in indexes:
                if index.name.lower() != wanted:
                    continue
                if index.is_partial and (
                        where is None
                        or not _partial_index_usable(where, index, bugs)):
                    raise DBError("no query solution")
                return AccessPath("index-scan", table.name, index,
                                  reason="hint: INDEXED BY", forced=True)
            # The named index lives on another table; plan this one
            # normally.
    if bugs.on("sqlite-skip-scan-distinct") and distinct and table.analyzed:
        for index in indexes:
            if not index.is_partial:
                return AccessPath("skip-scan", table.name, index,
                                  reason="DISTINCT over analyzed table")
    if where is not None:
        for index in indexes:
            if index.is_partial and _partial_index_usable(where, index,
                                                          bugs):
                return AccessPath("index-scan", table.name, index,
                                  reason="WHERE implies partial-index "
                                         "predicate")
        for index in indexes:
            if not index.is_partial and _full_index_usable(where, index):
                return AccessPath("index-scan", table.name, index,
                                  reason="WHERE references leading "
                                         "indexed expression")
    if distinct:
        # DISTINCT queries walk an index when one covers the table, the
        # way SQLite satisfies DISTINCT from index order.
        for index in indexes:
            if not index.is_partial:
                return AccessPath("index-scan", table.name, index,
                                  reason="DISTINCT satisfied from index "
                                         "order")
    return AccessPath("full-scan", table.name,
                      reason="no usable index")


def _partial_index_usable(where: Expr, index: Index,
                          bugs: BugRegistry) -> bool:
    assert index.where is not None
    if _contains_conjunct(where, index.where):
        return True
    if bugs.on("sqlite-partial-index-is-not"):
        # Defect: assume `c IS NOT <non-null literal>` implies
        # `c NOT NULL` (it does not: NULL IS NOT 1 is TRUE) — Listing 1.
        target = _not_null_column(index.where)
        if target is not None:
            for node in walk(where):
                if (isinstance(node, BinaryNode)
                        and node.op is BinaryOp.IS_NOT
                        and isinstance(node.left, ColumnNode)
                        and node.left.column.lower() == target.lower()
                        and isinstance(node.right, LiteralNode)
                        and not node.right.value.is_null):
                    return True
    return False


def _not_null_column(predicate: Expr) -> Optional[str]:
    """Name of c when *predicate* is `c NOT NULL` / `c NOTNULL`."""
    if (isinstance(predicate, PostfixNode)
            and predicate.op is PostfixOp.NOTNULL
            and isinstance(predicate.operand, ColumnNode)):
        return predicate.operand.column
    return None


def _contains_conjunct(where: Expr, predicate: Expr) -> bool:
    """Does *where* contain *predicate* as a top-level AND conjunct?"""
    if _same_predicate(where, predicate):
        return True
    if isinstance(where, BinaryNode) and where.op is BinaryOp.AND:
        return (_contains_conjunct(where.left, predicate)
                or _contains_conjunct(where.right, predicate))
    return False


def _same_predicate(a: Expr, b: Expr) -> bool:
    """Structural equality modulo binding annotations."""
    return _strip(a) == _strip(b)


def _strip(expr: Expr) -> Expr:
    from repro.sqlast.nodes import CollateNode

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, ColumnNode):
            return ColumnNode(table="", column=node.column.lower())
        if isinstance(node, CollateNode):
            return node.operand
        return None

    return transform(expr, visit)


def _full_index_usable(where: Expr, index: Index) -> bool:
    """A non-partial index is usable when WHERE references its leading
    expression in a comparison or NULL-test (a deliberately simple
    heuristic — MiniDB has no cost model, matching its role as a small
    but real engine)."""
    lead = _strip(index.exprs[0].expr)
    for node in walk(where):
        if isinstance(node, BinaryNode) and node.op.is_comparison:
            if _strip(node.left) == lead or _strip(node.right) == lead:
                return True
        if isinstance(node, PostfixNode) and _strip(node.operand) == lead:
            return True
    return False
